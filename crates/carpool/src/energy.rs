//! Device energy analysis (paper Section 8).
//!
//! The paper estimates Carpool's energy cost with the device power model
//! of E-MiLi (Zhang & Shin, MobiCom'11), measured on a LinkSys WPC55AG
//! NIC: 1.71 W transmitting, 1.66 W receiving, 1.22 W idle. Two effects
//! compete:
//!
//! * Bloom-filter false positives make a Carpool node occasionally
//!   decode an irrelevant subframe — at most 5.59% extra RX time with 8
//!   receivers, hence at most `5.59% x 5% = 0.28%` extra node energy for
//!   the >92% of clients that spend ~90% of their energy idle;
//! * aggregation shortens on-air time and lets non-addressed stations
//!   drop a frame after two A-HDR symbols, so Carpool nodes actually
//!   idle *more* (and could sleep in PSM).

use carpool_bloom::analysis::false_positive_ratio;
use carpool_mac::metrics::AirtimeShare;

/// Per-state device power draw in watts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DevicePowerModel {
    /// Transmit power, W.
    pub tx_w: f64,
    /// Receive power, W.
    pub rx_w: f64,
    /// Idle-listening power, W.
    pub idle_w: f64,
}

impl DevicePowerModel {
    /// The E-MiLi measurements of the LinkSys WPC55AG used by the paper.
    pub const E_MILI: DevicePowerModel = DevicePowerModel {
        tx_w: 1.71,
        rx_w: 1.66,
        idle_w: 1.22,
    };

    /// Energy in joules for an airtime breakdown. Overheard frames are
    /// billed at receive power (the radio demodulates them even if the
    /// MAC discards them).
    pub fn energy_j(&self, share: &AirtimeShare) -> f64 {
        self.tx_w * share.tx_s
            + self.rx_w * (share.rx_s + share.overhear_s)
            + self.idle_w * share.idle_s
    }

    /// Mean power in watts over the breakdown's total duration.
    pub fn mean_power_w(&self, share: &AirtimeShare) -> f64 {
        let total = share.total();
        if total == 0.0 {
            return 0.0;
        }
        self.energy_j(share) / total
    }
}

impl Default for DevicePowerModel {
    fn default() -> Self {
        DevicePowerModel::E_MILI
    }
}

/// Typical power-save (PSM) sleep draw of a Wi-Fi NIC, watts.
pub const PSM_SLEEP_W: f64 = 0.05;

/// Energy in joules if the node sleeps (PSM) through its idle time
/// instead of idle-listening — the upside the paper points to: "Carpool
/// nodes have more time left to enter power save mode" (Section 8).
pub(crate) fn psm_energy_j(model: &DevicePowerModel, share: &AirtimeShare, sleep_w: f64) -> f64 {
    model.tx_w * share.tx_s + model.rx_w * (share.rx_s + share.overhear_s) + sleep_w * share.idle_s
}

/// Fraction of a node's energy that PSM would save, given its airtime
/// breakdown.
pub fn psm_savings(model: &DevicePowerModel, share: &AirtimeShare, sleep_w: f64) -> f64 {
    let awake = model.energy_j(share);
    if awake <= 0.0 {
        return 0.0;
    }
    1.0 - psm_energy_j(model, share, sleep_w) / awake
}

/// Expected extra RX-time fraction caused by A-HDR false positives with
/// `receivers` aggregated receivers and `hashes` hash functions.
///
/// A station checks every hash set; each false positive makes it decode
/// one irrelevant subframe. The paper upper-bounds this by the per-set
/// false positive ratio (5.59% for 8 receivers at h = 4).
pub fn false_positive_rx_overhead(receivers: usize, hashes: usize) -> f64 {
    false_positive_ratio(hashes, receivers)
}

/// The paper's headline bound: extra whole-node energy for a typical
/// client that spends `idle_fraction` of its energy idle and splits the
/// rest evenly between TX and RX (Section 8 cites 90% idle for >92% of
/// clients, giving 5.59% x 5% = 0.28%).
pub fn energy_overhead_bound(receivers: usize, hashes: usize, idle_fraction: f64) -> f64 {
    let rx_energy_fraction = (1.0 - idle_fraction) / 2.0;
    false_positive_rx_overhead(receivers, hashes) * rx_energy_fraction
}

/// Compares the client energy of two simulated airtime breakdowns.
///
/// Returns `(baseline_j, carpool_j, relative_change)` where a negative
/// change means Carpool saves energy.
pub fn compare_energy(
    model: &DevicePowerModel,
    baseline: &AirtimeShare,
    carpool: &AirtimeShare,
) -> (f64, f64, f64) {
    let b = model.energy_j(baseline);
    let c = model.energy_j(carpool);
    (b, c, (c - b) / b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e_mili_constants() {
        let m = DevicePowerModel::E_MILI;
        assert_eq!(m.tx_w, 1.71);
        assert_eq!(m.rx_w, 1.66);
        assert_eq!(m.idle_w, 1.22);
        assert_eq!(DevicePowerModel::default(), m);
    }

    #[test]
    fn energy_accounting() {
        let share = AirtimeShare {
            tx_s: 1.0,
            rx_s: 2.0,
            overhear_s: 1.0,
            idle_s: 6.0,
        };
        let m = DevicePowerModel::E_MILI;
        let e = m.energy_j(&share);
        let expect = 1.71 + 1.66 * 3.0 + 1.22 * 6.0;
        assert!((e - expect).abs() < 1e-12);
        assert!((m.mean_power_w(&share) - expect / 10.0).abs() < 1e-12);
    }

    #[test]
    fn idle_is_cheapest_state() {
        let m = DevicePowerModel::E_MILI;
        let busy = AirtimeShare {
            rx_s: 10.0,
            ..Default::default()
        };
        let idle = AirtimeShare {
            idle_s: 10.0,
            ..Default::default()
        };
        assert!(m.energy_j(&busy) > m.energy_j(&idle));
    }

    #[test]
    fn paper_bound_for_8_receivers() {
        // 5.59%-ish FP (the paper rounds the optimal-h value; at h=4 and
        // N=8 the exact figure is ~5.6%) x 5% RX-energy share = ~0.28%.
        let bound = energy_overhead_bound(8, 4, 0.90);
        assert!((bound - 0.0028).abs() < 0.0005, "bound {bound}");
    }

    #[test]
    fn fewer_receivers_cost_less() {
        let mut prev = 1.0;
        for n in (1..=8).rev() {
            let o = false_positive_rx_overhead(n, 4);
            assert!(o <= prev);
            prev = o;
        }
    }

    #[test]
    fn comparison_sign_convention() {
        let m = DevicePowerModel::E_MILI;
        let legacy = AirtimeShare {
            rx_s: 5.0,
            idle_s: 5.0,
            ..Default::default()
        };
        let carpool = AirtimeShare {
            rx_s: 1.0,
            idle_s: 9.0,
            ..Default::default()
        };
        let (b, c, change) = compare_energy(&m, &legacy, &carpool);
        assert!(b > c);
        assert!(change < 0.0);
    }

    #[test]
    fn psm_saves_idle_energy() {
        let m = DevicePowerModel::E_MILI;
        let share = AirtimeShare {
            tx_s: 0.1,
            rx_s: 0.4,
            overhear_s: 0.5,
            idle_s: 9.0,
        };
        let awake = m.energy_j(&share);
        let asleep = psm_energy_j(&m, &share, PSM_SLEEP_W);
        assert!(asleep < awake);
        let savings = psm_savings(&m, &share, PSM_SLEEP_W);
        // ~90% idle at 1.22 W replaced by 0.05 W: savings should be large.
        assert!(savings > 0.6, "savings {savings}");
        assert!(savings < 1.0);
    }

    #[test]
    fn psm_savings_zero_for_empty_share() {
        assert_eq!(
            psm_savings(
                &DevicePowerModel::E_MILI,
                &AirtimeShare::default(),
                PSM_SLEEP_W
            ),
            0.0
        );
    }

    #[test]
    fn empty_share_mean_power_is_zero() {
        assert_eq!(
            DevicePowerModel::E_MILI.mean_power_w(&AirtimeShare::default()),
            0.0
        );
    }
}
