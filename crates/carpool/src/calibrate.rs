//! Trace-driven calibration: PHY Monte-Carlo → MAC error model.
//!
//! The paper feeds USRP capture traces into its MAC simulator. The
//! software analogue: run the full `carpool-phy` chain through a
//! `carpool-channel` link many times, record which OFDM symbols failed
//! their side-channel CRC at each position for both estimation schemes,
//! and hand the measured per-position failure curves to the MAC layer
//! as a [`SymbolErrorCurve`].

use carpool_channel::link::LinkChannel;
use carpool_mac::error_model::SymbolErrorCurve;
use carpool_phy::mcs::Mcs;
use carpool_phy::rte::CalibrationRule;
use carpool_phy::rx::{receive, Estimation, SectionLayout};
use carpool_phy::tx::{transmit, SectionSpec};

/// Parameters of a calibration campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrationConfig {
    /// MCS of the measured frames.
    pub mcs: Mcs,
    /// Receive SNR in dB.
    pub snr_db: f64,
    /// Channel coherence time in seconds.
    pub coherence_time_s: f64,
    /// Residual CFO in Hz.
    pub cfo_hz: f64,
    /// Number of frames per scheme.
    pub frames: usize,
    /// Payload size per frame in bits.
    pub payload_bits: usize,
    /// Base RNG seed (each frame gets `seed + index`).
    pub seed: u64,
}

impl Default for CalibrationConfig {
    fn default() -> Self {
        CalibrationConfig {
            mcs: Mcs::QAM64_3_4,
            snr_db: 28.0,
            coherence_time_s: 2e-3,
            cfo_hz: 100.0,
            frames: 20,
            payload_bits: 16_000,
            seed: 4242,
        }
    }
}

/// Measured per-position symbol failure rates for one scheme.
fn measure_scheme(config: &CalibrationConfig, estimation: Estimation) -> Vec<f64> {
    let payload: Vec<u8> = (0..config.payload_bits)
        .map(|k| ((k * 13 + k / 7) % 3 == 0) as u8)
        .collect();
    let spec = SectionSpec::payload(payload, config.mcs);
    // The spec is built from the config above and is always encodable; if it
    // ever were not, degrade to a flat zero-failure curve instead of aborting.
    let Ok(tx) = transmit(std::slice::from_ref(&spec)) else {
        return vec![0.0];
    };
    let layouts = [SectionLayout::of(&spec)];
    let n_sym = tx.sections[0].num_symbols;
    let mut failures = vec![0usize; n_sym];
    for f in 0..config.frames {
        let mut link = LinkChannel::builder()
            .snr_db(config.snr_db)
            .coherence_time(config.coherence_time_s)
            .cfo_hz(config.cfo_hz)
            .seed(config.seed + f as u64)
            .build();
        let rx_samples = link.transmit(&tx.samples);
        // The link preserves sample count, so the layouts always match; a
        // mismatched frame would simply not contribute failure counts.
        let Ok(rx) = receive(&rx_samples, &layouts, estimation) else {
            continue;
        };
        for (k, &ok) in rx.sections[0].crc_ok.iter().enumerate() {
            if !ok {
                failures[k] += 1;
            }
        }
    }
    failures
        .into_iter()
        .map(|f| f as f64 / config.frames as f64)
        .collect()
}

/// Runs the calibration campaign and returns the measured curves.
///
/// This is compute-heavy (a full PHY chain per frame); benches use a
/// few tens of frames, which is enough to capture the bias shape.
pub fn measure_symbol_error_curves(config: &CalibrationConfig) -> SymbolErrorCurve {
    let standard = measure_scheme(config, Estimation::Standard);
    let rte = measure_scheme(config, Estimation::Rte(CalibrationRule::Average));
    SymbolErrorCurve::new(standard, rte)
}

#[cfg(test)]
mod tests {
    use super::*;
    use carpool_mac::error_model::{EstimationScheme, FrameErrorModel};

    #[test]
    fn calibration_produces_usable_curves() {
        let config = CalibrationConfig {
            frames: 4,
            payload_bits: 6_000,
            snr_db: 30.0,
            ..CalibrationConfig::default()
        };
        let curve = measure_symbol_error_curves(&config);
        let p_std = curve.subframe_success_prob(EstimationScheme::Standard, config.mcs, 0, 10);
        let p_rte = curve.subframe_success_prob(EstimationScheme::Rte, config.mcs, 0, 10);
        assert!((0.0..=1.0).contains(&p_std));
        assert!((0.0..=1.0).contains(&p_rte));
    }

    #[test]
    fn clean_channel_calibrates_to_no_errors() {
        let config = CalibrationConfig {
            frames: 2,
            payload_bits: 4_000,
            snr_db: 60.0,
            coherence_time_s: f64::INFINITY,
            cfo_hz: 0.0,
            ..CalibrationConfig::default()
        };
        let curve = measure_symbol_error_curves(&config);
        let p = curve.subframe_success_prob(EstimationScheme::Standard, config.mcs, 0, 50);
        assert!(p > 0.999, "p {p}");
    }
}
