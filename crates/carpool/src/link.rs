//! End-to-end Carpool link: aggregate frame → channel → station.
//!
//! Ties the whole stack together the way the paper's USRP testbed does:
//! the AP-side [`CarpoolFrame`] is modulated by `carpool-phy`, degraded
//! by a `carpool-channel` link model, and parsed by each station with
//! either standard or real-time channel estimation.

use carpool_channel::link::{LinkChannel, LinkChannelBuilder};
use carpool_channel::DelayProfile;
use carpool_frame::addr::MacAddress;
use carpool_frame::carpool::{receive_carpool_obs_with_scratch, CarpoolFrame, CarpoolReception};
use carpool_frame::FrameError;
use carpool_obs::{Event, Obs};
use carpool_phy::rte::CalibrationRule;
use carpool_phy::rx::{Estimation, PhyScratch};
use carpool_phy::tx::SideChannelConfig;

/// An end-to-end link between a Carpool AP and its stations.
///
/// # Examples
///
/// ```
/// use carpool::link::CarpoolLink;
/// use carpool_frame::addr::MacAddress;
/// use carpool_frame::carpool::{CarpoolFrame, Subframe};
/// use carpool_phy::mcs::Mcs;
///
/// # fn main() -> Result<(), carpool_frame::FrameError> {
/// let mut link = CarpoolLink::builder().snr_db(35.0).seed(3).build();
/// let frame = CarpoolFrame::new(vec![Subframe::new(
///     MacAddress::station(7),
///     Mcs::QPSK_1_2,
///     vec![0x42; 100],
/// )])?;
/// let rx = link.deliver(&frame, MacAddress::station(7))?;
/// assert_eq!(rx.payload_at(0).unwrap(), &[0x42; 100][..]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct CarpoolLink {
    channel: LinkChannel,
    estimation: Estimation,
    hashes: usize,
    side_channel: Option<SideChannelConfig>,
    obs: Obs,
    /// Receive workspace reused by [`CarpoolLink::deliver`] across
    /// frames ([`CarpoolLink::deliver_all`] workers keep their own).
    scratch: PhyScratch,
}

impl CarpoolLink {
    /// Starts building a link.
    pub fn builder() -> CarpoolLinkBuilder {
        CarpoolLinkBuilder::default()
    }

    /// The estimation mode stations on this link use.
    pub fn estimation(&self) -> Estimation {
        self.estimation
    }

    /// Attaches an observability handle used by subsequent deliveries.
    /// The facade knows which stations a frame was *really* addressed to,
    /// so on top of the frame/PHY events it emits
    /// [`Event::AhdrCheck`] records carrying ground truth — the basis for
    /// exact Bloom false-positive accounting in `carpool report`.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        let channel = self.channel;
        self.channel = channel.with_obs(obs.clone());
        self.obs = obs;
        self
    }

    /// Ground-truth membership check: whether `frame` carries a subframe
    /// addressed to `station`, independent of what the A-HDR says.
    fn emit_ahdr_truth(&self, frame: &CarpoolFrame, station: MacAddress, matched: bool) {
        if !self.obs.enabled() {
            return;
        }
        let aboard = frame.subframes().iter().any(|s| s.receiver == station);
        let name = match (matched, aboard) {
            (true, true) => "carpool.ahdr_true_positive",
            (true, false) => "carpool.ahdr_false_positive",
            (false, false) => "carpool.ahdr_true_negative",
            // Bloom filters admit no false negatives; seeing one means
            // the header itself was corrupted in flight.
            (false, true) => "carpool.ahdr_false_negative",
        };
        self.obs.counter(name, 1);
        let station_id = station
            .as_bytes()
            .iter()
            .fold(0u64, |acc, &b| (acc << 8) | b as u64);
        self.obs.emit(
            0.0,
            Event::AhdrCheck {
                station: station_id,
                matched,
                expected: Some(aboard),
            },
        );
    }

    /// Transmits `frame` over the channel and parses it at `station`.
    ///
    /// # Errors
    ///
    /// Propagates framing and PHY errors ([`FrameError`]).
    pub fn deliver(
        &mut self,
        frame: &CarpoolFrame,
        station: MacAddress,
    ) -> Result<CarpoolReception, FrameError> {
        let tx = frame.transmit()?;
        let rx_samples = self.channel.transmit(&tx.samples);
        let rx = receive_carpool_obs_with_scratch(
            &rx_samples,
            station,
            self.estimation,
            self.hashes,
            self.side_channel,
            &self.obs,
            &mut self.scratch,
        )?;
        self.emit_ahdr_truth(frame, station, !rx.matched_indices.is_empty());
        Ok(rx)
    }

    /// Transmits once and parses the *same* waveform at several stations
    /// (broadcast semantics — every STA hears the same downlink frame,
    /// though through an independent channel realisation here unless the
    /// builder's seed is reused).
    ///
    /// The per-station receive paths are independent, so they fan out
    /// across the `carpool-par` worker pool (`CARPOOL_THREADS` controls
    /// the width). Receptions come back in station order, and each
    /// worker records into a private observability shard whose metrics
    /// are merged — and whose events are replayed — into this link's
    /// handle in that same order, so threaded and serial runs produce
    /// identical metrics and an identically ordered event stream.
    ///
    /// # Errors
    ///
    /// Propagates framing and PHY errors ([`FrameError`]); the first
    /// failing station (in station order) wins. A panic inside a worker
    /// surfaces as [`FrameError::Malformed`] rather than unwinding
    /// through the pool.
    pub fn deliver_all(
        &mut self,
        frame: &CarpoolFrame,
        stations: &[MacAddress],
    ) -> Result<Vec<CarpoolReception>, FrameError> {
        use std::sync::Arc;

        let tx = frame.transmit()?;
        let rx_samples = self.channel.transmit(&tx.samples);
        let estimation = self.estimation;
        let hashes = self.hashes;
        let side_channel = self.side_channel;
        let observing = self.obs.enabled();
        // Flight-recorder shards mirror the metric/event shards: each
        // worker traces into a private ring sized like the link's, and
        // the shards are absorbed in station order below, so the merged
        // trace stream is identical at any thread count.
        let flight_capacity = self.obs.flight().map(|f| f.capacity());
        let frame_ctx = self.obs.frame_ctx();
        let time_base = self.obs.time_base();

        // Each pool worker keeps one PhyScratch for its whole share of
        // the stations: decode buffers, scatter maps, and the Viterbi
        // trellis are allocated once per worker, not once per station.
        let shards = carpool_par::par_map_indexed_scratch(
            stations,
            PhyScratch::default,
            |scratch, _idx, &sta| {
                let (shard_obs, shard, flight) = if observing {
                    let recorder = Arc::new(carpool_obs::MemoryRecorder::new());
                    let sink = Arc::new(carpool_obs::RingBufferSink::new(usize::MAX));
                    let mut shard_obs = Obs::new(recorder.clone(), sink.clone()); // lint:allow(hot-alloc): per-delivery frame routing, one per TXOP
                    let mut flight = None;
                    if let Some(cap) = flight_capacity {
                        let f = Arc::new(carpool_obs::FlightRecorder::new(cap));
                        shard_obs = shard_obs
                            .with_flight(f.clone()) // lint:allow(hot-alloc): per-delivery frame routing, one per TXOP
                            .for_frame(frame_ctx)
                            .with_time_base(time_base);
                        flight = Some(f);
                    }
                    (shard_obs, Some((recorder, sink)), flight)
                } else {
                    (Obs::noop(), None, None)
                };
                let rx = receive_carpool_obs_with_scratch(
                    &rx_samples,
                    sta,
                    estimation,
                    hashes,
                    side_channel,
                    &shard_obs,
                    scratch,
                );
                let captured = shard.map(|(recorder, sink)| (recorder.snapshot(), sink.events()));
                let traced = flight.map(|f| (f.records(), f.dropped()));
                (rx, captured, traced)
            },
        )
        .map_err(|panic| FrameError::Malformed {
            reason: format!("parallel receive failed: {panic}"), // lint:allow(hot-alloc): per-delivery frame routing, one per TXOP
        })?;

        let mut receptions = Vec::with_capacity(shards.len()); // lint:allow(hot-alloc): per-delivery frame routing, one per TXOP
        for ((rx, captured, traced), &sta) in shards.into_iter().zip(stations) {
            if let Some((snapshot, events)) = captured {
                self.obs.merge_metrics(&snapshot);
                for stamped in events {
                    self.obs.emit(stamped.t, stamped.event);
                }
            }
            if let (Some(flight), Some((records, dropped))) = (self.obs.flight(), traced) {
                flight.absorb(&records, dropped);
            }
            let rx = rx?;
            self.emit_ahdr_truth(frame, sta, !rx.matched_indices.is_empty());
            receptions.push(rx);
        }
        Ok(receptions)
    }
}

/// Builder for [`CarpoolLink`].
#[derive(Debug, Clone)]
pub struct CarpoolLinkBuilder {
    channel: LinkChannelBuilder,
    estimation: Estimation,
    hashes: usize,
    side_channel: Option<SideChannelConfig>,
}

impl Default for CarpoolLinkBuilder {
    fn default() -> Self {
        CarpoolLinkBuilder {
            channel: LinkChannel::builder(),
            estimation: Estimation::Rte(CalibrationRule::Average),
            hashes: carpool_bloom::DEFAULT_HASHES,
            side_channel: Some(SideChannelConfig::default()),
        }
    }
}

impl CarpoolLinkBuilder {
    /// AWGN at the given SNR (default: noiseless).
    pub fn snr_db(&mut self, snr_db: f64) -> &mut Self {
        self.channel.snr_db(snr_db);
        self
    }

    /// AWGN from a USRP-style power magnitude.
    pub fn power_magnitude(&mut self, magnitude: f64) -> &mut Self {
        self.channel.power_magnitude(magnitude);
        self
    }

    /// Time-varying Rayleigh fading with the given coherence time.
    pub fn coherence_time(&mut self, seconds: f64) -> &mut Self {
        self.channel.coherence_time(seconds);
        self
    }

    /// Static Rayleigh fading.
    pub fn static_fading(&mut self) -> &mut Self {
        self.channel.static_fading();
        self
    }

    /// Rician K-factor of the fading (0 = Rayleigh).
    pub fn rician_k(&mut self, k: f64) -> &mut Self {
        self.channel.rician_k(k);
        self
    }

    /// Multipath power delay profile.
    pub fn profile(&mut self, profile: DelayProfile) -> &mut Self {
        self.channel.profile(profile);
        self
    }

    /// Residual CFO in Hz.
    pub fn cfo_hz(&mut self, hz: f64) -> &mut Self {
        self.channel.cfo_hz(hz);
        self
    }

    /// RNG seed.
    pub fn seed(&mut self, seed: u64) -> &mut Self {
        self.channel.seed(seed);
        self
    }

    /// Station-side estimation mode (default: RTE with Eq. 3 averaging).
    pub fn estimation(&mut self, estimation: Estimation) -> &mut Self {
        self.estimation = estimation;
        if matches!(estimation, Estimation::Standard) {
            // The side channel is only needed by RTE; keep symmetric
            // defaults but allow explicit override afterwards.
        }
        self
    }

    /// Side-channel configuration shared by AP and stations.
    pub fn side_channel(&mut self, sc: Option<SideChannelConfig>) -> &mut Self {
        self.side_channel = sc;
        self
    }

    /// Bloom-filter hash count.
    pub fn hashes(&mut self, hashes: usize) -> &mut Self {
        self.hashes = hashes;
        self
    }

    /// Builds the link.
    pub fn build(&self) -> CarpoolLink {
        CarpoolLink {
            channel: self.channel.build(),
            estimation: self.estimation,
            hashes: self.hashes,
            side_channel: self.side_channel,
            obs: Obs::noop(),
            scratch: PhyScratch::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use carpool_frame::carpool::Subframe;
    use carpool_phy::mcs::Mcs;

    fn two_sta_frame() -> CarpoolFrame {
        CarpoolFrame::new(vec![
            Subframe::new(MacAddress::station(1), Mcs::QPSK_1_2, vec![0xAA; 150]),
            Subframe::new(MacAddress::station(2), Mcs::QAM16_1_2, vec![0xBB; 250]),
        ])
        .unwrap()
    }

    #[test]
    fn clean_link_delivers_both_receivers() {
        let mut link = CarpoolLink::builder().seed(1).build();
        let frame = two_sta_frame();
        let rx = link
            .deliver_all(&frame, &[MacAddress::station(1), MacAddress::station(2)])
            .unwrap();
        assert_eq!(rx[0].payload_at(0).unwrap(), &[0xAA; 150][..]);
        assert_eq!(rx[1].payload_at(1).unwrap(), &[0xBB; 250][..]);
    }

    #[test]
    fn high_snr_fading_link_decodes() {
        let mut link = CarpoolLink::builder()
            .snr_db(35.0)
            .static_fading()
            .cfo_hz(100.0)
            .seed(5)
            .build();
        let frame = two_sta_frame();
        let rx = link.deliver(&frame, MacAddress::station(1)).unwrap();
        assert_eq!(rx.payload_at(0).unwrap(), &[0xAA; 150][..]);
    }

    #[test]
    fn standard_estimation_mode_works_too() {
        let mut link = CarpoolLink::builder()
            .estimation(Estimation::Standard)
            .snr_db(30.0)
            .seed(9)
            .build();
        let frame = two_sta_frame();
        let rx = link.deliver(&frame, MacAddress::station(2)).unwrap();
        assert_eq!(rx.payload_at(1).unwrap(), &[0xBB; 250][..]);
    }

    #[test]
    fn obs_records_ahdr_ground_truth() {
        use carpool_obs::{MemoryRecorder, Obs};
        use std::sync::Arc;

        let recorder = Arc::new(MemoryRecorder::new());
        let mut link = CarpoolLink::builder()
            .seed(1)
            .build()
            .with_obs(Obs::with_recorder(recorder.clone()));
        let frame = two_sta_frame();
        link.deliver_all(
            &frame,
            &[
                MacAddress::station(1),
                MacAddress::station(2),
                MacAddress::station(700),
            ],
        )
        .unwrap();
        let snap = recorder.snapshot();
        // Both addressed stations must match (no false negatives).
        assert_eq!(snap.counter("carpool.ahdr_true_positive"), 2);
        assert_eq!(snap.counter("carpool.ahdr_false_negative"), 0);
        // The outsider is either a clean miss or a counted false positive.
        assert_eq!(
            snap.counter("carpool.ahdr_true_negative")
                + snap.counter("carpool.ahdr_false_positive"),
            1
        );
        // Frame- and PHY-layer metrics flow through the same handle.
        assert!(snap.counter("frame.subframe_decoded") >= 2);
        assert!(snap.counter("phy.sections_decoded") > 0);
    }

    #[test]
    fn outsider_gets_nothing_useful() {
        let mut link = CarpoolLink::builder().seed(2).build();
        let frame = two_sta_frame();
        let rx = link.deliver(&frame, MacAddress::station(500)).unwrap();
        assert!(rx.payload_at(0).is_none() || rx.matched_indices.contains(&0));
    }
}
