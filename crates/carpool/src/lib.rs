#![warn(missing_docs)]
//! # carpool — multi-receiver PHY frame aggregation for public WLANs
//!
//! A full software reproduction of *"Less Transmissions, More
//! Throughput: Bringing Carpool to Public WLANs"* (ICDCS 2015). Carpool
//! lets a Wi-Fi AP feed frames for **multiple receivers into one PHY
//! transmission**, slashing contention in crowded public WLANs. Its two
//! mechanisms:
//!
//! * a **coded Bloom filter aggregation header** (A-HDR) that names each
//!   subframe's receiver in 48 bits regardless of receiver count, and
//! * **real-time channel estimation** (RTE): a phase-offset side channel
//!   carries per-symbol CRCs, and correctly decoded symbols become data
//!   pilots that keep the channel estimate fresh across long frames.
//!
//! This facade crate re-exports the whole stack and adds what ties it
//! together:
//!
//! * [`link`] — end-to-end AP→channel→station delivery,
//! * [`calibrate`] — PHY Monte-Carlo → MAC error-model calibration,
//! * [`energy`] — the Section 8 device energy analysis.
//!
//! The substrate crates: [`carpool_phy`] (OFDM PHY), [`carpool_channel`]
//! (channel models), [`carpool_bloom`] (A-HDR), [`carpool_frame`]
//! (framing/aggregation/NAV), [`carpool_traffic`] (public-WLAN traffic)
//! and [`carpool_mac`] (DCF simulator with the five compared protocols).
//!
//! # Examples
//!
//! One aggregated frame, two receivers, over a noisy fading channel:
//!
//! ```
//! use carpool::link::CarpoolLink;
//! use carpool_frame::addr::MacAddress;
//! use carpool_frame::carpool::{CarpoolFrame, Subframe};
//! use carpool_phy::mcs::Mcs;
//!
//! # fn main() -> Result<(), carpool_frame::FrameError> {
//! let mut link = CarpoolLink::builder().snr_db(32.0).seed(7).build();
//! let frame = CarpoolFrame::new(vec![
//!     Subframe::new(MacAddress::station(1), Mcs::QPSK_1_2, vec![1; 200]),
//!     Subframe::new(MacAddress::station(2), Mcs::QAM16_3_4, vec![2; 400]),
//! ])?;
//! let rx = link.deliver(&frame, MacAddress::station(1))?;
//! assert_eq!(rx.payload_at(0).unwrap(), &[1; 200][..]);
//! # Ok(())
//! # }
//! ```

pub mod calibrate;
pub mod energy;
pub mod link;
pub mod scenario;

pub use calibrate::{measure_symbol_error_curves, CalibrationConfig};
pub use energy::DevicePowerModel;
pub use link::{CarpoolLink, CarpoolLinkBuilder};
pub use scenario::{busy_cell, deadline_cell, fig03_flight_trace, voip_cell, FlightTraceSummary};

// Convenience re-exports of the substrate crates.
pub use carpool_bloom as bloom;
pub use carpool_channel as channel;
pub use carpool_frame as frame;
pub use carpool_mac as mac;
pub use carpool_phy as phy;
pub use carpool_traffic as traffic;
