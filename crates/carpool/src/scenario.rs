//! Named simulation scenarios matching the paper's evaluation setups.
//!
//! The benches, CLI and downstream users all need the same handful of
//! configurations; these constructors are the single source of truth
//! for the Fig. 15/16/17 operating points.

use crate::link::CarpoolLink;
use carpool_frame::addr::MacAddress;
use carpool_frame::carpool::{CarpoolFrame, Subframe};
use carpool_frame::FrameError;
use carpool_mac::protocol::Protocol;
use carpool_mac::sim::{AggregationWait, DownlinkTraffic, SimConfig, UplinkTraffic};
use carpool_obs::{Obs, TraceKind};
use carpool_phy::mcs::{Mcs, SYMBOL_DURATION};

/// Fig. 15: two-way VoIP per station, two APs, no background traffic.
pub fn voip_cell(protocol: Protocol, num_stas: usize, seed: u64) -> SimConfig {
    SimConfig {
        protocol,
        num_stas,
        duration_s: 8.0,
        seed,
        ..SimConfig::default()
    }
}

/// Fig. 16: the VoIP cell plus SIGCOMM'08-style uplink background.
pub fn busy_cell(protocol: Protocol, num_stas: usize, seed: u64) -> SimConfig {
    SimConfig {
        uplink: Some(UplinkTraffic::default()),
        ..voip_cell(protocol, num_stas, seed)
    }
}

/// Fig. 17: deadline-bounded CBR downlink at the VoIP packet rate with
/// expired-frame dropping and a deadline-driven aggregation trigger.
pub fn deadline_cell(
    protocol: Protocol,
    frame_bytes: usize,
    deadline_s: f64,
    uplink_scale: f64,
    seed: u64,
) -> SimConfig {
    SimConfig {
        protocol,
        num_stas: 30,
        duration_s: 6.0,
        seed,
        downlink: DownlinkTraffic::Cbr {
            interval_s: 0.010,
            bytes: frame_bytes,
        },
        uplink: Some(UplinkTraffic {
            tcp_fraction: 0.5,
            rate_scale: uplink_scale,
        }),
        deadline: Some(deadline_s),
        drop_expired_s: Some(deadline_s),
        aggregation_wait: Some(AggregationWait {
            max_latency_s: deadline_s * 0.5,
            max_bytes: 65_535,
        }),
        bidirectional_voip: false,
        ..SimConfig::default()
    }
}

/// What [`fig03_flight_trace`] delivered, per station.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightTraceSummary {
    /// Stations whose own subframe decoded byte-exact.
    pub delivered: usize,
    /// Addressed stations on the frame.
    pub stations: usize,
    /// Payload OFDM symbols on air.
    pub payload_symbols: usize,
}

/// Fig. 3-shaped single-frame workload for the flight recorder: one long
/// Carpool aggregate (QAM64-3/4, ~1500-byte subframes) over the office
/// fading link (4 ms coherence, Rician K = 15, 100 Hz CFO), delivered to
/// every addressed station plus one outsider so the trace shows both a
/// full lifecycle (enqueue → A-HDR decision → per-symbol RTE → outcome →
/// ACK) and an early A-HDR drop.
///
/// All trace timestamps derive from a synthetic MAC timeline in sim
/// time: enqueues at `i·10 µs`, the aggregation decision and airtime
/// start at 100 µs, and everything inside the frame at
/// `airtime start + symbol·4 µs` — so the stream is a pure function of
/// `(num_stas, snr_db, seed)` and byte-identical at any thread count.
///
/// # Errors
///
/// Propagates framing and PHY errors ([`FrameError`]).
pub fn fig03_flight_trace(
    num_stas: usize,
    snr_db: f64,
    seed: u64,
    obs: &Obs,
) -> Result<FlightTraceSummary, FrameError> {
    const FRAME_ID: u64 = 1;
    const T_AIR: f64 = 100e-6;
    const SIFS: f64 = 16e-6;

    let num_stas = num_stas.clamp(1, carpool_bloom::MAX_RECEIVERS);
    let stations: Vec<MacAddress> = (1..=num_stas as u16).map(MacAddress::station).collect();
    let payload = |k: usize| vec![(k as u8) ^ 0xC3; 1500];
    let frame = CarpoolFrame::new(
        stations
            .iter()
            .enumerate()
            .map(|(k, &sta)| Subframe::new(sta, Mcs::QAM64_3_4, payload(k)))
            .collect(),
    )?;

    let mac_obs = obs.for_frame(FRAME_ID);
    let header = frame.header();
    for (i, sta) in stations.iter().enumerate() {
        let sta_id = sta
            .as_bytes()
            .iter()
            .fold(0u64, |acc, &b| (acc << 8) | b as u64);
        mac_obs.trace(TraceKind::MacEnqueue, i as f64 * 10e-6, sta_id, 1500);
        // AggDecision payload mirrors the frame-side AhdrDecision: the
        // Bloom positions this receiver's hash set occupies.
        mac_obs.trace(
            TraceKind::AggDecision,
            T_AIR,
            sta_id,
            header.probe_mask(sta.as_bytes(), i),
        );
    }

    let tx = frame.transmit()?;
    let airtime = tx.payload_symbols() as f64 * SYMBOL_DURATION;
    mac_obs.trace(
        TraceKind::AirtimeStart,
        T_AIR,
        num_stas as u64,
        tx.payload_symbols() as u64,
    );

    let mut link = CarpoolLink::builder()
        .snr_db(snr_db)
        .coherence_time(4e-3)
        .rician_k(15.0)
        .cfo_hz(100.0)
        .seed(seed)
        .build()
        // In-frame events are stamped relative to airtime start.
        .with_obs(obs.for_frame(FRAME_ID).with_time_base(T_AIR));
    let mut receivers = stations.clone();
    receivers.push(MacAddress::station(900)); // outsider: early A-HDR drop
    let receptions = link.deliver_all(&frame, &receivers)?;

    mac_obs.trace(
        TraceKind::AirtimeEnd,
        T_AIR + airtime,
        num_stas as u64,
        tx.payload_symbols() as u64,
    );

    let mut delivered = 0usize;
    for (k, (rx, sta)) in receptions.iter().zip(&stations).enumerate() {
        let intact = rx.payload_at(k).is_some_and(|p| p == &payload(k)[..]);
        let sta_id = sta
            .as_bytes()
            .iter()
            .fold(0u64, |acc, &b| (acc << 8) | b as u64);
        let t_ack = T_AIR + airtime + SIFS * (k + 1) as f64;
        if intact {
            delivered += 1;
            // b carries the delivery delay (enqueue → ACK) as f64 bits.
            let delay = t_ack - k as f64 * 10e-6;
            mac_obs.trace(TraceKind::MacAck, t_ack, sta_id, delay.to_bits());
        } else {
            mac_obs.trace(TraceKind::MacDrop, t_ack, sta_id, 0);
        }
    }

    Ok(FlightTraceSummary {
        delivered,
        stations: num_stas,
        payload_symbols: tx.payload_symbols(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use carpool_mac::error_model::BerBiasModel;
    use carpool_mac::sim::Simulator;

    #[test]
    fn scenarios_have_paper_parameters() {
        let v = voip_cell(Protocol::Carpool, 30, 1);
        assert_eq!(v.num_aps, 2);
        assert!(v.bidirectional_voip);
        assert!(v.uplink.is_none());

        let b = busy_cell(Protocol::Ampdu, 20, 1);
        assert!(b.uplink.is_some());

        let d = deadline_cell(Protocol::Carpool, 120, 0.05, 2.0, 1);
        assert_eq!(d.deadline, Some(0.05));
        assert_eq!(d.drop_expired_s, Some(0.05));
        assert!(d.aggregation_wait.is_some());
        assert!(!d.bidirectional_voip);
    }

    #[test]
    fn flight_trace_captures_a_full_lifecycle() {
        use carpool_obs::FlightRecorder;
        use std::sync::Arc;

        let flight = Arc::new(FlightRecorder::new(carpool_obs::DEFAULT_TRACE_CAPACITY));
        let obs = Obs::noop().with_flight(flight.clone());
        let summary = fig03_flight_trace(2, 30.0, 42, &obs).unwrap();
        assert_eq!(summary.stations, 2);
        assert_eq!(summary.delivered, 2, "clean 30 dB link must deliver");

        let records = flight.records();
        let count = |k: TraceKind| records.iter().filter(|r| r.kind() == Some(k)).count();
        // One complete lifecycle per station, plus the outsider's drop.
        assert_eq!(count(TraceKind::MacEnqueue), 2);
        assert_eq!(count(TraceKind::AggDecision), 2);
        assert_eq!(count(TraceKind::AirtimeStart), 1);
        assert_eq!(count(TraceKind::AirtimeEnd), 1);
        assert_eq!(count(TraceKind::AhdrDecision), 3); // 2 STAs + outsider
        assert!(count(TraceKind::StaOutcome) >= 2);
        assert_eq!(count(TraceKind::MacAck), 2);
        assert!(count(TraceKind::RteRecal) > 0, "RTE events missing");
        assert!(count(TraceKind::SideCrc) > 0, "side-CRC events missing");
        // Every record is tied to the frame and stamped inside the
        // synthetic MAC timeline.
        assert!(records.iter().all(|r| r.frame() == 1));
        assert_eq!(flight.dropped(), 0);
    }

    #[test]
    fn scenarios_run() {
        for cfg in [
            SimConfig {
                duration_s: 1.0,
                ..voip_cell(Protocol::Carpool, 8, 3)
            },
            SimConfig {
                duration_s: 1.0,
                ..busy_cell(Protocol::Dot11, 8, 3)
            },
            SimConfig {
                duration_s: 1.0,
                ..deadline_cell(Protocol::Ampdu, 200, 0.05, 1.0, 3)
            },
        ] {
            let report = Simulator::new(cfg, Box::new(BerBiasModel::calibrated())).run();
            assert!(report.downlink.delivered_frames > 0);
        }
    }
}
