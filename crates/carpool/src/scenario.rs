//! Named simulation scenarios matching the paper's evaluation setups.
//!
//! The benches, CLI and downstream users all need the same handful of
//! configurations; these constructors are the single source of truth
//! for the Fig. 15/16/17 operating points.

use carpool_mac::protocol::Protocol;
use carpool_mac::sim::{AggregationWait, DownlinkTraffic, SimConfig, UplinkTraffic};

/// Fig. 15: two-way VoIP per station, two APs, no background traffic.
pub fn voip_cell(protocol: Protocol, num_stas: usize, seed: u64) -> SimConfig {
    SimConfig {
        protocol,
        num_stas,
        duration_s: 8.0,
        seed,
        ..SimConfig::default()
    }
}

/// Fig. 16: the VoIP cell plus SIGCOMM'08-style uplink background.
pub fn busy_cell(protocol: Protocol, num_stas: usize, seed: u64) -> SimConfig {
    SimConfig {
        uplink: Some(UplinkTraffic::default()),
        ..voip_cell(protocol, num_stas, seed)
    }
}

/// Fig. 17: deadline-bounded CBR downlink at the VoIP packet rate with
/// expired-frame dropping and a deadline-driven aggregation trigger.
pub fn deadline_cell(
    protocol: Protocol,
    frame_bytes: usize,
    deadline_s: f64,
    uplink_scale: f64,
    seed: u64,
) -> SimConfig {
    SimConfig {
        protocol,
        num_stas: 30,
        duration_s: 6.0,
        seed,
        downlink: DownlinkTraffic::Cbr {
            interval_s: 0.010,
            bytes: frame_bytes,
        },
        uplink: Some(UplinkTraffic {
            tcp_fraction: 0.5,
            rate_scale: uplink_scale,
        }),
        deadline: Some(deadline_s),
        drop_expired_s: Some(deadline_s),
        aggregation_wait: Some(AggregationWait {
            max_latency_s: deadline_s * 0.5,
            max_bytes: 65_535,
        }),
        bidirectional_voip: false,
        ..SimConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use carpool_mac::error_model::BerBiasModel;
    use carpool_mac::sim::Simulator;

    #[test]
    fn scenarios_have_paper_parameters() {
        let v = voip_cell(Protocol::Carpool, 30, 1);
        assert_eq!(v.num_aps, 2);
        assert!(v.bidirectional_voip);
        assert!(v.uplink.is_none());

        let b = busy_cell(Protocol::Ampdu, 20, 1);
        assert!(b.uplink.is_some());

        let d = deadline_cell(Protocol::Carpool, 120, 0.05, 2.0, 1);
        assert_eq!(d.deadline, Some(0.05));
        assert_eq!(d.drop_expired_s, Some(0.05));
        assert!(d.aggregation_wait.is_some());
        assert!(!d.bidirectional_voip);
    }

    #[test]
    fn scenarios_run() {
        for cfg in [
            SimConfig {
                duration_s: 1.0,
                ..voip_cell(Protocol::Carpool, 8, 3)
            },
            SimConfig {
                duration_s: 1.0,
                ..busy_cell(Protocol::Dot11, 8, 3)
            },
            SimConfig {
                duration_s: 1.0,
                ..deadline_cell(Protocol::Ampdu, 200, 0.05, 1.0, 3)
            },
        ] {
            let report = Simulator::new(cfg, Box::new(BerBiasModel::calibrated())).run();
            assert!(report.downlink.delivered_frames > 0);
        }
    }
}
