//! Golden-corpus equivalence: the integer Viterbi kernel against the
//! f64 reference oracle.
//!
//! The production decoder (`decode_soft_quantized`) quantizes LLRs to a
//! `2^-7` fixed-point grid before running the branchless integer ACS
//! kernel. On LLRs that already sit on that grid, quantization is exact
//! and the kernel must reproduce the oracle's hard decisions *bit for
//! bit* — including tie-breaks, which both decoders resolve towards the
//! low-numbered predecessor. The corpus below drives both decoders over
//! more than 10,000 seeded frames at every code rate, weighted towards
//! tie-prone small magnitudes and erasure-heavy punctured rates, and
//! requires zero mismatches.
//!
//! A proptest section separately exercises the saturation edges of
//! [`quantize_llr`]: huge finite LLRs, infinities and NaN.

use carpool_phy::convolutional::{
    coded_len, decode_levels_with, decode_soft_quantized_with, decode_soft_with, decode_with,
    encode, quantize_llr, CodeRate, ViterbiScratch, LLR_QUANT_CLAMP,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const RATES: [CodeRate; 3] = [CodeRate::Half, CodeRate::TwoThirds, CodeRate::ThreeQuarters];

/// Frames per (rate, flavour) combination; 3 rates x 2 flavours x 1700
/// frames > 10,000 frames total.
const FRAMES_PER_CASE: usize = 1700;

/// Integer-valued LLR in [-64, 64]: exactly representable both as an
/// f64 path-metric summand and on the 2^-7 quantization grid (where it
/// becomes `k * 128`), so oracle and kernel see order-isomorphic
/// metrics — ties included.
fn grid_llr(rng: &mut StdRng) -> f64 {
    // Two-thirds of positions draw from a tie-prone tiny alphabet.
    if rng.gen_range(0..3) < 2 {
        f64::from(rng.gen_range(-2i32..=2))
    } else {
        f64::from(rng.gen_range(-64i32..=64))
    }
}

/// Corpus flavour A: LLRs loosely correlated with a real codeword, as a
/// noisy receiver would produce.
fn codeword_frame(rng: &mut StdRng, rate: CodeRate, message_len: usize) -> Vec<f64> {
    let bits: Vec<u8> = (0..message_len).map(|_| rng.gen_range(0..=1)).collect();
    let coded = encode(&bits, rate);
    coded
        .iter()
        .map(|&b| {
            let sign = if b == 1 { 1.0 } else { -1.0 };
            let mag = grid_llr(rng).abs();
            // A fifth of positions carry the wrong sign (channel errors).
            if rng.gen_range(0..5) == 0 {
                -sign * mag
            } else {
                sign * mag
            }
        })
        .collect()
}

/// Corpus flavour B: adversarial pure-noise LLRs with no underlying
/// codeword. Equivalence must hold for arbitrary inputs.
fn noise_frame(rng: &mut StdRng, rate: CodeRate, message_len: usize) -> Vec<f64> {
    (0..coded_len(message_len, rate))
        .map(|_| grid_llr(rng))
        .collect()
}

#[test]
fn golden_corpus_integer_kernel_matches_f64_oracle() {
    let mut rng = StdRng::seed_from_u64(0xC0DE_2026);
    let mut scratch = ViterbiScratch::default();
    let mut oracle_scratch = ViterbiScratch::default();
    let mut frames = 0usize;
    for rate in RATES {
        for flavour in 0..2 {
            for _ in 0..FRAMES_PER_CASE {
                let message_len = rng.gen_range(48..=128);
                let llrs = if flavour == 0 {
                    codeword_frame(&mut rng, rate, message_len)
                } else {
                    noise_frame(&mut rng, rate, message_len)
                };
                let fast = decode_soft_quantized_with(&llrs, message_len, rate, &mut scratch);
                let oracle = decode_soft_with(&llrs, message_len, rate, &mut oracle_scratch);
                assert_eq!(
                    fast, oracle,
                    "mismatch at rate {rate}, flavour {flavour}, frame {frames}"
                );
                frames += 1;
            }
        }
    }
    assert!(frames >= 10_000, "corpus too small: {frames}");
}

#[test]
fn golden_corpus_prequantized_levels_match_quantizing_path() {
    // The fused RX pipeline hands the batched-ACS kernel pre-quantized
    // levels instead of f64 LLRs; that entry point must reproduce the
    // quantizing entry point (and, by the corpus above, the f64 oracle)
    // bit for bit — including frames truncated mid-puncture-period the
    // way a section's usable-length cut truncates its last symbol.
    let mut rng = StdRng::seed_from_u64(0xBA7C_4AC5);
    let mut scratch = ViterbiScratch::default();
    let mut ref_scratch = ViterbiScratch::default();
    let mut frames = 0usize;
    for rate in RATES {
        for flavour in 0..2 {
            for _ in 0..FRAMES_PER_CASE / 4 {
                let message_len = rng.gen_range(48..=128);
                let mut llrs = if flavour == 0 {
                    codeword_frame(&mut rng, rate, message_len)
                } else {
                    noise_frame(&mut rng, rate, message_len)
                };
                // Cut 0..=7 trailing stream positions: every puncture-
                // period boundary offset for every rate.
                let cut = rng.gen_range(0usize..8).min(llrs.len());
                llrs.truncate(llrs.len() - cut);
                let levels: Vec<i32> = llrs.iter().map(|&l| quantize_llr(l)).collect();
                let via_levels = decode_levels_with(&levels, message_len, rate, &mut scratch);
                let via_f64 =
                    decode_soft_quantized_with(&llrs, message_len, rate, &mut ref_scratch);
                assert_eq!(
                    via_levels, via_f64,
                    "mismatch at rate {rate}, flavour {flavour}, frame {frames}, cut {cut}"
                );
                frames += 1;
            }
        }
    }
    assert!(frames >= 2_500, "corpus too small: {frames}");
}

#[test]
fn golden_corpus_hard_levels_match_hard_decoder() {
    // The fused hard path scatters ±1 levels; fed those, the levels
    // entry point must match the hard-input decoder on every frame,
    // channel errors included (both resolve ties to the low-numbered
    // predecessor).
    let mut rng = StdRng::seed_from_u64(0x5EED_2026);
    let mut scratch = ViterbiScratch::default();
    let mut hard_scratch = ViterbiScratch::default();
    for (frame, rate) in RATES.iter().cycle().take(900).enumerate() {
        let message_len = rng.gen_range(48..=128);
        let bits: Vec<u8> = (0..message_len).map(|_| rng.gen_range(0..=1)).collect();
        let mut coded = encode(&bits, *rate);
        for b in coded.iter_mut() {
            // ~6% raw bit errors: enough to exercise non-trivial
            // traceback without overwhelming the code.
            if rng.gen_range(0..16) == 0 {
                *b ^= 1;
            }
        }
        let levels: Vec<i32> = coded.iter().map(|&b| i32::from(b) * 2 - 1).collect();
        let via_levels = decode_levels_with(&levels, message_len, *rate, &mut scratch);
        let via_hard = decode_with(&coded, message_len, *rate, &mut hard_scratch);
        assert_eq!(
            via_levels, via_hard,
            "mismatch at rate {rate}, frame {frame}"
        );
    }
}

#[test]
fn saturated_levels_at_clamp_match_quantizing_path() {
    // Frames dominated by full-scale ±LLR_QUANT_CLAMP levels drive the
    // branch metric to its declared ±2^21 budget edge on nearly every
    // step; the plain (non-saturating) adds of the batched kernel must
    // still agree with the quantizing path exactly. Levels on the 2^-7
    // grid map back to f64 losslessly, so both entries see identical
    // inputs.
    let mut rng = StdRng::seed_from_u64(0xC1A3_2026);
    let mut scratch = ViterbiScratch::default();
    let mut ref_scratch = ViterbiScratch::default();
    const ALPHABET: [i32; 7] = [
        -LLR_QUANT_CLAMP,
        -LLR_QUANT_CLAMP,
        -LLR_QUANT_CLAMP,
        -128,
        0,
        128,
        LLR_QUANT_CLAMP,
    ];
    for rate in RATES {
        for frame in 0..300 {
            let message_len = rng.gen_range(48..=96);
            let levels: Vec<i32> = (0..coded_len(message_len, rate))
                .map(|_| {
                    let v = ALPHABET[rng.gen_range(0..ALPHABET.len())];
                    if rng.gen_range(0..2) == 0 {
                        v
                    } else {
                        -v
                    }
                })
                .collect();
            let llrs: Vec<f64> = levels.iter().map(|&q| f64::from(q) / 128.0).collect();
            let via_levels = decode_levels_with(&levels, message_len, rate, &mut scratch);
            let via_f64 = decode_soft_quantized_with(&llrs, message_len, rate, &mut ref_scratch);
            assert_eq!(
                via_levels, via_f64,
                "mismatch at rate {rate}, frame {frame}"
            );
        }
    }
}

#[test]
fn quantizer_edge_values() {
    // NaN carries no information -> erasure.
    assert_eq!(quantize_llr(f64::NAN), 0);
    // Infinities saturate at the clamp instead of overflowing.
    assert_eq!(quantize_llr(f64::INFINITY), LLR_QUANT_CLAMP);
    assert_eq!(quantize_llr(f64::NEG_INFINITY), -LLR_QUANT_CLAMP);
    assert_eq!(quantize_llr(0.0), 0);
    assert_eq!(quantize_llr(1.0), 128);
    assert_eq!(quantize_llr(-1.0), -128);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Saturating quantization never leaves the clamp interval, for any
    // finite or non-finite input (raw bit patterns cover every float,
    // NaNs and infinities included).
    #[test]
    fn quantizer_always_within_clamp(bits in any::<u64>()) {
        let q = quantize_llr(f64::from_bits(bits));
        prop_assert!((-LLR_QUANT_CLAMP..=LLR_QUANT_CLAMP).contains(&q));
    }

    // Frames peppered with saturation-edge LLRs (huge magnitudes,
    // infinities, NaN) still decode without panic or metric wrap, and
    // confidently-signed positions dominate the decision.
    #[test]
    fn saturated_frames_decode_cleanly(
        seed in any::<u64>(),
        rate_idx in 0usize..3,
    ) {
        let rate = RATES[rate_idx];
        let mut rng = StdRng::seed_from_u64(seed);
        let bits: Vec<u8> = (0..80).map(|_| rng.gen_range(0..=1)).collect();
        let coded = encode(&bits, rate);
        let llrs: Vec<f64> = coded
            .iter()
            .map(|&b| {
                let sign = if b == 1 { 1.0 } else { -1.0 };
                match rng.gen_range(0..4) {
                    // Far beyond the clamp: saturates, keeps its sign.
                    0 => sign * 1e18,
                    1 => sign * f64::INFINITY,
                    // NaN quantizes to an erasure; the code corrects it.
                    2 if rng.gen_range(0..8) == 0 => f64::NAN,
                    _ => sign * 8.0,
                }
            })
            .collect();
        let decoded = decode_soft_quantized_with(
            &llrs,
            bits.len(),
            rate,
            &mut ViterbiScratch::default(),
        );
        prop_assert_eq!(decoded, bits);
    }
}
