//! Golden-corpus equivalence: the integer Viterbi kernel against the
//! f64 reference oracle.
//!
//! The production decoder (`decode_soft_quantized`) quantizes LLRs to a
//! `2^-7` fixed-point grid before running the branchless integer ACS
//! kernel. On LLRs that already sit on that grid, quantization is exact
//! and the kernel must reproduce the oracle's hard decisions *bit for
//! bit* — including tie-breaks, which both decoders resolve towards the
//! low-numbered predecessor. The corpus below drives both decoders over
//! more than 10,000 seeded frames at every code rate, weighted towards
//! tie-prone small magnitudes and erasure-heavy punctured rates, and
//! requires zero mismatches.
//!
//! A proptest section separately exercises the saturation edges of
//! [`quantize_llr`]: huge finite LLRs, infinities and NaN.

use carpool_phy::convolutional::{
    coded_len, decode_soft_quantized_with, decode_soft_with, encode, quantize_llr, CodeRate,
    ViterbiScratch, LLR_QUANT_CLAMP,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const RATES: [CodeRate; 3] = [CodeRate::Half, CodeRate::TwoThirds, CodeRate::ThreeQuarters];

/// Frames per (rate, flavour) combination; 3 rates x 2 flavours x 1700
/// frames > 10,000 frames total.
const FRAMES_PER_CASE: usize = 1700;

/// Integer-valued LLR in [-64, 64]: exactly representable both as an
/// f64 path-metric summand and on the 2^-7 quantization grid (where it
/// becomes `k * 128`), so oracle and kernel see order-isomorphic
/// metrics — ties included.
fn grid_llr(rng: &mut StdRng) -> f64 {
    // Two-thirds of positions draw from a tie-prone tiny alphabet.
    if rng.gen_range(0..3) < 2 {
        f64::from(rng.gen_range(-2i32..=2))
    } else {
        f64::from(rng.gen_range(-64i32..=64))
    }
}

/// Corpus flavour A: LLRs loosely correlated with a real codeword, as a
/// noisy receiver would produce.
fn codeword_frame(rng: &mut StdRng, rate: CodeRate, message_len: usize) -> Vec<f64> {
    let bits: Vec<u8> = (0..message_len).map(|_| rng.gen_range(0..=1)).collect();
    let coded = encode(&bits, rate);
    coded
        .iter()
        .map(|&b| {
            let sign = if b == 1 { 1.0 } else { -1.0 };
            let mag = grid_llr(rng).abs();
            // A fifth of positions carry the wrong sign (channel errors).
            if rng.gen_range(0..5) == 0 {
                -sign * mag
            } else {
                sign * mag
            }
        })
        .collect()
}

/// Corpus flavour B: adversarial pure-noise LLRs with no underlying
/// codeword. Equivalence must hold for arbitrary inputs.
fn noise_frame(rng: &mut StdRng, rate: CodeRate, message_len: usize) -> Vec<f64> {
    (0..coded_len(message_len, rate))
        .map(|_| grid_llr(rng))
        .collect()
}

#[test]
fn golden_corpus_integer_kernel_matches_f64_oracle() {
    let mut rng = StdRng::seed_from_u64(0xC0DE_2026);
    let mut scratch = ViterbiScratch::default();
    let mut oracle_scratch = ViterbiScratch::default();
    let mut frames = 0usize;
    for rate in RATES {
        for flavour in 0..2 {
            for _ in 0..FRAMES_PER_CASE {
                let message_len = rng.gen_range(48..=128);
                let llrs = if flavour == 0 {
                    codeword_frame(&mut rng, rate, message_len)
                } else {
                    noise_frame(&mut rng, rate, message_len)
                };
                let fast = decode_soft_quantized_with(&llrs, message_len, rate, &mut scratch);
                let oracle = decode_soft_with(&llrs, message_len, rate, &mut oracle_scratch);
                assert_eq!(
                    fast, oracle,
                    "mismatch at rate {rate}, flavour {flavour}, frame {frames}"
                );
                frames += 1;
            }
        }
    }
    assert!(frames >= 10_000, "corpus too small: {frames}");
}

#[test]
fn quantizer_edge_values() {
    // NaN carries no information -> erasure.
    assert_eq!(quantize_llr(f64::NAN), 0);
    // Infinities saturate at the clamp instead of overflowing.
    assert_eq!(quantize_llr(f64::INFINITY), LLR_QUANT_CLAMP);
    assert_eq!(quantize_llr(f64::NEG_INFINITY), -LLR_QUANT_CLAMP);
    assert_eq!(quantize_llr(0.0), 0);
    assert_eq!(quantize_llr(1.0), 128);
    assert_eq!(quantize_llr(-1.0), -128);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Saturating quantization never leaves the clamp interval, for any
    // finite or non-finite input (raw bit patterns cover every float,
    // NaNs and infinities included).
    #[test]
    fn quantizer_always_within_clamp(bits in any::<u64>()) {
        let q = quantize_llr(f64::from_bits(bits));
        prop_assert!((-LLR_QUANT_CLAMP..=LLR_QUANT_CLAMP).contains(&q));
    }

    // Frames peppered with saturation-edge LLRs (huge magnitudes,
    // infinities, NaN) still decode without panic or metric wrap, and
    // confidently-signed positions dominate the decision.
    #[test]
    fn saturated_frames_decode_cleanly(
        seed in any::<u64>(),
        rate_idx in 0usize..3,
    ) {
        let rate = RATES[rate_idx];
        let mut rng = StdRng::seed_from_u64(seed);
        let bits: Vec<u8> = (0..80).map(|_| rng.gen_range(0..=1)).collect();
        let coded = encode(&bits, rate);
        let llrs: Vec<f64> = coded
            .iter()
            .map(|&b| {
                let sign = if b == 1 { 1.0 } else { -1.0 };
                match rng.gen_range(0..4) {
                    // Far beyond the clamp: saturates, keeps its sign.
                    0 => sign * 1e18,
                    1 => sign * f64::INFINITY,
                    // NaN quantizes to an erasure; the code corrects it.
                    2 if rng.gen_range(0..8) == 0 => f64::NAN,
                    _ => sign * 8.0,
                }
            })
            .collect();
        let decoded = decode_soft_quantized_with(
            &llrs,
            bits.len(),
            rate,
            &mut ViterbiScratch::default(),
        );
        prop_assert_eq!(decoded, bits);
    }
}
