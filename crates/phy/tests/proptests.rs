//! Property-based tests for the PHY primitives.

use carpool_phy::bits::{bits_to_bytes, bits_to_uint, bytes_to_bits, uint_to_bits};
use carpool_phy::convolutional::{coded_len, decode, encode, CodeRate};
use carpool_phy::crc::{append_fcs, check_fcs, SmallCrc};
use carpool_phy::fft::{fft, ifft};
use carpool_phy::interleaver::Interleaver;
use carpool_phy::math::{wrap_angle, Complex64};
use carpool_phy::mcs::Mcs;
use carpool_phy::mimo::{decode_stream, observe, Matrix2, ZfPrecoder};
use carpool_phy::modulation::Modulation;
use carpool_phy::rx::{receive, Estimation, SectionLayout};
use carpool_phy::scrambler::Scrambler;
use carpool_phy::sidechannel::{PhaseOffsetDecoder, PhaseOffsetEncoder, PhaseOffsetMod};
use carpool_phy::tx::{transmit, SectionSpec};
use proptest::prelude::*;

fn bit_vec(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u8..=1, 1..max_len)
}

fn any_modulation() -> impl Strategy<Value = Modulation> {
    prop::sample::select(Modulation::ALL.to_vec())
}

fn any_rate() -> impl Strategy<Value = CodeRate> {
    prop::sample::select(vec![
        CodeRate::Half,
        CodeRate::TwoThirds,
        CodeRate::ThreeQuarters,
    ])
}

fn any_mcs() -> impl Strategy<Value = Mcs> {
    prop::sample::select(Mcs::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bytes_bits_round_trip(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        prop_assert_eq!(bits_to_bytes(&bytes_to_bits(&bytes)), bytes);
    }

    #[test]
    fn uint_bits_round_trip(v in any::<u64>(), width in 1usize..=64) {
        let masked = if width == 64 { v } else { v & ((1u64 << width) - 1) };
        prop_assert_eq!(bits_to_uint(&uint_to_bits(masked, width), width), masked);
    }

    #[test]
    fn scrambler_is_involution(bits in bit_vec(600), seed in 1u8..0x80) {
        let once = Scrambler::new(seed).scramble(&bits);
        prop_assert_eq!(Scrambler::new(seed).scramble(&once), bits);
    }

    #[test]
    fn convolutional_round_trip(bits in bit_vec(400), rate in any_rate()) {
        let coded = encode(&bits, rate);
        prop_assert_eq!(coded.len(), coded_len(bits.len(), rate));
        prop_assert_eq!(decode(&coded, bits.len(), rate), bits);
    }

    #[test]
    fn viterbi_corrects_one_flip_at_half_rate(
        bits in bit_vec(300),
        flip_frac in 0.0f64..1.0,
    ) {
        let mut coded = encode(&bits, CodeRate::Half);
        let pos = ((coded.len() - 1) as f64 * flip_frac) as usize;
        coded[pos] ^= 1;
        prop_assert_eq!(decode(&coded, bits.len(), CodeRate::Half), bits);
    }

    #[test]
    fn small_crc_flags_any_single_flip(
        bits in bit_vec(100),
        width in prop::sample::select(vec![1u8, 2, 3, 4, 6, 8]),
        flip_frac in 0.0f64..1.0,
    ) {
        let crc = SmallCrc::standard(width);
        let checksum = crc.compute(&bits);
        let mut bad = bits.clone();
        let pos = ((bits.len() - 1) as f64 * flip_frac) as usize;
        bad[pos] ^= 1;
        prop_assert!(!crc.verify(&bad, checksum));
    }

    #[test]
    fn fcs_round_trip_and_detection(payload in prop::collection::vec(any::<u8>(), 1..300)) {
        let framed = append_fcs(&payload);
        prop_assert_eq!(check_fcs(&framed).expect("fcs valid"), &payload[..]);
        let mut bad = framed.clone();
        bad[0] ^= 0x01;
        prop_assert!(check_fcs(&bad).is_none());
    }

    #[test]
    fn fft_round_trip(re in prop::collection::vec(-10.0f64..10.0, 64)) {
        let x: Vec<Complex64> = re.iter().map(|&r| Complex64::new(r, -r * 0.5)).collect();
        let y = ifft(&fft(&x).expect("64 points")).expect("64 points");
        for (a, b) in x.iter().zip(&y) {
            prop_assert!((*a - *b).abs() < 1e-9);
        }
    }

    #[test]
    fn interleaver_round_trip(m in any_modulation(), seed in any::<u64>()) {
        let il = Interleaver::new(m, 48);
        let bits: Vec<u8> = (0..il.block_size())
            .map(|k| ((seed >> (k % 64)) & 1) as u8)
            .collect();
        prop_assert_eq!(il.deinterleave(&il.interleave(&bits)), bits);
    }

    #[test]
    fn modulation_round_trip(m in any_modulation(), seed in any::<u64>()) {
        let bps = m.bits_per_symbol();
        let bits: Vec<u8> = (0..bps * 48).map(|k| ((seed >> (k % 64)) & 1) as u8).collect();
        prop_assert_eq!(m.demap_all(&m.map_all(&bits)), bits);
    }

    #[test]
    fn phase_offset_round_trip_under_drift(
        values in prop::collection::vec(0u8..4, 1..80),
        drift in -0.02f64..0.02,
        two_bit in any::<bool>(),
    ) {
        let m = if two_bit { PhaseOffsetMod::TwoBit } else { PhaseOffsetMod::OneBit };
        let mask = (1u8 << m.bits_per_symbol()) - 1;
        let mut enc = PhaseOffsetEncoder::new(m);
        let mut dec = PhaseOffsetDecoder::new(m);
        dec.set_reference(0.0);
        for (n, v) in values.iter().enumerate() {
            let v = v & mask;
            let injected = enc.next_offset(v);
            let measured = wrap_angle(injected + drift * (n + 1) as f64);
            prop_assert_eq!(dec.decode(measured), Some(v));
        }
    }

    #[test]
    fn clean_channel_end_to_end(
        payload in bit_vec(1200),
        mcs in any_mcs(),
        scramble in any::<bool>(),
    ) {
        let spec = SectionSpec {
            bits: payload.clone(),
            mcs,
            scramble,
            side_channel: Some(Default::default()),
            qbpsk: false,
        };
        let tx = transmit(std::slice::from_ref(&spec)).expect("valid spec");
        let rx = receive(&tx.samples, &[SectionLayout::of(&spec)], Estimation::Standard)
            .expect("lengths match");
        prop_assert_eq!(&rx.sections[0].bits, &payload);
        prop_assert!(rx.sections[0].crc_ok.iter().all(|&ok| ok));
    }

    #[test]
    fn zero_forcing_round_trip_for_random_channels(
        coords in prop::collection::vec(-1.0f64..1.0, 8),
        seed in any::<u64>(),
    ) {
        let h = Matrix2::from_rows(
            [
                Complex64::new(coords[0], coords[1]),
                Complex64::new(coords[2], coords[3]),
            ],
            [
                Complex64::new(coords[4], coords[5]),
                Complex64::new(coords[6], coords[7]),
            ],
        );
        // Skip near-singular draws (they belong in different groups).
        prop_assume!(h.det().abs() > 0.05);
        let p = ZfPrecoder::new(&h).expect("invertible checked");
        let m = Modulation::Qpsk;
        let bits0: Vec<u8> = (0..48).map(|k| ((seed >> (k % 64)) & 1) as u8).collect();
        let bits1: Vec<u8> = (0..48).map(|k| ((seed >> ((k + 13) % 64)) & 1) as u8).collect();
        let group = p
            .precode(&m.map_all(&bits0), &m.map_all(&bits1), 4)
            .expect("equal lengths");
        for (r, expect) in [(0usize, &bits0), (1usize, &bits1)] {
            let row = if r == 0 { [h.a, h.b] } else { [h.c, h.d] };
            let (bits, isr) = decode_stream(&observe(&group, row), r, 4, m);
            prop_assert_eq!(&bits, expect, "receiver {}", r);
            prop_assert!(isr < 1e-9, "receiver {} isr {}", r, isr);
        }
    }

    #[test]
    fn matrix2_inverse_identity(coords in prop::collection::vec(-2.0f64..2.0, 8)) {
        let m = Matrix2::from_rows(
            [
                Complex64::new(coords[0], coords[1]),
                Complex64::new(coords[2], coords[3]),
            ],
            [
                Complex64::new(coords[4], coords[5]),
                Complex64::new(coords[6], coords[7]),
            ],
        );
        prop_assume!(m.det().abs() > 0.05);
        let inv = m.inverse().expect("invertible checked");
        let id = m.mul(&inv);
        prop_assert!((id.a - Complex64::ONE).abs() < 1e-9);
        prop_assert!((id.d - Complex64::ONE).abs() < 1e-9);
        prop_assert!(id.b.abs() < 1e-9);
        prop_assert!(id.c.abs() < 1e-9);
    }

    #[test]
    fn wrap_angle_is_idempotent_and_bounded(a in -100.0f64..100.0) {
        let w = wrap_angle(a);
        prop_assert!(w > -std::f64::consts::PI - 1e-12);
        prop_assert!(w <= std::f64::consts::PI + 1e-12);
        prop_assert!((wrap_angle(w) - w).abs() < 1e-12);
    }
}
