//! Cyclic redundancy checks at several widths.
//!
//! The PHY uses CRCs at three granularities:
//!
//! * **CRC-32** (the IEEE 802.3 polynomial) for whole-frame FCS, exactly
//!   as in IEEE 802.11.
//! * **Small CRCs (1–8 bits)** for the *symbol-level* checksums carried
//!   on the phase offset side channel (Section 5 of the paper). A 2-bit
//!   CRC per OFDM symbol is the configuration the paper found optimal
//!   ("CRC-2 for each symbol offers a good tradeoff between reliability
//!   and granularity").
//!
//! The small CRCs are implemented as generic bitwise polynomial division
//! over bit slices, because the covered payload (one OFDM symbol's coded
//! bits) is itself handled as a bit vector in the pipeline.

/// A CRC over bit sequences with width 1..=8.
///
/// The polynomial is given without the leading `x^width` term, e.g. the
/// CRC-2 polynomial `x^2 + x + 1` is `0b11`.
///
/// # Examples
///
/// ```
/// use carpool_phy::crc::SmallCrc;
///
/// let crc = SmallCrc::CRC2;
/// let data = [1u8, 0, 1, 1, 0, 0, 1];
/// let check = crc.compute(&data);
/// assert!(crc.verify(&data, check));
/// assert!(!crc.verify(&data, check ^ 0b01));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SmallCrc {
    width: u8,
    poly: u8,
}

impl SmallCrc {
    /// CRC-1: plain parity bit.
    pub const CRC1: SmallCrc = SmallCrc {
        width: 1,
        poly: 0b1,
    };
    /// CRC-2 with polynomial `x^2 + x + 1` — the paper's per-symbol check.
    pub const CRC2: SmallCrc = SmallCrc {
        width: 2,
        poly: 0b11,
    };
    /// CRC-3 with polynomial `x^3 + x + 1` (CRC-3/GSM style).
    pub const CRC3: SmallCrc = SmallCrc {
        width: 3,
        poly: 0b011,
    };
    /// CRC-4 with the ITU polynomial `x^4 + x + 1`.
    pub const CRC4: SmallCrc = SmallCrc {
        width: 4,
        poly: 0b0011,
    };
    /// CRC-6 with polynomial `x^6 + x + 1` (CRC-6/ITU).
    pub const CRC6: SmallCrc = SmallCrc {
        width: 6,
        poly: 0b000011,
    };
    /// CRC-8 with the ATM HEC polynomial `x^8 + x^2 + x + 1`.
    pub const CRC8: SmallCrc = SmallCrc {
        width: 8,
        poly: 0b0000_0111,
    };

    /// Returns the standard polynomial for a given width (1..=8).
    ///
    /// Used by the side channel when a partial CRC group at the end of a
    /// section needs a narrower checksum than configured.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or greater than 8.
    pub fn standard(width: u8) -> SmallCrc {
        match width {
            1 => SmallCrc::CRC1,
            2 => SmallCrc::CRC2,
            3 => SmallCrc::CRC3,
            4 => SmallCrc::CRC4,
            5 => SmallCrc::new(5, 0b00101), // x^5 + x^2 + 1 (CRC-5/USB)
            6 => SmallCrc::CRC6,
            7 => SmallCrc::new(7, 0b0001001), // x^7 + x^3 + 1 (CRC-7/MMC)
            8 => SmallCrc::CRC8,
            // Out of range: delegate to `new`, whose width assertion
            // raises the documented panic message.
            _ => SmallCrc::new(width, 0),
        }
    }

    /// Creates a custom small CRC.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or greater than 8, or if `poly` has bits
    /// above `width`.
    pub fn new(width: u8, poly: u8) -> SmallCrc {
        assert!((1..=8).contains(&width), "width {width} out of 1..=8");
        assert!(
            width == 8 || poly < (1 << width),
            "polynomial 0x{poly:x} wider than {width} bits"
        );
        SmallCrc { width, poly }
    }

    /// Checksum width in bits.
    #[inline]
    pub fn width(&self) -> u8 {
        self.width
    }

    /// Generator polynomial (without the implicit leading term).
    #[inline]
    pub fn poly(&self) -> u8 {
        self.poly
    }

    /// Computes the checksum of a bit slice (each element 0 or 1).
    ///
    /// # Panics
    ///
    /// Panics if any element of `bits` is not 0 or 1.
    pub fn compute(&self, bits: &[u8]) -> u8 {
        let top = 1u16 << (self.width - 1);
        let mask = (1u16 << self.width) - 1;
        let mut reg: u16 = 0;
        for &bit in bits {
            assert!(bit <= 1, "bit value {bit} out of range");
            let fb = u16::from((reg & top) != 0) ^ u16::from(bit);
            reg = (reg << 1) & mask;
            if fb != 0 {
                reg ^= u16::from(self.poly);
            }
        }
        // lint:allow(as-cast): reg is masked to width <= 8 bits above
        reg as u8
    }

    /// Verifies the checksum of a bit slice.
    pub fn verify(&self, bits: &[u8], checksum: u8) -> bool {
        self.compute(bits) == checksum
    }
}

/// IEEE 802.3 CRC-32, as used for the 802.11 frame check sequence.
///
/// Input is a byte slice; output is the standard reflected CRC-32 with
/// final inversion (matching `crc32` in zlib and the FCS in Wi-Fi
/// frames). The canonical test vector `"123456789" -> 0xCBF43926` is
/// checked in this module's tests.
pub(crate) fn crc32(data: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &byte in data {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let lsb = crc & 1;
            crc >>= 1;
            if lsb != 0 {
                crc ^= 0xEDB8_8320;
            }
        }
    }
    !crc
}

/// Appends the CRC-32 FCS to a payload, as the MAC layer would.
pub fn append_fcs(payload: &[u8]) -> Vec<u8> {
    let mut out = payload.to_vec();
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out
}

/// Checks and strips a trailing CRC-32 FCS.
///
/// Returns the payload without the FCS if the check passes, `None` if the
/// frame is shorter than 4 bytes or the FCS does not match.
pub fn check_fcs(frame: &[u8]) -> Option<&[u8]> {
    if frame.len() < 4 {
        return None;
    }
    let (payload, fcs) = frame.split_at(frame.len() - 4);
    let expect = u32::from_le_bytes([fcs[0], fcs[1], fcs[2], fcs[3]]);
    if crc32(payload) == expect {
        Some(payload)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_test_vectors() {
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn fcs_round_trip() {
        let payload = b"carpool frame payload";
        let framed = append_fcs(payload);
        assert_eq!(check_fcs(&framed).unwrap(), payload);
    }

    #[test]
    fn fcs_detects_corruption() {
        let mut framed = append_fcs(b"payload");
        framed[2] ^= 0x10;
        assert!(check_fcs(&framed).is_none());
        assert!(check_fcs(&[1, 2, 3]).is_none());
    }

    #[test]
    fn small_crc_detects_single_bit_errors() {
        // Every CRC with poly ending in 1 detects all single-bit errors.
        for crc in [
            SmallCrc::CRC1,
            SmallCrc::CRC2,
            SmallCrc::CRC4,
            SmallCrc::CRC8,
        ] {
            let data = [1u8, 0, 1, 1, 0, 1, 0, 0, 1, 1, 1, 0];
            let good = crc.compute(&data);
            for flip in 0..data.len() {
                let mut bad = data;
                bad[flip] ^= 1;
                assert!(
                    !crc.verify(&bad, good),
                    "{crc:?} missed single-bit error at {flip}"
                );
            }
        }
    }

    #[test]
    fn crc2_detects_adjacent_double_errors() {
        // x^2+x+1 is primitive; it detects all double-bit errors within
        // its period (3), in particular adjacent flips.
        let crc = SmallCrc::CRC2;
        let data = [0u8, 1, 1, 0, 1, 0, 1, 1];
        let good = crc.compute(&data);
        for flip in 0..data.len() - 1 {
            let mut bad = data;
            bad[flip] ^= 1;
            bad[flip + 1] ^= 1;
            assert!(!crc.verify(&bad, good));
        }
    }

    #[test]
    fn compute_is_deterministic_and_width_bounded() {
        let crc = SmallCrc::CRC4;
        let data = [1u8, 1, 1, 1, 0, 0, 0, 0, 1];
        let a = crc.compute(&data);
        let b = crc.compute(&data);
        assert_eq!(a, b);
        assert!(a < 16);
    }

    #[test]
    #[should_panic(expected = "out of 1..=8")]
    fn rejects_zero_width() {
        SmallCrc::new(0, 0b1);
    }

    #[test]
    #[should_panic(expected = "wider than")]
    fn rejects_oversized_polynomial() {
        SmallCrc::new(2, 0b100);
    }

    #[test]
    fn empty_input_checksums_to_zero() {
        assert_eq!(SmallCrc::CRC2.compute(&[]), 0);
        assert_eq!(SmallCrc::CRC8.compute(&[]), 0);
    }
}
