//! Rate-1/2, constraint-length-7 convolutional code with Viterbi decoding.
//!
//! This is the mandatory code of the IEEE 802.11 OFDM PHY: generator
//! polynomials `g0 = 133 (octal)` and `g1 = 171 (octal)`. Higher rates
//! (2/3 and 3/4) are derived by puncturing, exactly as in the standard.
//!
//! The Carpool A-HDR is "coded using the lowest coding rate" (BPSK, rate
//! 1/2), so two OFDM symbols — 96 coded bits — carry the 48-bit Bloom
//! filter (Section 4.1).
//!
//! # Decoder architecture
//!
//! Both production decoders ([`decode`] hard, [`decode_soft_quantized`]
//! soft) run on one fixed-cost integer kernel:
//!
//! * per-bit observations are signed integer levels (quantized LLRs for
//!   the soft path, ±1 for hard decisions, 0 for punctured erasures),
//!   stored as one flat `[a, b]`-interleaved `i32` lattice;
//! * the add-compare-select loop walks all 32 butterflies as flat lane
//!   arrays with branchless selects and *plain* (non-saturating) `i32`
//!   adds — straight-line code the autovectorizer lifts to SIMD lanes,
//!   proved wrap-free by the scaling analysis below (and machine-checked
//!   by lint rule L012 against the `lint:budget` annotations);
//! * survivor memory is bit-packed — per step the 64 per-state decisions
//!   land in a byte lane array and collapse into one `u64` word — and
//!   traceback runs over that window into caller-provided
//!   [`ViterbiScratch`] buffers.
//!
//! The f64 soft decoder [`decode_soft_with`] is kept unchanged as the
//! reference oracle; the golden-corpus test in `tests/` proves the
//! integer kernel's hard decisions identical to it.
//!
//! # Quantization scaling analysis
//!
//! LLRs are mapped to `q = round(llr * 2^7)` clamped to ±2^20
//! ([`LLR_QUANT_CLAMP`]). The scaling budget, in order:
//!
//! * **Resolution.** 7 fractional bits (step 1/128). Classical Viterbi
//!   quantization studies show 3–4 soft bits already cost < 0.2 dB on
//!   AWGN; 1/128 steps are far below the noise floor of any operating
//!   point this PHY sweeps.
//! * **Branch cost.** A step's cost is `±q_a ± q_b`, so
//!   `|cost| <= 2 * 2^20 < 2^21` — no overflow in a single add.
//! * **Path-metric spread.** Every [`NORM_INTERVAL`] steps the minimum
//!   metric is subtracted (a uniform shift, invisible to `argmin`). Any
//!   state is reachable from any other in `K-1 = 6` steps, so the
//!   normalized spread is bounded by `12 * 2^21 < 2^25`, and between
//!   normalizations metrics drift by at most `NORM_INTERVAL * 2^21 =
//!   2^26` from the last normalized frame.
//! * **Wrap freedom without saturation.** The kernel uses plain `i32`
//!   adds (saturating ops compile to compare/select chains that defeat
//!   vectorization). States not yet reached by any finite-cost path
//!   carry the marker `INT_INF = i32::MAX / 2`; every state is reachable
//!   from the seed within `K-1 = 6` steps, so a marker drifts by at most
//!   `6 * 2^21` before a finite candidate wins its select — the global
//!   metric maximum is `INT_INF + 6 * 2^21 < i32::MAX - 2^21`, and the
//!   first normalization (step 32) only ever sees finite-path values.
//!   Adversarial inputs are covered at the boundary: ±inf LLRs saturate
//!   at the quantizer clamp and NaN quantizes to an erasure, so lattice
//!   levels never exceed ±2^20.

/// Constraint length of the 802.11 code.
pub const CONSTRAINT_LENGTH: usize = 7;
/// Number of trellis states (`2^(K-1)`).
pub(crate) const NUM_STATES: usize = 1 << (CONSTRAINT_LENGTH - 1);
/// Generator polynomial g0 = 133 octal.
pub(crate) const G0: u32 = 0o133;
/// Generator polynomial g1 = 171 octal.
pub(crate) const G1: u32 = 0o171;

/// Coding rate of the convolutional code after (optional) puncturing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CodeRate {
    /// Rate 1/2: no puncturing.
    #[default]
    Half,
    /// Rate 2/3: puncture pattern keeps 4 of 6 output bits.
    TwoThirds,
    /// Rate 3/4: puncture pattern keeps 4 of 6 output bits per 3 inputs.
    ThreeQuarters,
}

impl CodeRate {
    /// Numerator of the rate fraction.
    pub fn numerator(&self) -> usize {
        match self {
            CodeRate::Half => 1,
            CodeRate::TwoThirds => 2,
            CodeRate::ThreeQuarters => 3,
        }
    }

    /// Denominator of the rate fraction.
    pub fn denominator(&self) -> usize {
        match self {
            CodeRate::Half => 2,
            CodeRate::TwoThirds => 3,
            CodeRate::ThreeQuarters => 4,
        }
    }

    /// The rate as a float (e.g. 0.75 for [`CodeRate::ThreeQuarters`]).
    pub fn as_f64(&self) -> f64 {
        // lint:allow(as-cast): single-digit rate terms, exact in f64
        self.numerator() as f64 / self.denominator() as f64
    }

    /// Puncturing pattern applied to the rate-1/2 mother code output.
    ///
    /// The pattern is given per input-bit period as `(keep_a, keep_b)`
    /// pairs, matching IEEE 802.11-2012 Figure 18-9.
    fn puncture_pattern(&self) -> &'static [(bool, bool)] {
        match self {
            CodeRate::Half => &[(true, true)],
            CodeRate::TwoThirds => &[(true, true), (true, false)],
            CodeRate::ThreeQuarters => &[(true, true), (true, false), (false, true)],
        }
    }
}

impl std::fmt::Display for CodeRate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.numerator(), self.denominator())
    }
}

#[inline]
const fn parity(x: u32) -> u8 {
    // lint:allow(as-cast): masked to 0|1; TryFrom is unavailable in const fn
    (x.count_ones() & 1) as u8
}

/// Expected `(g0, g1)` output bits for every `(state, input)` trellis
/// transition. State = previous `K-1` input bits; next state =
/// `((state << 1) | input) & (NUM_STATES - 1)`.
const EXPECTED: [[(u8, u8); 2]; NUM_STATES] = build_expected();

const fn build_expected() -> [[(u8, u8); 2]; NUM_STATES] {
    let mut table = [[(0u8, 0u8); 2]; NUM_STATES];
    let mut state = 0;
    while state < NUM_STATES {
        let mut input = 0;
        while input < 2 {
            // lint:allow(as-cast): state < NUM_STATES (64) and input < 2, both fit u32; const context
            let shift = ((state as u32) << 1) | input as u32;
            table[state][input] = (parity(shift & G0), parity(shift & G1));
            input += 1;
        }
        state += 1;
    }
    table
}

/// Fixed-point scale of quantized LLRs: `q = round(llr * 2^LLR_SCALE_BITS)`.
pub(crate) const LLR_SCALE_BITS: u32 = 7;

/// Saturation bound of a quantized LLR. See the module-level scaling
/// analysis: per-step costs stay below `2^21` and normalized path
/// metrics below `2^24`, so `i32` arithmetic cannot wrap.
pub const LLR_QUANT_CLAMP: i32 = 1 << 20;

/// Path metric of a trellis state not yet reached by any finite-cost
/// path. Half of `i32::MAX`: the marker survives at most `K-1 = 6`
/// plain branch adds of `±2^21` before a finite path wins its select
/// (every state is reachable from the seed in 6 steps), so even the
/// worst transient `INT_INF + 6 * 2^21` stays well inside `i32`.
const INT_INF: i32 = i32::MAX / 2;

/// `EXPECTED`, re-indexed for the ACS inner loop: for next-state `ns`
/// and predecessor choice `b` (0 = low predecessor `ns >> 1`, 1 = high
/// predecessor `(ns >> 1) | 32`), the expected output pair encoded as
/// `2*g0 + g1` — an index into the four per-step branch costs.
const BRANCH_CODE: [[u8; 2]; NUM_STATES] = build_branch_code();

const fn build_branch_code() -> [[u8; 2]; NUM_STATES] {
    let mut table = [[0u8; 2]; NUM_STATES];
    let mut ns = 0;
    while ns < NUM_STATES {
        let mut b = 0;
        while b < 2 {
            let pred = (ns >> 1) | (b << (CONSTRAINT_LENGTH - 2));
            let input = ns & 1;
            let (e0, e1) = EXPECTED[pred][input];
            table[ns][b] = e0 * 2 + e1;
            b += 1;
        }
        ns += 1;
    }
    table
}

// lint:allow(as-cast): small power of two, exact in f64
const LLR_SCALE_F: f64 = (1i64 << LLR_SCALE_BITS) as f64;
// lint:allow(as-cast): 2^20 is exact in f64
const LLR_CLAMP_F: f64 = LLR_QUANT_CLAMP as f64;

/// Quantizes one LLR to the integer lattice: `round(llr * 2^7)`,
/// saturated at ±[`LLR_QUANT_CLAMP`]. NaN carries no information and
/// maps to 0 (an erasure), ±inf saturate at the clamp.
#[inline]
pub fn quantize_llr(llr: f64) -> i32 {
    if llr.is_nan() {
        return 0;
    }
    // lint:allow(as-cast): clamped to ±2^20, exactly representable in i32
    (llr * LLR_SCALE_F).round().clamp(-LLR_CLAMP_F, LLR_CLAMP_F) as i32
}

/// Encodes with the rate-1/2 mother code (no puncturing, no tail).
///
/// Each input bit produces two output bits `(a, b)` from g0 and g1.
fn encode_mother(bits: &[u8]) -> Vec<(u8, u8)> {
    let mut shift: u32 = 0;
    let mut out = Vec::with_capacity(bits.len()); // lint:allow(hot-alloc): per-decode output buffer, pre-sized from input length
    for &bit in bits {
        assert!(bit <= 1, "bit value {bit} out of range");
        shift = ((shift << 1) | u32::from(bit)) & ((1 << CONSTRAINT_LENGTH) - 1);
        out.push((parity(shift & G0), parity(shift & G1)));
    }
    out
}

/// Convolutionally encodes `bits` at the given rate.
///
/// The encoder appends `K-1 = 6` zero tail bits so the trellis terminates
/// in the zero state, then punctures per the 802.11 patterns. Use
/// [`decode`] with the same rate to recover the input.
///
/// # Examples
///
/// ```
/// use carpool_phy::convolutional::{encode, decode, CodeRate};
///
/// let data = vec![1u8, 0, 1, 1, 0, 0, 1, 1, 1, 0, 1, 0];
/// let coded = encode(&data, CodeRate::Half);
/// assert_eq!(decode(&coded, data.len(), CodeRate::Half), data);
/// ```
pub fn encode(bits: &[u8], rate: CodeRate) -> Vec<u8> {
    let mut tailed = bits.to_vec(); // lint:allow(hot-alloc): per-decode output buffer, pre-sized from input length
    tailed.extend_from_slice(&[0; CONSTRAINT_LENGTH - 1]);
    let pairs = encode_mother(&tailed);
    let pattern = rate.puncture_pattern();
    let mut out = Vec::with_capacity(pairs.len() * 2); // lint:allow(hot-alloc): per-decode output buffer, pre-sized from input length
    for (k, (a, b)) in pairs.into_iter().enumerate() {
        let (keep_a, keep_b) = pattern[k % pattern.len()];
        if keep_a {
            out.push(a);
        }
        if keep_b {
            out.push(b);
        }
    }
    out
}

/// Number of coded bits produced by [`encode`] for `message_len` input bits.
pub fn coded_len(message_len: usize, rate: CodeRate) -> usize {
    let total_in = message_len + CONSTRAINT_LENGTH - 1;
    let pattern = rate.puncture_pattern();
    let per_period: usize = pattern
        .iter()
        .map(|(a, b)| usize::from(*a) + usize::from(*b))
        .sum();
    let full = total_in / pattern.len();
    let mut n = full * per_period;
    for (a, b) in pattern.iter().take(total_in % pattern.len()) {
        n += usize::from(*a) + usize::from(*b);
    }
    n
}

/// Depunctures a soft (LLR) stream into `out`; punctured/missing
/// positions become zero-information LLRs.
fn depuncture_soft_into(llrs: &[f64], total_in: usize, rate: CodeRate, out: &mut Vec<(f64, f64)>) {
    let pattern = rate.puncture_pattern();
    let mut it = llrs.iter();
    out.clear();
    out.reserve(total_in);
    for k in 0..total_in {
        let (keep_a, keep_b) = pattern[k % pattern.len()];
        let a = if keep_a {
            it.next().copied().unwrap_or(0.0)
        } else {
            0.0
        };
        let b = if keep_b {
            it.next().copied().unwrap_or(0.0)
        } else {
            0.0
        };
        out.push((a, b));
    }
}

/// Depunctures a quantized-LLR stream into the flat `[a, b]`-interleaved
/// lattice `out`; punctured/missing positions become zero-information
/// (erased) levels.
fn depuncture_quantized_into(llrs: &[f64], total_in: usize, rate: CodeRate, out: &mut Vec<i32>) {
    let pattern = rate.puncture_pattern();
    let mut it = llrs.iter();
    out.clear();
    out.reserve(2 * total_in);
    for k in 0..total_in {
        let (keep_a, keep_b) = pattern[k % pattern.len()];
        let a = if keep_a {
            it.next().map(|&l| quantize_llr(l)).unwrap_or(0)
        } else {
            0
        };
        let b = if keep_b {
            it.next().map(|&l| quantize_llr(l)).unwrap_or(0)
        } else {
            0
        };
        out.push(a);
        out.push(b);
    }
}

/// Depunctures hard decisions into integer levels: bit 1 → +1, bit 0 →
/// −1, punctured/missing → 0 (erasure). On these levels the integer
/// kernel's path costs are an affine function of the Hamming metric
/// (`cost = 2 * mismatches − observed_bits`, the offset identical for
/// every path at a given step), so its decisions — ties included — match
/// a classical hard-decision Viterbi exactly.
fn depuncture_hard_into(coded: &[u8], total_in: usize, rate: CodeRate, out: &mut Vec<i32>) {
    let level = |b: &u8| if *b == 1 { 1 } else { -1 };
    let pattern = rate.puncture_pattern();
    let mut it = coded.iter();
    out.clear();
    out.reserve(2 * total_in);
    for k in 0..total_in {
        let (keep_a, keep_b) = pattern[k % pattern.len()];
        let a = if keep_a {
            it.next().map(level).unwrap_or(0)
        } else {
            0
        };
        let b = if keep_b {
            it.next().map(level).unwrap_or(0)
        } else {
            0
        };
        out.push(a);
        out.push(b);
    }
}

/// Flat-lattice addressing of the puncture pattern, per period:
/// `(kept_bits, flat_stride, offsets)` where surviving coded bit `r` of
/// a period lands at flat index `period * flat_stride + offsets[r]`.
/// The flat lattice interleaves each trellis step's `(a, b)` pair, so a
/// kept `a` of in-period step `s` sits at `2 * s`, a kept `b` at
/// `2 * s + 1` (`consistent_with_puncture_pattern` pins this to
/// [`CodeRate::puncture_pattern`]).
pub(crate) fn depuncture_layout(rate: CodeRate) -> (usize, usize, &'static [usize]) {
    match rate {
        CodeRate::Half => (2, 2, &[0, 1]),
        CodeRate::TwoThirds => (3, 4, &[0, 1, 2]),
        CodeRate::ThreeQuarters => (4, 6, &[0, 1, 2, 5]),
    }
}

/// Depunctures pre-quantized integer levels (coded order, as produced by
/// the fused demap path or [`quantize_llr`]) into the flat lattice. The
/// specialization per rate turns the per-bit pattern branches of the
/// legacy depuncturers into straight period-chunk copies — rate 1/2 is
/// one `copy_from_slice`.
fn depuncture_levels_into(levels: &[i32], total_in: usize, rate: CodeRate, out: &mut Vec<i32>) {
    out.clear();
    out.resize(2 * total_in, 0);
    let n = levels.len().min(coded_len(
        total_in.saturating_sub(CONSTRAINT_LENGTH - 1),
        rate,
    ));
    let (kept, flat, offs) = depuncture_layout(rate);
    if kept == flat {
        // Rate 1/2: every mother bit survives; flat order == coded order.
        out[..n].copy_from_slice(&levels[..n]);
        return;
    }
    let full = n / kept;
    for p in 0..full {
        let base = p * flat;
        let src = p * kept;
        for (r, &off) in offs.iter().enumerate() {
            out[base + off] = levels[src + r];
        }
    }
    for (r, &off) in offs.iter().enumerate().take(n - full * kept) {
        out[full * flat + off] = levels[full * kept + r];
    }
}

/// Reusable decoder workspace: the depunctured lattices, the bit-packed
/// survivor window and traceback buffers, recycled across calls so the
/// per-frame decode loop allocates nothing after warm-up.
///
/// Create one with `ViterbiScratch::default()` and pass it to
/// [`decode_with`] / [`decode_soft_quantized_with`] /
/// [`decode_soft_with`]; the plain wrappers allocate a fresh one per
/// call.
#[derive(Debug, Default)]
pub struct ViterbiScratch {
    /// Integer observation lattice of the production kernel: flat
    /// `[a, b]`-interleaved levels, `2 * total_in` entries per decode.
    int_lattice: Vec<i32>,
    /// Survivor window: one decision word per step, bit `s` set when
    /// state `s` selected its high predecessor.
    survivors: Vec<u64>,
    /// Traceback output buffer (`total_in` bits before truncation).
    decoded: Vec<u8>,
    /// f64 lattice of the reference oracle [`decode_soft_with`].
    soft_lattice: Vec<(f64, f64)>,
    /// Per-step predecessor choices of the reference oracle.
    history: Vec<[u8; NUM_STATES]>,
}

impl ViterbiScratch {
    /// Hands out the integer lattice sized and zeroed for `total_in`
    /// trellis steps, for producers (the fused RX demap path) that
    /// scatter quantized levels directly into trellis slots. A zeroed
    /// slot is an erasure, so the producer only writes positions that
    /// carry observations.
    pub(crate) fn lattice_mut(&mut self, total_in: usize) -> &mut [i32] {
        self.int_lattice.clear();
        self.int_lattice.resize(2 * total_in, 0);
        &mut self.int_lattice
    }
}

/// Half the trellis: the butterfly loop walks predecessor pairs
/// `(j, j + 32)`.
const HALF_STATES: usize = NUM_STATES / 2;

/// Branch-cost index of the transition `j -> 2j` (low predecessor,
/// input 0). Both generators tap the newest and the oldest register
/// bit, so within a predecessor pair the other three transitions cost
/// exactly `-`, `-` and `+` this entry's cost — one lookup serves all
/// four edges of the butterfly (proved by `butterfly_sign_symmetry`).
const PAIR_CODE: [usize; HALF_STATES] = build_pair_code();

const fn build_pair_code() -> [usize; HALF_STATES] {
    let mut table = [0usize; HALF_STATES];
    let mut j = 0;
    while j < HALF_STATES {
        // lint:allow(as-cast): branch code is 0..=3, widening to usize
        table[j] = BRANCH_CODE[2 * j][0] as usize;
        j += 1;
    }
    table
}

/// Steps between path-metric re-normalizations. Between passes the
/// metrics drift by at most `NORM_INTERVAL * 2^21 = 2^26` on top of a
/// `< 2^25` spread — far inside `i32` with the `i32::MAX / 2`
/// not-yet-reachable marker (see the module-level wrap-freedom bullet).
/// Normalization subtracts the running minimum from every state, a
/// uniform shift no comparison can see, so any interval yields
/// bit-identical decisions.
const NORM_INTERVAL: usize = 32;

/// Sign masks for the per-butterfly branch cost `d = ±la ± lb`: the
/// `la` term is negated exactly when the pair's branch code has its
/// `g0` bit set (`MASK_A`, bit 2), the `lb` term when the `g1` bit is
/// set (`MASK_B`, bit 1) — the same four-entry cost table
/// `[la+lb, la-lb, lb-la, -la-lb]` the scalar kernel indexed, unrolled
/// into two conditional negations `(x ^ m) - m` with `m ∈ {0, -1}`
/// that vectorize on baseline x86-64.
const MASK_A: [i32; HALF_STATES] = build_cost_masks(2);
/// `lb` companion of [`MASK_A`].
const MASK_B: [i32; HALF_STATES] = build_cost_masks(1);

const fn build_cost_masks(bit: usize) -> [i32; HALF_STATES] {
    let mut table = [0i32; HALF_STATES];
    let mut j = 0;
    while j < HALF_STATES {
        if PAIR_CODE[j] & bit != 0 {
            table[j] = -1;
        }
        j += 1;
    }
    table
}

/// One batched add-compare-select step: reads the 64 path metrics from
/// `cur`, writes the 64 updated metrics to `nxt` and the 64 per-state
/// decisions to `sel` (1 = high predecessor chose). The 32 butterflies
/// are straight-line lane arithmetic — two mask-negations, four plain
/// `i32` adds, two compares, two selects per pair, no data-dependent
/// branches and no saturating ops — which the autovectorizer lifts to
/// SIMD lanes (interleaved stride-2 stores for `nxt`).
///
/// Wrap freedom of the plain adds is machine-checked by L012 from the
/// budget annotations below: `d` is two clamped levels (`±2^21`), and
/// every metric in `cur` is bounded by `INT_INF + 6 * 2^21 =
/// ±1_086_324_735` (the module-level wrap-freedom bullet: unreached-
/// state markers survive at most `K-1 = 6` steps, normalized finite
/// metrics stay below `44 * 2^21`), so `m ± d` fits `i32` with
/// `2^21` to spare.
#[inline]
// lint:budget(i32: d in ±2^21)
// lint:budget(i32: m0, m1 in ±1_086_324_735)
fn acs_step(
    la: i32,
    lb: i32,
    cur: &[i32; NUM_STATES],
    nxt: &mut [i32; NUM_STATES],
    sel: &mut [u8; NUM_STATES],
) {
    for j in 0..HALF_STATES {
        let m0 = cur[j];
        let m1 = cur[j + HALF_STATES];
        // Branch cost of the `j -> 2j` edge: conditional negation via
        // xor/subtract keeps the expression branch- and multiply-free.
        let d = ((la ^ MASK_A[j]) - MASK_A[j]) + ((lb ^ MASK_B[j]) - MASK_B[j]);
        // Next state 2j (input 0): low predecessor costs +d, high -d.
        let a0 = m0 + d;
        let b0 = m1 - d;
        // Strict `<` keeps the low predecessor on ties — the same
        // convention as the ascending-state scan of the f64 oracle.
        let t0 = b0 < a0;
        nxt[2 * j] = if t0 { b0 } else { a0 };
        // Next state 2j+1 (input 1): signs flip.
        let a1 = m0 - d;
        let b1 = m1 + d;
        let t1 = b1 < a1;
        nxt[2 * j + 1] = if t1 { b1 } else { a1 };
        sel[2 * j] = u8::from(t0);
        sel[2 * j + 1] = u8::from(t1);
    }
}

/// Collapses a step's 64 decision bytes (each 0 or 1) into the packed
/// survivor word, eight bytes at a time: the multiply by the diagonal
/// constant places byte `k`'s bit at position `56 + k` (off-diagonal
/// partial products land on pairwise-distinct lower positions —
/// `7i - 8k ≡ 0 (mod 8)` has no solution for `i ≠ k` in `0..8` — so
/// no carries reach the collected byte), and the shift extracts all
/// eight decisions at once.
#[inline]
fn pack_sel(sel: &[u8; NUM_STATES]) -> u64 {
    let mut word = 0u64;
    for i in 0..NUM_STATES / 8 {
        let o = 8 * i;
        let v = u64::from_le_bytes([
            sel[o],
            sel[o + 1],
            sel[o + 2],
            sel[o + 3],
            sel[o + 4],
            sel[o + 5],
            sel[o + 6],
            sel[o + 7],
        ]);
        word |= (v.wrapping_mul(0x0102_0408_1020_4080) >> 56) << o;
    }
    word
}

/// Batched add-compare-select forward pass over the flat integer
/// lattice (`[a, b]` interleaved, two entries per trellis step).
///
/// Fills `survivors` with one packed decision word per step. Path
/// metrics ping-pong between two stack buffers (no copy-back), with the
/// running minimum subtracted every [`NORM_INTERVAL`] steps — a uniform
/// shift that preserves every comparison. The normalization subtraction
/// itself cannot wrap: at that point every metric is finite (first pass
/// runs at step 32 > 6) with `m <= 44 * 2^21` and `min >= -32 * 2^21`,
/// so `m - min <= 76 * 2^21 < 2^28`.
fn acs_forward(lattice: &[i32], survivors: &mut Vec<u64>) {
    let mut bufs = [[INT_INF; NUM_STATES]; 2];
    bufs[0][0] = 0; // Encoder starts in the zero state.
    let mut sel = [0u8; NUM_STATES];
    let mut cur = 0usize;
    survivors.clear();
    survivors.reserve(lattice.len() / 2);
    for (t, step) in lattice.chunks_exact(2).enumerate() {
        let (lo, hi) = bufs.split_at_mut(1);
        let (src, dst) = if cur == 0 {
            (&lo[0], &mut hi[0])
        } else {
            (&hi[0], &mut lo[0])
        };
        acs_step(step[0], step[1], src, dst, &mut sel);
        survivors.push(pack_sel(&sel));
        cur ^= 1;
        if (t + 1) % NORM_INTERVAL == 0 {
            let min = bufs[cur].iter().copied().min().unwrap_or(0);
            for m in bufs[cur].iter_mut() {
                *m -= min;
            }
        }
    }
}

/// Traceback over the packed survivor window, newest step first. The
/// tail bits force the encoder into the zero state, whose path metric is
/// always finite (the all-zeros path accrues only finite costs), so the
/// start state is unconditionally 0.
fn traceback(survivors: &[u64], message_len: usize, decoded: &mut Vec<u8>) {
    let total_in = survivors.len();
    decoded.clear();
    decoded.resize(total_in, 0);
    let mut state = 0usize;
    for t in (0..total_in).rev() {
        // lint:allow(as-cast): state & 1 is 0 or 1
        decoded[t] = u8::from(state & 1 == 1);
        // lint:allow(as-cast): single decision bit
        let high = ((survivors[t] >> state) & 1) as usize;
        state = (state >> 1) | (high << (CONSTRAINT_LENGTH - 2));
    }
    decoded.truncate(message_len);
}

/// Hard-decision Viterbi decoder for streams produced by [`encode`].
///
/// `message_len` is the number of *information* bits expected (the tail is
/// handled internally). Extra or missing coded bits degrade gracefully:
/// missing tail positions are treated as erasures. Non-bit input values
/// are treated as 0.
pub fn decode(coded: &[u8], message_len: usize, rate: CodeRate) -> Vec<u8> {
    decode_with(coded, message_len, rate, &mut ViterbiScratch::default())
}

/// [`decode`] with a caller-provided [`ViterbiScratch`], so repeated
/// decodes (the per-frame hot path) reuse the lattice and traceback
/// buffers instead of reallocating them.
pub fn decode_with(
    coded: &[u8],
    message_len: usize,
    rate: CodeRate,
    scratch: &mut ViterbiScratch,
) -> Vec<u8> {
    if message_len == 0 {
        return Vec::new(); // lint:allow(hot-alloc): per-decode output buffer, pre-sized from input length
    }
    let total_in = message_len + CONSTRAINT_LENGTH - 1;
    let ViterbiScratch {
        int_lattice,
        survivors,
        decoded,
        ..
    } = scratch;
    depuncture_hard_into(coded, total_in, rate, int_lattice);
    acs_forward(int_lattice, survivors);
    traceback(survivors, message_len, decoded);
    decoded.clone() // lint:allow(hot-alloc): per-decode output buffer, pre-sized from input length
}

/// Soft-decision Viterbi decoder.
///
/// `llrs` are per-coded-bit log-likelihood ratios in transmission order
/// (positive favours bit 1), e.g. from
/// [`crate::modulation::Modulation::demap_soft_into`]. Soft decoding
/// gains ~2 dB over hard decisions on an AWGN channel.
///
/// # Examples
///
/// ```
/// use carpool_phy::convolutional::{decode_soft, encode, CodeRate};
///
/// let data = vec![1u8, 0, 1, 1, 0, 0, 1, 0];
/// let coded = encode(&data, CodeRate::Half);
/// // Perfectly confident LLRs: +4 for 1, -4 for 0.
/// let llrs: Vec<f64> = coded.iter().map(|&b| if b == 1 { 4.0 } else { -4.0 }).collect();
/// assert_eq!(decode_soft(&llrs, data.len(), CodeRate::Half), data);
/// ```
pub fn decode_soft(llrs: &[f64], message_len: usize, rate: CodeRate) -> Vec<u8> {
    decode_soft_with(llrs, message_len, rate, &mut ViterbiScratch::default())
}

/// [`decode_soft`] with a caller-provided [`ViterbiScratch`]; see
/// [`decode_with`].
pub fn decode_soft_with(
    llrs: &[f64],
    message_len: usize,
    rate: CodeRate,
    scratch: &mut ViterbiScratch,
) -> Vec<u8> {
    if message_len == 0 {
        return Vec::new(); // lint:allow(hot-alloc): per-decode output buffer, pre-sized from input length
    }
    let total_in = message_len + CONSTRAINT_LENGTH - 1;
    let ViterbiScratch {
        soft_lattice,
        history,
        ..
    } = scratch;
    depuncture_soft_into(llrs, total_in, rate, soft_lattice);

    // Linear branch cost: hypothesising bit 1 costs -llr, bit 0 costs
    // +llr (constant offsets cancel along paths).
    let bit_cost = |bit: u8, llr: f64| if bit == 1 { -llr } else { llr };

    const INF: f64 = f64::INFINITY;
    let mut metrics = [INF; NUM_STATES];
    metrics[0] = 0.0;
    let mut next = [INF; NUM_STATES];
    history.clear();
    history.reserve(total_in);

    for &(la, lb) in soft_lattice.iter() {
        next.fill(INF);
        let mut prev_choice = [0u8; NUM_STATES];
        for state in 0..NUM_STATES {
            let m = metrics[state];
            if !m.is_finite() {
                continue;
            }
            for (input, &(ea, eb)) in EXPECTED[state].iter().enumerate() {
                let ns = ((state << 1) | input) & (NUM_STATES - 1);
                let cand = m + bit_cost(ea, la) + bit_cost(eb, lb);
                if cand < next[ns] {
                    next[ns] = cand;
                    // lint:allow(as-cast): state < NUM_STATES, shifted down to its top bit: 0 or 1
                    prev_choice[ns] = (state >> (CONSTRAINT_LENGTH - 2)) as u8;
                }
            }
        }
        std::mem::swap(&mut metrics, &mut next);
        history.push(prev_choice);
    }

    let mut state = 0usize;
    if !metrics[0].is_finite() {
        state = metrics
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.total_cmp(b))
            .map(|(s, _)| s)
            .unwrap_or(0);
    }
    let mut decoded = vec![0u8; total_in];
    for t in (0..total_in).rev() {
        decoded[t] = (state & 1) as u8;
        let old_bit = usize::from(history[t][state]);
        state = (state >> 1) | (old_bit << (CONSTRAINT_LENGTH - 2));
    }
    decoded.truncate(message_len);
    decoded
}

/// Integer soft-decision Viterbi decoder: the production kernel behind
/// the receive hot path.
///
/// Quantizes each LLR with [`quantize_llr`] (fixed-point scale
/// `2^LLR_SCALE_BITS`, saturating clamp at `±LLR_QUANT_CLAMP`), then
/// runs the branchless add-compare-select forward pass with bit-packed
/// survivor memory. On LLRs whose scaled values are exactly
/// representable, decisions — including ties — match the f64 reference
/// oracle [`decode_soft`] bit for bit; on general inputs the only
/// divergence is the sub-quantum rounding of the `2^-7` LLR grid.
pub fn decode_soft_quantized(llrs: &[f64], message_len: usize, rate: CodeRate) -> Vec<u8> {
    decode_soft_quantized_with(llrs, message_len, rate, &mut ViterbiScratch::default())
}

/// [`decode_soft_quantized`] with a caller-provided [`ViterbiScratch`];
/// see [`decode_with`].
pub fn decode_soft_quantized_with(
    llrs: &[f64],
    message_len: usize,
    rate: CodeRate,
    scratch: &mut ViterbiScratch,
) -> Vec<u8> {
    if message_len == 0 {
        return Vec::new(); // lint:allow(hot-alloc): per-decode output buffer, pre-sized from input length
    }
    let total_in = message_len + CONSTRAINT_LENGTH - 1;
    let ViterbiScratch {
        int_lattice,
        survivors,
        decoded,
        ..
    } = scratch;
    depuncture_quantized_into(llrs, total_in, rate, int_lattice);
    acs_forward(int_lattice, survivors);
    traceback(survivors, message_len, decoded);
    decoded.clone() // lint:allow(hot-alloc): per-decode output buffer, pre-sized from input length
}

/// Integer Viterbi decoder over pre-quantized levels — the
/// production-shaped entry point of the fused RX pipeline, which
/// quantizes LLRs at demap time (see [`quantize_llr`]) and hands the
/// decoder `i32` levels in coded (transmission) order. Positive favours
/// bit 1; zero is an erasure. Decisions are bit-identical to
/// [`decode_soft_quantized`] fed LLRs that quantize to the same levels.
pub fn decode_levels(levels: &[i32], message_len: usize, rate: CodeRate) -> Vec<u8> {
    decode_levels_with(levels, message_len, rate, &mut ViterbiScratch::default())
}

/// [`decode_levels`] with a caller-provided [`ViterbiScratch`]; see
/// [`decode_with`].
pub fn decode_levels_with(
    levels: &[i32],
    message_len: usize,
    rate: CodeRate,
    scratch: &mut ViterbiScratch,
) -> Vec<u8> {
    if message_len == 0 {
        return Vec::new(); // lint:allow(hot-alloc): per-decode output buffer, pre-sized from input length
    }
    let total_in = message_len + CONSTRAINT_LENGTH - 1;
    let ViterbiScratch {
        int_lattice,
        survivors,
        decoded,
        ..
    } = scratch;
    depuncture_levels_into(levels, total_in, rate, int_lattice);
    acs_forward(int_lattice, survivors);
    traceback(survivors, message_len, decoded);
    decoded.clone() // lint:allow(hot-alloc): per-decode output buffer, pre-sized from input length
}

/// Runs the forward pass and traceback over a lattice the caller has
/// already scattered into [`ViterbiScratch::lattice_mut`] — the final
/// stage of the fused demap→deinterleave→depuncture RX path, which
/// skips the coded-order intermediate entirely.
// lint:allow(shard-protocol): caller fully scatters the lattice via lattice_mut by documented contract; the forward pass then overwrites every metric column it reads
pub(crate) fn decode_prepared(message_len: usize, scratch: &mut ViterbiScratch) -> Vec<u8> {
    if message_len == 0 {
        return Vec::new(); // lint:allow(hot-alloc): per-decode output buffer, pre-sized from input length
    }
    let total_in = message_len + CONSTRAINT_LENGTH - 1;
    let ViterbiScratch {
        int_lattice,
        survivors,
        decoded,
        ..
    } = scratch;
    debug_assert_eq!(int_lattice.len(), 2 * total_in);
    acs_forward(int_lattice, survivors);
    traceback(survivors, message_len, decoded);
    decoded.clone() // lint:allow(hot-alloc): per-decode output buffer, pre-sized from input length
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_random_bits(n: usize, seed: u64) -> Vec<u8> {
        // xorshift so the tests don't need an RNG dependency here.
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x & 1) as u8
            })
            .collect()
    }

    #[test]
    fn known_encoder_output() {
        // First input bit 1 from zero state: shift = 0000001.
        // g0 = 1011011 -> parity(0000001 & 1011011) = 1
        // g1 = 1111001 -> parity(0000001 & 1111001) = 1
        let coded = encode(&[1], CodeRate::Half);
        assert_eq!(coded.len(), coded_len(1, CodeRate::Half));
        assert_eq!(&coded[..2], &[1, 1]);
    }

    #[test]
    fn coded_len_matches_encode() {
        for rate in [CodeRate::Half, CodeRate::TwoThirds, CodeRate::ThreeQuarters] {
            for n in [1usize, 2, 3, 17, 48, 100] {
                let bits = pseudo_random_bits(n, 7);
                assert_eq!(
                    encode(&bits, rate).len(),
                    coded_len(n, rate),
                    "rate {rate} n {n}"
                );
            }
        }
    }

    #[test]
    fn round_trip_clean_channel_all_rates() {
        for rate in [CodeRate::Half, CodeRate::TwoThirds, CodeRate::ThreeQuarters] {
            for n in [1usize, 5, 48, 96, 333] {
                let bits = pseudo_random_bits(n, n as u64 + 1);
                let coded = encode(&bits, rate);
                let decoded = decode(&coded, n, rate);
                assert_eq!(decoded, bits, "rate {rate} n {n}");
            }
        }
    }

    #[test]
    fn corrects_scattered_errors_at_half_rate() {
        let bits = pseudo_random_bits(200, 42);
        let mut coded = encode(&bits, CodeRate::Half);
        // Flip well-separated bits; free distance 10 handles these easily.
        for pos in (0..coded.len()).step_by(45) {
            coded[pos] ^= 1;
        }
        assert_eq!(decode(&coded, 200, CodeRate::Half), bits);
    }

    #[test]
    fn corrects_isolated_error_at_three_quarters() {
        let bits = pseudo_random_bits(120, 9);
        let mut coded = encode(&bits, CodeRate::ThreeQuarters);
        coded[30] ^= 1;
        assert_eq!(decode(&coded, 120, CodeRate::ThreeQuarters), bits);
    }

    #[test]
    fn heavy_corruption_fails_gracefully() {
        let bits = pseudo_random_bits(100, 3);
        let coded = encode(&bits, CodeRate::Half);
        let garbage: Vec<u8> = coded.iter().map(|b| b ^ 1).collect();
        let decoded = decode(&garbage, 100, CodeRate::Half);
        // No panic and correct length; content may differ.
        assert_eq!(decoded.len(), 100);
    }

    #[test]
    fn truncated_input_is_tolerated() {
        let bits = pseudo_random_bits(64, 11);
        let coded = encode(&bits, CodeRate::Half);
        let decoded = decode(&coded[..coded.len() - 8], 64, CodeRate::Half);
        assert_eq!(decoded.len(), 64);
        // The head should still be correct; only tail positions were erased.
        assert_eq!(&decoded[..50], &bits[..50]);
    }

    #[test]
    fn empty_message() {
        assert!(decode(&[], 0, CodeRate::Half).is_empty());
    }

    #[test]
    fn butterfly_sign_symmetry() {
        // The pair-butterfly kernel relies on all four edges of a
        // predecessor pair costing ± one value. Codes 0..=3 index the
        // per-step cost table [la+lb, la-lb, lb-la, -la-lb], in which
        // `costs[3 - k] == -costs[k]`; so the claim is that flipping
        // either the input bit or the high predecessor bit complements
        // the branch code.
        for j in 0..HALF_STATES {
            let d = usize::from(BRANCH_CODE[2 * j][0]);
            assert_eq!(PAIR_CODE[j], d);
            assert_eq!(
                usize::from(BRANCH_CODE[2 * j][1]),
                3 - d,
                "high pred, input 0"
            );
            assert_eq!(
                usize::from(BRANCH_CODE[2 * j + 1][0]),
                3 - d,
                "low pred, input 1"
            );
            assert_eq!(
                usize::from(BRANCH_CODE[2 * j + 1][1]),
                d,
                "high pred, input 1"
            );
        }
    }

    #[test]
    fn quantized_matches_oracle_on_integer_grid_llrs() {
        // On LLRs that are exact multiples of the quantization step the
        // integer kernel must reproduce the f64 oracle bit for bit,
        // ties included; exercise noisy, tie-prone small magnitudes.
        for (seed, rate) in [
            (3u64, CodeRate::Half),
            (5, CodeRate::TwoThirds),
            (7, CodeRate::ThreeQuarters),
        ] {
            let bits = pseudo_random_bits(160, seed);
            let coded = encode(&bits, rate);
            let llrs: Vec<f64> = coded
                .iter()
                .enumerate()
                .map(|(k, &b)| {
                    let sign = if b == 1 { 1.0 } else { -1.0 };
                    // Integer-valued LLRs in [-3, 3]: many exact ties.
                    let mag = ((k * 2654435761) >> 7) % 4;
                    sign * mag as f64 * if k % 17 == 0 { -1.0 } else { 1.0 }
                })
                .collect();
            assert_eq!(
                decode_soft_quantized(&llrs, 160, rate),
                decode_soft(&llrs, 160, rate),
                "rate {rate}"
            );
        }
    }

    #[test]
    fn soft_round_trip_all_rates() {
        for rate in [CodeRate::Half, CodeRate::TwoThirds, CodeRate::ThreeQuarters] {
            let bits = pseudo_random_bits(200, 5);
            let coded = encode(&bits, rate);
            let llrs: Vec<f64> = coded
                .iter()
                .map(|&b| if b == 1 { 3.0 } else { -3.0 })
                .collect();
            assert_eq!(decode_soft(&llrs, 200, rate), bits, "rate {rate}");
        }
    }

    #[test]
    fn soft_decoder_uses_confidence() {
        // Flip three adjacent bits but mark them low-confidence: the
        // soft decoder recovers where a hard decoder may not.
        let bits = pseudo_random_bits(120, 21);
        let coded = encode(&bits, CodeRate::Half);
        let mut llrs: Vec<f64> = coded
            .iter()
            .map(|&b| if b == 1 { 4.0 } else { -4.0 })
            .collect();
        for k in 40..43 {
            // Wrong sign, tiny magnitude.
            llrs[k] = if coded[k] == 1 { -0.1 } else { 0.1 };
        }
        assert_eq!(decode_soft(&llrs, 120, CodeRate::Half), bits);
    }

    #[test]
    fn soft_handles_truncated_input() {
        let bits = pseudo_random_bits(64, 3);
        let coded = encode(&bits, CodeRate::Half);
        let llrs: Vec<f64> = coded[..coded.len() - 8]
            .iter()
            .map(|&b| if b == 1 { 2.0 } else { -2.0 })
            .collect();
        let decoded = decode_soft(&llrs, 64, CodeRate::Half);
        assert_eq!(decoded.len(), 64);
        assert_eq!(&decoded[..50], &bits[..50]);
    }

    #[test]
    fn soft_empty_message() {
        assert!(decode_soft(&[], 0, CodeRate::Half).is_empty());
    }

    #[test]
    fn scratch_reuse_across_rates_and_lengths_matches_fresh_decodes() {
        let mut scratch = ViterbiScratch::default();
        for rate in [CodeRate::Half, CodeRate::TwoThirds, CodeRate::ThreeQuarters] {
            for n in [1usize, 48, 200, 17] {
                let bits = pseudo_random_bits(n, n as u64 + 31);
                let coded = encode(&bits, rate);
                assert_eq!(
                    decode_with(&coded, n, rate, &mut scratch),
                    decode(&coded, n, rate),
                    "hard rate {rate} n {n}"
                );
                let llrs: Vec<f64> = coded
                    .iter()
                    .map(|&b| if b == 1 { 2.5 } else { -2.5 })
                    .collect();
                assert_eq!(
                    decode_soft_with(&llrs, n, rate, &mut scratch),
                    decode_soft(&llrs, n, rate),
                    "soft rate {rate} n {n}"
                );
            }
        }
    }

    #[test]
    fn consistent_with_puncture_pattern() {
        // depuncture_layout is a flat-index re-statement of
        // puncture_pattern; derive one from the other and compare.
        for rate in [CodeRate::Half, CodeRate::TwoThirds, CodeRate::ThreeQuarters] {
            let (kept, flat, offs) = depuncture_layout(rate);
            let pattern = rate.puncture_pattern();
            assert_eq!(flat, 2 * pattern.len(), "rate {rate}");
            let mut expect = Vec::new();
            for (s, &(ka, kb)) in pattern.iter().enumerate() {
                if ka {
                    expect.push(2 * s);
                }
                if kb {
                    expect.push(2 * s + 1);
                }
            }
            assert_eq!(kept, expect.len(), "rate {rate}");
            assert_eq!(offs, expect.as_slice(), "rate {rate}");
        }
    }

    #[test]
    fn decode_levels_matches_quantized_path() {
        // The specialized period-chunk depuncturer must agree with the
        // legacy per-bit one for every rate, including truncated tails
        // landing mid-period.
        for (seed, rate) in [
            (11u64, CodeRate::Half),
            (13, CodeRate::TwoThirds),
            (17, CodeRate::ThreeQuarters),
        ] {
            let bits = pseudo_random_bits(150, seed);
            let coded = encode(&bits, rate);
            let llrs: Vec<f64> = coded
                .iter()
                .enumerate()
                .map(|(k, &b)| {
                    let sign = if b == 1 { 1.0 } else { -1.0 };
                    sign * (((k * 2654435761) >> 5) % 5) as f64 * 0.5
                })
                .collect();
            let levels: Vec<i32> = llrs.iter().map(|&l| quantize_llr(l)).collect();
            assert_eq!(
                decode_levels(&levels, 150, rate),
                decode_soft_quantized(&llrs, 150, rate),
                "rate {rate}"
            );
            for cut in 1..=7 {
                let n = levels.len() - cut;
                assert_eq!(
                    decode_levels(&levels[..n], 150, rate),
                    decode_soft_quantized(&llrs[..n], 150, rate),
                    "rate {rate} cut {cut}"
                );
            }
        }
    }

    #[test]
    fn decode_levels_hard_levels_match_hard_decoder() {
        // ±1 levels are exactly what depuncture_hard_into produces, so
        // decode_levels on them must reproduce the hard decoder.
        for rate in [CodeRate::Half, CodeRate::TwoThirds, CodeRate::ThreeQuarters] {
            let bits = pseudo_random_bits(96, 29);
            let mut coded = encode(&bits, rate);
            for pos in (0..coded.len()).step_by(37) {
                coded[pos] ^= 1;
            }
            let levels: Vec<i32> = coded.iter().map(|&b| if b == 1 { 1 } else { -1 }).collect();
            assert_eq!(
                decode_levels(&levels, 96, rate),
                decode(&coded, 96, rate),
                "rate {rate}"
            );
        }
    }

    #[test]
    fn rate_arithmetic() {
        assert_eq!(CodeRate::Half.as_f64(), 0.5);
        assert_eq!(CodeRate::TwoThirds.to_string(), "2/3");
        assert!((CodeRate::ThreeQuarters.as_f64() - 0.75).abs() < 1e-12);
    }
}
