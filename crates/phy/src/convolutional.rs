//! Rate-1/2, constraint-length-7 convolutional code with Viterbi decoding.
//!
//! This is the mandatory code of the IEEE 802.11 OFDM PHY: generator
//! polynomials `g0 = 133 (octal)` and `g1 = 171 (octal)`. Higher rates
//! (2/3 and 3/4) are derived by puncturing, exactly as in the standard.
//! The decoder is a hard-decision Viterbi with full traceback and
//! erasure support for punctured positions.
//!
//! The Carpool A-HDR is "coded using the lowest coding rate" (BPSK, rate
//! 1/2), so two OFDM symbols — 96 coded bits — carry the 48-bit Bloom
//! filter (Section 4.1).

/// Constraint length of the 802.11 code.
pub const CONSTRAINT_LENGTH: usize = 7;
/// Number of trellis states (`2^(K-1)`).
pub const NUM_STATES: usize = 1 << (CONSTRAINT_LENGTH - 1);
/// Generator polynomial g0 = 133 octal.
pub const G0: u32 = 0o133;
/// Generator polynomial g1 = 171 octal.
pub const G1: u32 = 0o171;

/// Coding rate of the convolutional code after (optional) puncturing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CodeRate {
    /// Rate 1/2: no puncturing.
    #[default]
    Half,
    /// Rate 2/3: puncture pattern keeps 4 of 6 output bits.
    TwoThirds,
    /// Rate 3/4: puncture pattern keeps 4 of 6 output bits per 3 inputs.
    ThreeQuarters,
}

impl CodeRate {
    /// Numerator of the rate fraction.
    pub fn numerator(&self) -> usize {
        match self {
            CodeRate::Half => 1,
            CodeRate::TwoThirds => 2,
            CodeRate::ThreeQuarters => 3,
        }
    }

    /// Denominator of the rate fraction.
    pub fn denominator(&self) -> usize {
        match self {
            CodeRate::Half => 2,
            CodeRate::TwoThirds => 3,
            CodeRate::ThreeQuarters => 4,
        }
    }

    /// The rate as a float (e.g. 0.75 for [`CodeRate::ThreeQuarters`]).
    pub fn as_f64(&self) -> f64 {
        self.numerator() as f64 / self.denominator() as f64
    }

    /// Puncturing pattern applied to the rate-1/2 mother code output.
    ///
    /// The pattern is given per input-bit period as `(keep_a, keep_b)`
    /// pairs, matching IEEE 802.11-2012 Figure 18-9.
    fn puncture_pattern(&self) -> &'static [(bool, bool)] {
        match self {
            CodeRate::Half => &[(true, true)],
            CodeRate::TwoThirds => &[(true, true), (true, false)],
            CodeRate::ThreeQuarters => &[(true, true), (true, false), (false, true)],
        }
    }
}

impl std::fmt::Display for CodeRate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.numerator(), self.denominator())
    }
}

#[inline]
const fn parity(x: u32) -> u8 {
    (x.count_ones() & 1) as u8
}

/// Expected `(g0, g1)` output bits for every `(state, input)` trellis
/// transition. State = previous `K-1` input bits; next state =
/// `((state << 1) | input) & (NUM_STATES - 1)`.
const EXPECTED: [[(u8, u8); 2]; NUM_STATES] = build_expected();

const fn build_expected() -> [[(u8, u8); 2]; NUM_STATES] {
    let mut table = [[(0u8, 0u8); 2]; NUM_STATES];
    let mut state = 0;
    while state < NUM_STATES {
        let mut input = 0;
        while input < 2 {
            let shift = ((state as u32) << 1) | input as u32;
            table[state][input] = (parity(shift & G0), parity(shift & G1));
            input += 1;
        }
        state += 1;
    }
    table
}

/// Encodes with the rate-1/2 mother code (no puncturing, no tail).
///
/// Each input bit produces two output bits `(a, b)` from g0 and g1.
fn encode_mother(bits: &[u8]) -> Vec<(u8, u8)> {
    let mut shift: u32 = 0;
    let mut out = Vec::with_capacity(bits.len());
    for &bit in bits {
        assert!(bit <= 1, "bit value {bit} out of range");
        shift = ((shift << 1) | bit as u32) & ((1 << CONSTRAINT_LENGTH) - 1);
        out.push((parity(shift & G0), parity(shift & G1)));
    }
    out
}

/// Convolutionally encodes `bits` at the given rate.
///
/// The encoder appends `K-1 = 6` zero tail bits so the trellis terminates
/// in the zero state, then punctures per the 802.11 patterns. Use
/// [`decode`] with the same rate to recover the input.
///
/// # Examples
///
/// ```
/// use carpool_phy::convolutional::{encode, decode, CodeRate};
///
/// let data = vec![1u8, 0, 1, 1, 0, 0, 1, 1, 1, 0, 1, 0];
/// let coded = encode(&data, CodeRate::Half);
/// assert_eq!(decode(&coded, data.len(), CodeRate::Half), data);
/// ```
pub fn encode(bits: &[u8], rate: CodeRate) -> Vec<u8> {
    let mut tailed = bits.to_vec();
    tailed.extend_from_slice(&[0; CONSTRAINT_LENGTH - 1]);
    let pairs = encode_mother(&tailed);
    let pattern = rate.puncture_pattern();
    let mut out = Vec::with_capacity(pairs.len() * 2);
    for (k, (a, b)) in pairs.into_iter().enumerate() {
        let (keep_a, keep_b) = pattern[k % pattern.len()];
        if keep_a {
            out.push(a);
        }
        if keep_b {
            out.push(b);
        }
    }
    out
}

/// Number of coded bits produced by [`encode`] for `message_len` input bits.
pub fn coded_len(message_len: usize, rate: CodeRate) -> usize {
    let total_in = message_len + CONSTRAINT_LENGTH - 1;
    let pattern = rate.puncture_pattern();
    let per_period: usize = pattern.iter().map(|(a, b)| *a as usize + *b as usize).sum();
    let full = total_in / pattern.len();
    let mut n = full * per_period;
    for (a, b) in pattern.iter().take(total_in % pattern.len()) {
        n += *a as usize + *b as usize;
    }
    n
}

/// A received coded bit, possibly erased by puncturing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Soft {
    Bit(u8),
    Erased,
}

/// Depunctures a soft (LLR) stream into `out`; punctured/missing
/// positions become zero-information LLRs.
fn depuncture_soft_into(llrs: &[f64], total_in: usize, rate: CodeRate, out: &mut Vec<(f64, f64)>) {
    let pattern = rate.puncture_pattern();
    let mut it = llrs.iter();
    out.clear();
    out.reserve(total_in);
    for k in 0..total_in {
        let (keep_a, keep_b) = pattern[k % pattern.len()];
        let a = if keep_a {
            it.next().copied().unwrap_or(0.0)
        } else {
            0.0
        };
        let b = if keep_b {
            it.next().copied().unwrap_or(0.0)
        } else {
            0.0
        };
        out.push((a, b));
    }
}

/// Depunctures a received stream into `out`, back to the mother-code
/// lattice.
fn depuncture_into(coded: &[u8], total_in: usize, rate: CodeRate, out: &mut Vec<(Soft, Soft)>) {
    let pattern = rate.puncture_pattern();
    let mut it = coded.iter();
    out.clear();
    out.reserve(total_in);
    for k in 0..total_in {
        let (keep_a, keep_b) = pattern[k % pattern.len()];
        let a = if keep_a {
            it.next().map(|&b| Soft::Bit(b)).unwrap_or(Soft::Erased)
        } else {
            Soft::Erased
        };
        let b = if keep_b {
            it.next().map(|&b| Soft::Bit(b)).unwrap_or(Soft::Erased)
        } else {
            Soft::Erased
        };
        out.push((a, b));
    }
}

/// Reusable decoder workspace: the depunctured lattice and traceback
/// history buffers, recycled across calls so the per-frame decode loop
/// allocates nothing after warm-up.
///
/// Create one with `ViterbiScratch::default()` and pass it to
/// [`decode_with`] / [`decode_soft_with`]; the plain [`decode`] /
/// [`decode_soft`] wrappers allocate a fresh one per call.
#[derive(Debug, Default)]
pub struct ViterbiScratch {
    hard_lattice: Vec<(Soft, Soft)>,
    soft_lattice: Vec<(f64, f64)>,
    history: Vec<[u8; NUM_STATES]>,
}

#[inline]
fn branch_metric(observed: (Soft, Soft), expected: (u8, u8)) -> u32 {
    let mut m = 0;
    if let Soft::Bit(b) = observed.0 {
        m += (b != expected.0) as u32;
    }
    if let Soft::Bit(b) = observed.1 {
        m += (b != expected.1) as u32;
    }
    m
}

/// Hard-decision Viterbi decoder for streams produced by [`encode`].
///
/// `message_len` is the number of *information* bits expected (the tail is
/// handled internally). Extra or missing coded bits degrade gracefully:
/// missing tail positions are treated as erasures.
///
/// # Panics
///
/// Panics if any element of `coded` is not 0 or 1.
pub fn decode(coded: &[u8], message_len: usize, rate: CodeRate) -> Vec<u8> {
    decode_with(coded, message_len, rate, &mut ViterbiScratch::default())
}

/// [`decode`] with a caller-provided [`ViterbiScratch`], so repeated
/// decodes (the per-frame hot path) reuse the lattice and traceback
/// buffers instead of reallocating them.
pub fn decode_with(
    coded: &[u8],
    message_len: usize,
    rate: CodeRate,
    scratch: &mut ViterbiScratch,
) -> Vec<u8> {
    if message_len == 0 {
        return Vec::new();
    }
    let total_in = message_len + CONSTRAINT_LENGTH - 1;
    let ViterbiScratch {
        hard_lattice,
        history,
        ..
    } = scratch;
    depuncture_into(coded, total_in, rate, hard_lattice);

    const INF: u32 = u32::MAX / 2;
    let mut metrics = [INF; NUM_STATES];
    metrics[0] = 0; // Encoder starts in the zero state.
    let mut next = [INF; NUM_STATES];
    history.clear();
    history.reserve(total_in);

    for &obs in hard_lattice.iter() {
        next.fill(INF);
        let mut prev_choice = [0u8; NUM_STATES];
        for state in 0..NUM_STATES {
            let m = metrics[state];
            if m >= INF {
                continue;
            }
            for (input, &exp) in EXPECTED[state].iter().enumerate() {
                let ns = ((state << 1) | input) & (NUM_STATES - 1);
                let bm = branch_metric(obs, exp);
                let cand = m + bm;
                if cand < next[ns] {
                    next[ns] = cand;
                    // The evicted (oldest) bit of `state` identifies which
                    // predecessor we came from; store the high bit of state.
                    prev_choice[ns] = (state >> (CONSTRAINT_LENGTH - 2)) as u8;
                }
            }
        }
        std::mem::swap(&mut metrics, &mut next);
        history.push(prev_choice);
    }

    // Traceback from the zero state (tail forces termination there).
    let mut state = 0usize;
    if metrics[0] >= INF {
        // Degenerate input: fall back to the best surviving state.
        state = metrics
            .iter()
            .enumerate()
            .min_by_key(|(_, m)| **m)
            .map(|(s, _)| s)
            .unwrap_or(0);
    }
    let mut decoded = vec![0u8; total_in];
    for t in (0..total_in).rev() {
        decoded[t] = (state & 1) as u8; // newest bit in the state register
        let old_bit = history[t][state] as usize;
        state = (state >> 1) | (old_bit << (CONSTRAINT_LENGTH - 2));
    }
    decoded.truncate(message_len);
    decoded
}

/// Soft-decision Viterbi decoder.
///
/// `llrs` are per-coded-bit log-likelihood ratios in transmission order
/// (positive favours bit 1), e.g. from
/// [`crate::modulation::Modulation::demap_soft_into`]. Soft decoding
/// gains ~2 dB over hard decisions on an AWGN channel.
///
/// # Examples
///
/// ```
/// use carpool_phy::convolutional::{decode_soft, encode, CodeRate};
///
/// let data = vec![1u8, 0, 1, 1, 0, 0, 1, 0];
/// let coded = encode(&data, CodeRate::Half);
/// // Perfectly confident LLRs: +4 for 1, -4 for 0.
/// let llrs: Vec<f64> = coded.iter().map(|&b| if b == 1 { 4.0 } else { -4.0 }).collect();
/// assert_eq!(decode_soft(&llrs, data.len(), CodeRate::Half), data);
/// ```
pub fn decode_soft(llrs: &[f64], message_len: usize, rate: CodeRate) -> Vec<u8> {
    decode_soft_with(llrs, message_len, rate, &mut ViterbiScratch::default())
}

/// [`decode_soft`] with a caller-provided [`ViterbiScratch`]; see
/// [`decode_with`].
pub fn decode_soft_with(
    llrs: &[f64],
    message_len: usize,
    rate: CodeRate,
    scratch: &mut ViterbiScratch,
) -> Vec<u8> {
    if message_len == 0 {
        return Vec::new();
    }
    let total_in = message_len + CONSTRAINT_LENGTH - 1;
    let ViterbiScratch {
        soft_lattice,
        history,
        ..
    } = scratch;
    depuncture_soft_into(llrs, total_in, rate, soft_lattice);

    // Linear branch cost: hypothesising bit 1 costs -llr, bit 0 costs
    // +llr (constant offsets cancel along paths).
    let bit_cost = |bit: u8, llr: f64| if bit == 1 { -llr } else { llr };

    const INF: f64 = f64::INFINITY;
    let mut metrics = [INF; NUM_STATES];
    metrics[0] = 0.0;
    let mut next = [INF; NUM_STATES];
    history.clear();
    history.reserve(total_in);

    for &(la, lb) in soft_lattice.iter() {
        next.fill(INF);
        let mut prev_choice = [0u8; NUM_STATES];
        for state in 0..NUM_STATES {
            let m = metrics[state];
            if !m.is_finite() {
                continue;
            }
            for (input, &(ea, eb)) in EXPECTED[state].iter().enumerate() {
                let ns = ((state << 1) | input) & (NUM_STATES - 1);
                let cand = m + bit_cost(ea, la) + bit_cost(eb, lb);
                if cand < next[ns] {
                    next[ns] = cand;
                    prev_choice[ns] = (state >> (CONSTRAINT_LENGTH - 2)) as u8;
                }
            }
        }
        std::mem::swap(&mut metrics, &mut next);
        history.push(prev_choice);
    }

    let mut state = 0usize;
    if !metrics[0].is_finite() {
        state = metrics
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.total_cmp(b))
            .map(|(s, _)| s)
            .unwrap_or(0);
    }
    let mut decoded = vec![0u8; total_in];
    for t in (0..total_in).rev() {
        decoded[t] = (state & 1) as u8;
        let old_bit = history[t][state] as usize;
        state = (state >> 1) | (old_bit << (CONSTRAINT_LENGTH - 2));
    }
    decoded.truncate(message_len);
    decoded
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_random_bits(n: usize, seed: u64) -> Vec<u8> {
        // xorshift so the tests don't need an RNG dependency here.
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x & 1) as u8
            })
            .collect()
    }

    #[test]
    fn known_encoder_output() {
        // First input bit 1 from zero state: shift = 0000001.
        // g0 = 1011011 -> parity(0000001 & 1011011) = 1
        // g1 = 1111001 -> parity(0000001 & 1111001) = 1
        let coded = encode(&[1], CodeRate::Half);
        assert_eq!(coded.len(), coded_len(1, CodeRate::Half));
        assert_eq!(&coded[..2], &[1, 1]);
    }

    #[test]
    fn coded_len_matches_encode() {
        for rate in [CodeRate::Half, CodeRate::TwoThirds, CodeRate::ThreeQuarters] {
            for n in [1usize, 2, 3, 17, 48, 100] {
                let bits = pseudo_random_bits(n, 7);
                assert_eq!(
                    encode(&bits, rate).len(),
                    coded_len(n, rate),
                    "rate {rate} n {n}"
                );
            }
        }
    }

    #[test]
    fn round_trip_clean_channel_all_rates() {
        for rate in [CodeRate::Half, CodeRate::TwoThirds, CodeRate::ThreeQuarters] {
            for n in [1usize, 5, 48, 96, 333] {
                let bits = pseudo_random_bits(n, n as u64 + 1);
                let coded = encode(&bits, rate);
                let decoded = decode(&coded, n, rate);
                assert_eq!(decoded, bits, "rate {rate} n {n}");
            }
        }
    }

    #[test]
    fn corrects_scattered_errors_at_half_rate() {
        let bits = pseudo_random_bits(200, 42);
        let mut coded = encode(&bits, CodeRate::Half);
        // Flip well-separated bits; free distance 10 handles these easily.
        for pos in (0..coded.len()).step_by(45) {
            coded[pos] ^= 1;
        }
        assert_eq!(decode(&coded, 200, CodeRate::Half), bits);
    }

    #[test]
    fn corrects_isolated_error_at_three_quarters() {
        let bits = pseudo_random_bits(120, 9);
        let mut coded = encode(&bits, CodeRate::ThreeQuarters);
        coded[30] ^= 1;
        assert_eq!(decode(&coded, 120, CodeRate::ThreeQuarters), bits);
    }

    #[test]
    fn heavy_corruption_fails_gracefully() {
        let bits = pseudo_random_bits(100, 3);
        let coded = encode(&bits, CodeRate::Half);
        let garbage: Vec<u8> = coded.iter().map(|b| b ^ 1).collect();
        let decoded = decode(&garbage, 100, CodeRate::Half);
        // No panic and correct length; content may differ.
        assert_eq!(decoded.len(), 100);
    }

    #[test]
    fn truncated_input_is_tolerated() {
        let bits = pseudo_random_bits(64, 11);
        let coded = encode(&bits, CodeRate::Half);
        let decoded = decode(&coded[..coded.len() - 8], 64, CodeRate::Half);
        assert_eq!(decoded.len(), 64);
        // The head should still be correct; only tail positions were erased.
        assert_eq!(&decoded[..50], &bits[..50]);
    }

    #[test]
    fn empty_message() {
        assert!(decode(&[], 0, CodeRate::Half).is_empty());
    }

    #[test]
    fn soft_round_trip_all_rates() {
        for rate in [CodeRate::Half, CodeRate::TwoThirds, CodeRate::ThreeQuarters] {
            let bits = pseudo_random_bits(200, 5);
            let coded = encode(&bits, rate);
            let llrs: Vec<f64> = coded
                .iter()
                .map(|&b| if b == 1 { 3.0 } else { -3.0 })
                .collect();
            assert_eq!(decode_soft(&llrs, 200, rate), bits, "rate {rate}");
        }
    }

    #[test]
    fn soft_decoder_uses_confidence() {
        // Flip three adjacent bits but mark them low-confidence: the
        // soft decoder recovers where a hard decoder may not.
        let bits = pseudo_random_bits(120, 21);
        let coded = encode(&bits, CodeRate::Half);
        let mut llrs: Vec<f64> = coded
            .iter()
            .map(|&b| if b == 1 { 4.0 } else { -4.0 })
            .collect();
        for k in 40..43 {
            // Wrong sign, tiny magnitude.
            llrs[k] = if coded[k] == 1 { -0.1 } else { 0.1 };
        }
        assert_eq!(decode_soft(&llrs, 120, CodeRate::Half), bits);
    }

    #[test]
    fn soft_handles_truncated_input() {
        let bits = pseudo_random_bits(64, 3);
        let coded = encode(&bits, CodeRate::Half);
        let llrs: Vec<f64> = coded[..coded.len() - 8]
            .iter()
            .map(|&b| if b == 1 { 2.0 } else { -2.0 })
            .collect();
        let decoded = decode_soft(&llrs, 64, CodeRate::Half);
        assert_eq!(decoded.len(), 64);
        assert_eq!(&decoded[..50], &bits[..50]);
    }

    #[test]
    fn soft_empty_message() {
        assert!(decode_soft(&[], 0, CodeRate::Half).is_empty());
    }

    #[test]
    fn scratch_reuse_across_rates_and_lengths_matches_fresh_decodes() {
        let mut scratch = ViterbiScratch::default();
        for rate in [CodeRate::Half, CodeRate::TwoThirds, CodeRate::ThreeQuarters] {
            for n in [1usize, 48, 200, 17] {
                let bits = pseudo_random_bits(n, n as u64 + 31);
                let coded = encode(&bits, rate);
                assert_eq!(
                    decode_with(&coded, n, rate, &mut scratch),
                    decode(&coded, n, rate),
                    "hard rate {rate} n {n}"
                );
                let llrs: Vec<f64> = coded
                    .iter()
                    .map(|&b| if b == 1 { 2.5 } else { -2.5 })
                    .collect();
                assert_eq!(
                    decode_soft_with(&llrs, n, rate, &mut scratch),
                    decode_soft(&llrs, n, rate),
                    "soft rate {rate} n {n}"
                );
            }
        }
    }

    #[test]
    fn rate_arithmetic() {
        assert_eq!(CodeRate::Half.as_f64(), 0.5);
        assert_eq!(CodeRate::TwoThirds.to_string(), "2/3");
        assert!((CodeRate::ThreeQuarters.as_f64() - 0.75).abs() < 1e-12);
    }
}
