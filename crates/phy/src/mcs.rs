//! Modulation and coding schemes (MCS) of the OFDM PHY.
//!
//! An [`Mcs`] pairs a constellation with a convolutional code rate and
//! derives the standard quantities: coded/data bits per OFDM symbol and
//! the nominal data rate at 20 MHz (4 µs symbols). Each Carpool subframe
//! carries its own MCS in its SIG field, so different receivers can be
//! served at different rates within one aggregated frame (Section 4.1).

use crate::convolutional::CodeRate;
use crate::modulation::Modulation;
use crate::ofdm::NUM_DATA;

/// OFDM symbol duration at 20 MHz including guard interval, in seconds.
pub const SYMBOL_DURATION: f64 = 4e-6;

/// A modulation-and-coding scheme.
///
/// # Examples
///
/// ```
/// use carpool_phy::mcs::Mcs;
///
/// let mcs = Mcs::QAM64_3_4;
/// assert_eq!(mcs.data_bits_per_symbol(), 216);
/// assert!((mcs.data_rate_bps() - 54e6).abs() < 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Mcs {
    /// Subcarrier constellation.
    pub modulation: Modulation,
    /// Convolutional code rate.
    pub code_rate: CodeRate,
}

impl Mcs {
    /// BPSK, rate 1/2 — 6 Mbit/s. The mandatory base rate; used for the
    /// A-HDR and SIG fields.
    pub const BPSK_1_2: Mcs = Mcs {
        modulation: Modulation::Bpsk,
        code_rate: CodeRate::Half,
    };
    /// BPSK, rate 3/4 — 9 Mbit/s.
    pub const BPSK_3_4: Mcs = Mcs {
        modulation: Modulation::Bpsk,
        code_rate: CodeRate::ThreeQuarters,
    };
    /// QPSK, rate 1/2 — 12 Mbit/s.
    pub const QPSK_1_2: Mcs = Mcs {
        modulation: Modulation::Qpsk,
        code_rate: CodeRate::Half,
    };
    /// QPSK, rate 3/4 — 18 Mbit/s.
    pub const QPSK_3_4: Mcs = Mcs {
        modulation: Modulation::Qpsk,
        code_rate: CodeRate::ThreeQuarters,
    };
    /// 16-QAM, rate 1/2 — 24 Mbit/s.
    pub const QAM16_1_2: Mcs = Mcs {
        modulation: Modulation::Qam16,
        code_rate: CodeRate::Half,
    };
    /// 16-QAM, rate 3/4 — 36 Mbit/s.
    pub const QAM16_3_4: Mcs = Mcs {
        modulation: Modulation::Qam16,
        code_rate: CodeRate::ThreeQuarters,
    };
    /// 64-QAM, rate 2/3 — 48 Mbit/s.
    pub const QAM64_2_3: Mcs = Mcs {
        modulation: Modulation::Qam64,
        code_rate: CodeRate::TwoThirds,
    };
    /// 64-QAM, rate 3/4 — 54 Mbit/s.
    pub const QAM64_3_4: Mcs = Mcs {
        modulation: Modulation::Qam64,
        code_rate: CodeRate::ThreeQuarters,
    };

    /// The eight standard 802.11a/g rates in increasing order.
    pub const ALL: [Mcs; 8] = [
        Mcs::BPSK_1_2,
        Mcs::BPSK_3_4,
        Mcs::QPSK_1_2,
        Mcs::QPSK_3_4,
        Mcs::QAM16_1_2,
        Mcs::QAM16_3_4,
        Mcs::QAM64_2_3,
        Mcs::QAM64_3_4,
    ];

    /// Creates an MCS from its components.
    pub const fn new(modulation: Modulation, code_rate: CodeRate) -> Mcs {
        Mcs {
            modulation,
            code_rate,
        }
    }

    /// Coded bits per OFDM symbol (`N_CBPS`).
    pub fn coded_bits_per_symbol(&self) -> usize {
        NUM_DATA * self.modulation.bits_per_symbol()
    }

    /// Data (information) bits per OFDM symbol (`N_DBPS`).
    pub fn data_bits_per_symbol(&self) -> usize {
        self.coded_bits_per_symbol() * self.code_rate.numerator() / self.code_rate.denominator()
    }

    /// Nominal PHY data rate in bit/s at 20 MHz.
    pub fn data_rate_bps(&self) -> f64 {
        self.data_bits_per_symbol() as f64 / SYMBOL_DURATION
    }

    /// Number of OFDM symbols needed to carry `payload_bits` information
    /// bits, including the convolutional tail.
    pub fn symbols_for_bits(&self, payload_bits: usize) -> usize {
        use crate::convolutional::CONSTRAINT_LENGTH;
        let total = payload_bits + (CONSTRAINT_LENGTH - 1);
        let dbps_coded = self.coded_bits_per_symbol();
        // Coded bits produced for `total` inputs (worst case: no puncture
        // savings for partial periods — use the exact helper).
        let coded = crate::convolutional::coded_len(payload_bits, self.code_rate);
        debug_assert!(coded >= total);
        coded.div_ceil(dbps_coded)
    }

    /// Airtime of `payload_bits` at this MCS, in seconds (payload symbols
    /// only; preamble and headers are accounted by the frame layer).
    pub fn airtime_for_bits(&self, payload_bits: usize) -> f64 {
        self.symbols_for_bits(payload_bits) as f64 * SYMBOL_DURATION
    }
}

impl std::fmt::Display for Mcs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {}", self.modulation, self.code_rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_rates() {
        let expect = [6e6, 9e6, 12e6, 18e6, 24e6, 36e6, 48e6, 54e6];
        for (mcs, rate) in Mcs::ALL.iter().zip(expect) {
            assert!(
                (mcs.data_rate_bps() - rate).abs() < 1.0,
                "{mcs}: {} != {rate}",
                mcs.data_rate_bps()
            );
        }
    }

    #[test]
    fn coded_bits_per_symbol_standard_values() {
        assert_eq!(Mcs::BPSK_1_2.coded_bits_per_symbol(), 48);
        assert_eq!(Mcs::QPSK_1_2.coded_bits_per_symbol(), 96);
        assert_eq!(Mcs::QAM16_1_2.coded_bits_per_symbol(), 192);
        assert_eq!(Mcs::QAM64_3_4.coded_bits_per_symbol(), 288);
    }

    #[test]
    fn data_bits_per_symbol_standard_values() {
        assert_eq!(Mcs::BPSK_1_2.data_bits_per_symbol(), 24);
        assert_eq!(Mcs::QPSK_3_4.data_bits_per_symbol(), 72);
        assert_eq!(Mcs::QAM64_2_3.data_bits_per_symbol(), 192);
        assert_eq!(Mcs::QAM64_3_4.data_bits_per_symbol(), 216);
    }

    #[test]
    fn symbols_for_bits_is_monotone_and_positive() {
        for mcs in Mcs::ALL {
            let mut prev = 0;
            for bits in [1usize, 100, 1000, 10000] {
                let n = mcs.symbols_for_bits(bits);
                assert!(n >= 1);
                assert!(n >= prev);
                prev = n;
            }
        }
    }

    #[test]
    fn airtime_example_1500_bytes_at_54mbps() {
        // ~222 us for 1500 B at 54 Mbit/s, as quoted in the paper (Sec 3).
        let t = Mcs::QAM64_3_4.airtime_for_bits(1500 * 8);
        assert!((200e-6..240e-6).contains(&t), "airtime {t}");
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(Mcs::QAM64_3_4.to_string(), "QAM64 3/4");
    }
}
