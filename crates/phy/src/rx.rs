//! Receiver chain: baseband samples to section bits.
//!
//! The receiver is *layout driven*: it is told the section structure
//! (lengths, MCS, scrambling, side channel) it should expect. The layer
//! above (`carpool-frame`) discovers that structure incrementally the way
//! a Carpool STA does — decode the fixed-format A-HDR, then each
//! subframe's SIG, then decode or *skip* the subframe body — which is why
//! the core API is the stepwise [`FrameDecoder`]; [`receive`] is a
//! convenience wrapper that decodes a fully known layout in one call.
//!
//! Two estimation modes are provided:
//!
//! * [`Estimation::Standard`] — the 802.11 baseline: one LTF estimate for
//!   the whole frame (exhibits the paper's BER bias on long frames).
//! * [`Estimation::Rte`] — Carpool's real-time estimation: per-symbol
//!   CRCs from the phase offset side channel gate data-pilot updates of
//!   the channel estimate (paper Section 5).

use crate::convolutional::{
    coded_len, decode_prepared, CodeRate, ViterbiScratch, CONSTRAINT_LENGTH,
};
use crate::equalizer::{compensate_phase, estimate_noise_from_ltf, track_phase, ChannelEstimate};
use crate::interleaver::RxSymbolMap;
use crate::math::Complex64;
use crate::mcs::{Mcs, SYMBOL_DURATION};
use crate::modulation::Modulation;
use crate::ofdm::{
    demodulate_symbol, demodulate_symbol_into, FreqSymbol, DATA_CARRIERS, FFT_SIZE, NUM_DATA,
    SYMBOL_LEN,
};
use crate::preamble::{ltf_offsets, PREAMBLE_LEN};
use crate::rte::{CalibrationRule, RteEstimator};
use crate::scrambler::Scrambler;
use crate::tx::{SectionSpec, SideChannelConfig};
use crate::PhyError;
use carpool_obs::{Event, Obs, TraceKind};

/// Channel estimation strategy.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Estimation {
    /// Preamble-only estimation (IEEE 802.11 baseline).
    #[default]
    Standard,
    /// Real-time estimation calibrated by data pilots (Carpool).
    Rte(CalibrationRule),
}

/// Expected layout of one received section.
#[derive(Debug, Clone, PartialEq)]
pub struct SectionLayout {
    /// Information bits to recover.
    pub message_bits: usize,
    /// Modulation and coding scheme.
    pub mcs: Mcs,
    /// Whether the section was scrambled.
    pub scramble: bool,
    /// Side-channel configuration, if the transmitter injected one.
    pub side_channel: Option<SideChannelConfig>,
    /// Whether the section's data subcarriers are QBPSK-rotated (the
    /// Carpool A-HDR format mark).
    pub qbpsk: bool,
}

impl SectionLayout {
    /// Layout corresponding to a transmit [`SectionSpec`].
    pub fn of(spec: &SectionSpec) -> SectionLayout {
        SectionLayout {
            message_bits: spec.bits.len(),
            mcs: spec.mcs,
            scramble: spec.scramble,
            side_channel: spec.side_channel,
            qbpsk: spec.qbpsk,
        }
    }

    /// OFDM symbols this section occupies.
    pub fn symbol_count(&self) -> usize {
        self.mcs.symbols_for_bits(self.message_bits)
    }
}

/// Decoded contents and diagnostics of one section.
#[derive(Debug, Clone, PartialEq)]
// lint:allow(dead-api): appears in pub signatures; callers use it structurally without naming the type
pub struct RxSection {
    /// Recovered information bits (post-Viterbi, descrambled).
    pub bits: Vec<u8>,
    /// Hard-decision interleaved-domain bits per symbol — comparable to
    /// [`crate::tx::SectionInfo::symbol_bits`] for raw BER measurement.
    pub raw_symbol_bits: Vec<Vec<u8>>,
    /// Per-symbol verdict of the side-channel CRC (all symbols in a
    /// group share the verdict). Empty when the side channel is off.
    pub crc_ok: Vec<bool>,
    /// Side-channel values decoded per symbol. Empty when off.
    pub side_values: Vec<u8>,
    /// Tracked total common phase offset per symbol, radians.
    pub phase_offsets: Vec<f64>,
}

/// A fully decoded PPDU.
#[derive(Debug, Clone, PartialEq)]
pub struct RxFrame {
    /// Per-section results, in layout order.
    pub sections: Vec<RxSection>,
    /// The initial LTF-derived channel estimate.
    pub initial_estimate: ChannelEstimate,
}

enum Estimator {
    /// Preamble-only estimation: the decoder's LTF-derived `initial`
    /// estimate is used as-is (no copy of it is kept here).
    Fixed,
    Rte(RteEstimator),
}

impl Estimator {
    fn current<'e>(&'e self, initial: &'e ChannelEstimate) -> &'e ChannelEstimate {
        match self {
            Estimator::Fixed => initial,
            Estimator::Rte(r) => r.estimate(),
        }
    }

    fn update(&mut self, received: &FreqSymbol, decided: &[Complex64], idx: usize) {
        if let Estimator::Rte(r) = self {
            r.update(received, decided, idx);
        }
    }

    /// `(updates, rejected)` counters when running RTE, `None` otherwise.
    fn rte_counters(&self) -> Option<(usize, usize)> {
        match self {
            Estimator::Fixed => None,
            Estimator::Rte(r) => Some((r.updates(), r.rejected())),
        }
    }
}

/// Buffered state for one side-channel CRC group. Cleared buffers are
/// parked in spare pools instead of dropped, so the per-symbol
/// `compensated`/`decided` entries recycle their allocations.
#[derive(Debug)]
struct GroupBuffer {
    bits: Vec<u8>,
    side_values: Vec<u8>,
    compensated: Vec<FreqSymbol>,
    decided: Vec<Vec<Complex64>>,
    indices: Vec<usize>,
    spare_syms: Vec<FreqSymbol>,
    spare_points: Vec<Vec<Complex64>>,
}

impl GroupBuffer {
    fn new() -> GroupBuffer {
        GroupBuffer {
            bits: Vec::new(),
            side_values: Vec::new(),
            compensated: Vec::new(),
            decided: Vec::new(),
            indices: Vec::new(),
            spare_syms: Vec::new(),
            spare_points: Vec::new(),
        }
    }

    fn clear(&mut self) {
        self.bits.clear();
        self.side_values.clear();
        self.spare_syms.append(&mut self.compensated);
        self.spare_points.append(&mut self.decided);
        self.indices.clear();
    }
}

/// Reusable receive-path workspace: the FFT bin buffer, demodulated and
/// equalised symbol slots, the soft-bit (LLR) buffer, the Viterbi
/// trellis, and the side-channel group buffer. Every [`FrameDecoder`]
/// owns one, so the steady-state symbol loop performs no heap
/// allocation beyond its per-symbol outputs; recycle it across frames
/// with [`FrameDecoder::with_scratch`] / [`FrameDecoder::into_scratch`].
#[derive(Debug)]
// lint:allow(dead-api): appears in pub signatures; callers use it structurally without naming the type
pub struct PhyScratch {
    fft_bins: Vec<Complex64>,
    raw: FreqSymbol,
    eq: FreqSymbol,
    llrs: Vec<f64>,
    viterbi: ViterbiScratch,
    group: GroupBuffer,
    /// Fused-pipeline scatter maps, one per `(modulation, rate)` seen.
    rx_maps: Vec<(Modulation, CodeRate, RxSymbolMap)>,
}

impl Default for PhyScratch {
    fn default() -> PhyScratch {
        PhyScratch {
            fft_bins: Vec::with_capacity(FFT_SIZE),
            raw: FreqSymbol::zeroed(),
            eq: FreqSymbol::zeroed(),
            llrs: Vec::new(),
            viterbi: ViterbiScratch::default(),
            group: GroupBuffer::new(),
            rx_maps: Vec::new(),
        }
    }
}

impl PhyScratch {
    /// Index of the cached scatter map for `(modulation, rate)`,
    /// building it on first use. A linear scan suffices: at most seven
    /// combinations exist (one per [`Mcs`]), and steady-state frames
    /// hit the cache every section.
    fn rx_map_index(&mut self, modulation: Modulation, rate: CodeRate) -> usize {
        if let Some(i) = self
            .rx_maps
            .iter()
            .position(|(m, r, _)| *m == modulation && *r == rate)
        {
            return i;
        }
        self.rx_maps
            // lint:allow(hot-alloc): one map per (modulation, rate) pair, cached across frames
            .push((
                modulation,
                rate,
                RxSymbolMap::new(modulation, rate, NUM_DATA),
            ));
        self.rx_maps.len() - 1
    }
}

/// Stepwise PPDU decoder.
///
/// Mirrors a Carpool station's receive flow: construct it on the sample
/// buffer (this consumes the preamble and derives the initial channel
/// estimate), then alternate [`FrameDecoder::decode_section`] and
/// [`FrameDecoder::skip_section`] as the frame structure reveals itself.
///
/// # Examples
///
/// ```
/// use carpool_phy::mcs::Mcs;
/// use carpool_phy::rx::{Estimation, FrameDecoder, SectionLayout};
/// use carpool_phy::tx::{transmit, SectionSpec};
///
/// # fn main() -> Result<(), carpool_phy::PhyError> {
/// let specs = vec![
///     SectionSpec::header(vec![1; 48]),
///     SectionSpec::payload(vec![0, 1, 1, 0], Mcs::QPSK_1_2),
/// ];
/// let tx = transmit(&specs)?;
/// let mut dec = FrameDecoder::new(&tx.samples, Estimation::Standard)?;
/// let hdr = dec.decode_section(&SectionLayout::of(&specs[0]))?;
/// assert_eq!(hdr.bits, specs[0].bits);
/// dec.skip_section(&SectionLayout::of(&specs[1]))?; // not our subframe
/// # Ok(())
/// # }
/// ```
pub struct FrameDecoder<'a> {
    samples: &'a [Complex64],
    estimator: Estimator,
    initial: ChannelEstimate,
    symbol_index: usize,
    sample_pos: usize,
    prev_phase: f64,
    noise_var: f64,
    soft_decoding: bool,
    obs: Obs,
    scratch: PhyScratch,
}

impl<'a> FrameDecoder<'a> {
    /// Consumes the preamble of `samples` and prepares for decoding.
    ///
    /// # Errors
    ///
    /// Returns [`PhyError::LengthMismatch`] if the buffer cannot even
    /// hold a preamble.
    pub fn new(samples: &'a [Complex64], estimation: Estimation) -> Result<Self, PhyError> {
        if samples.len() < PREAMBLE_LEN {
            return Err(PhyError::LengthMismatch {
                expected: PREAMBLE_LEN,
                actual: samples.len(),
            });
        }
        let [l1, l2] = ltf_offsets();
        let initial =
            ChannelEstimate::from_ltf(&samples[l1..l1 + SYMBOL_LEN], &samples[l2..l2 + SYMBOL_LEN]);
        let noise_var =
            estimate_noise_from_ltf(&samples[l1..l1 + SYMBOL_LEN], &samples[l2..l2 + SYMBOL_LEN]);
        let estimator = match estimation {
            Estimation::Standard => Estimator::Fixed,
            Estimation::Rte(rule) => Estimator::Rte(RteEstimator::new(initial.clone(), rule)),
        };
        Ok(FrameDecoder {
            samples,
            estimator,
            initial,
            symbol_index: 0,
            sample_pos: PREAMBLE_LEN,
            prev_phase: 0.0,
            noise_var,
            soft_decoding: false,
            obs: Obs::noop(),
            scratch: PhyScratch::default(),
        })
    }

    /// Installs a recycled [`PhyScratch`] (e.g. from a previous frame's
    /// [`FrameDecoder::into_scratch`]) so repeated frame decodes reuse
    /// their buffers instead of re-allocating them.
    pub fn with_scratch(mut self, scratch: PhyScratch) -> Self {
        self.scratch = scratch;
        self
    }

    /// Consumes the decoder and returns its scratch workspace for reuse.
    pub fn into_scratch(self) -> PhyScratch {
        self.scratch
    }

    /// Attaches an observability handle. When enabled, the decoder emits
    /// per-group [`Event::SideCrc`] verdicts, per-symbol
    /// [`Event::RteUpdate`] decisions (RTE mode only), equalizer
    /// re-anchor events, and `phy.decode` / `phy.viterbi` timing spans.
    /// The timestamp on PHY events is the OFDM symbol index.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Enables soft-decision (LLR) Viterbi decoding of payload bits,
    /// using the noise variance estimated from the LTF pair and the
    /// per-carrier noise amplification of zero-forcing equalisation.
    /// Per-symbol CRC checking and RTE gating still use hard decisions.
    pub fn with_soft_decoding(mut self, enabled: bool) -> Self {
        self.soft_decoding = enabled;
        self
    }

    /// The noise variance estimated from the two LTF repetitions.
    pub fn noise_variance(&self) -> f64 {
        self.noise_var
    }

    /// The LTF-derived estimate captured at construction.
    pub fn initial_estimate(&self) -> &ChannelEstimate {
        &self.initial
    }

    /// Index of the next payload OFDM symbol to be processed.
    pub fn position(&self) -> usize {
        self.symbol_index
    }

    /// Remaining OFDM symbols available in the buffer.
    pub fn remaining_symbols(&self) -> usize {
        (self.samples.len() - self.sample_pos) / SYMBOL_LEN
    }

    fn ensure_available(&self, symbols: usize) -> Result<(), PhyError> {
        let needed = self.sample_pos + symbols * SYMBOL_LEN;
        if self.samples.len() < needed {
            return Err(PhyError::LengthMismatch {
                expected: needed,
                actual: self.samples.len(),
            });
        }
        Ok(())
    }

    /// Classifies the next symbol's format without consuming it:
    /// `true` if its data constellation sits on the imaginary axis
    /// (QBPSK — a Carpool A-HDR), `false` for a legacy real-axis SIG.
    /// This is how a Carpool node tells Carpool PPDUs from legacy ones
    /// (paper Section 4.3).
    ///
    /// # Errors
    ///
    /// Returns [`PhyError::LengthMismatch`] if no symbol remains.
    pub fn peek_is_qbpsk(&self) -> Result<bool, PhyError> {
        self.ensure_available(1)?;
        let raw = demodulate_symbol(&self.samples[self.sample_pos..self.sample_pos + SYMBOL_LEN])
            .map_err(PhyError::Fft)?;
        let mut eq = self.estimator.current(&self.initial).equalize(&raw);
        let track = track_phase(&eq, self.symbol_index);
        compensate_phase(&mut eq, track.offset);
        let (mut re, mut im) = (0.0f64, 0.0f64);
        for p in &eq.data {
            re += p.re * p.re;
            im += p.im * p.im;
        }
        Ok(im > re)
    }

    /// Skips a section without demodulating its payload — what a Carpool
    /// station does with subframes destined to other receivers. Only the
    /// symbol/sample cursors advance; the channel estimator and the
    /// side-channel phase reference are *not* updated (the station can
    /// power down its decode path, paper Section 8).
    ///
    /// # Errors
    ///
    /// Returns [`PhyError::LengthMismatch`] if the buffer is too short.
    pub fn skip_section(&mut self, layout: &SectionLayout) -> Result<(), PhyError> {
        let n = layout.symbol_count();
        self.ensure_available(n)?;
        self.symbol_index += n;
        self.sample_pos += n * SYMBOL_LEN;
        // Re-anchor the differential phase reference on the next decoded
        // symbol rather than across the gap.
        self.prev_phase = f64::NAN;
        if self.obs.enabled() {
            self.obs.counter("phy.eq_reset", 1);
            self.obs.emit(
                self.symbol_index as f64, // lint:allow(as-cast): symbol count to f64, exact below 2^53
                Event::EqualizerReset {
                    symbol: self.symbol_index as u64, // lint:allow(as-cast): small index/count widens to u64
                },
            );
        }
        Ok(())
    }

    /// Decodes the next section according to `layout`.
    ///
    /// # Errors
    ///
    /// Returns [`PhyError::LengthMismatch`] if the buffer is too short.
    pub fn decode_section(&mut self, layout: &SectionLayout) -> Result<RxSection, PhyError> {
        let num_symbols = layout.symbol_count();
        self.ensure_available(num_symbols)?;
        // Split `self` into disjoint field borrows: the span guard and
        // counters only borrow `obs`, so the estimator and scratch can be
        // updated inside the symbol loop without cloning the handle.
        let FrameDecoder {
            samples,
            estimator,
            initial,
            symbol_index,
            sample_pos,
            prev_phase,
            noise_var,
            soft_decoding,
            obs,
            scratch,
        } = self;
        let _decode_span = obs.span(carpool_obs::names::PHY_DECODE);
        let modulation = layout.mcs.modulation;
        let rate = layout.mcs.code_rate;
        let n_cbps = layout.mcs.coded_bits_per_symbol();
        let bits_per_point = modulation.bits_per_symbol();
        // Fused demap→deinterleave→depuncture: the symbol loop scatters
        // quantized integer levels straight into the Viterbi lattice via
        // the per-MCS map; coded bits beyond `usable` (and puncture
        // holes) stay at the lattice's pre-zeroed erasure value.
        let usable = coded_len(layout.message_bits, rate);
        let total_in = layout.message_bits + CONSTRAINT_LENGTH - 1;
        let map_idx = scratch.rx_map_index(modulation, rate);

        let mut raw_symbol_bits = Vec::with_capacity(num_symbols); // lint:allow(hot-alloc): per-frame decode buffers, pre-sized from SIG fields
        let mut phase_offsets = Vec::with_capacity(num_symbols); // lint:allow(hot-alloc): per-frame decode buffers, pre-sized from SIG fields
        let mut crc_ok = Vec::new(); // lint:allow(hot-alloc): per-frame decode buffers, pre-sized from SIG fields
        let mut side_values = Vec::new(); // lint:allow(hot-alloc): per-frame decode buffers, pre-sized from SIG fields

        // One symbol's worth of LLRs, sized once per section.
        if *soft_decoding {
            scratch.llrs.clear();
            scratch.llrs.resize(n_cbps, 0.0); // lint:allow(hot-alloc): per-frame decode buffers, pre-sized from SIG fields
        }
        let lattice = scratch.viterbi.lattice_mut(total_in);

        let group = &mut scratch.group;
        group.clear();
        let bits_per = layout
            .side_channel
            .map(|sc| sc.modulation.bits_per_symbol())
            .unwrap_or(0);

        for k in 0..num_symbols {
            demodulate_symbol_into(
                &samples[*sample_pos..*sample_pos + SYMBOL_LEN],
                &mut scratch.fft_bins,
                &mut scratch.raw,
            )
            .map_err(PhyError::Fft)?;
            *sample_pos += SYMBOL_LEN;
            let idx = *symbol_index + k;

            estimator
                .current(initial)
                .equalize_into(&scratch.raw, &mut scratch.eq);
            let track = track_phase(&scratch.eq, idx);
            compensate_phase(&mut scratch.eq, track.offset);
            phase_offsets.push(track.offset);
            if layout.qbpsk {
                // Undo the format mark on the data subcarriers.
                for p in &mut scratch.eq.data {
                    *p *= -Complex64::I;
                }
            }

            let hard = modulation.demap_all(&scratch.eq.data);
            debug_assert_eq!(hard.len(), n_cbps);

            // Soft path: per-carrier LLRs with ZF noise amplification
            // (noise variance on carrier c grows by 1/|H_c|^2).
            if *soft_decoding {
                let estimate = estimator.current(initial);
                for ((slot, point), carrier) in scratch
                    .llrs
                    .chunks_exact_mut(bits_per_point)
                    .zip(&scratch.eq.data)
                    .zip(DATA_CARRIERS)
                {
                    let gain = estimate.at(carrier).norm_sqr().max(1e-9);
                    modulation.demap_soft_slice(*point, *noise_var / gain, slot);
                }
            }

            if let Some(sc) = &layout.side_channel {
                // Differential decode relative to the previous symbol.
                // After a skip the reference is re-anchored, so the first
                // symbol only establishes it (its value is best-effort 0).
                let value = if prev_phase.is_nan() {
                    0
                } else {
                    sc.modulation.demodulate(track.offset - *prev_phase)
                };
                side_values.push(value);

                // Buffer the group for CRC check and RTE update. The RTE
                // update uses the *raw* symbol with the tracked common
                // phase removed, keeping the preamble phase convention.
                let mut compensated_raw = group.spare_syms.pop().unwrap_or_else(FreqSymbol::zeroed);
                compensated_raw.data.clear();
                compensated_raw.data.extend_from_slice(&scratch.raw.data);
                compensated_raw.pilots = scratch.raw.pilots;
                compensate_phase(&mut compensated_raw, track.offset);
                let mut decided = group.spare_points.pop().unwrap_or_default();
                decided.clear();
                layout.mcs.modulation.map_all_into(&hard, &mut decided);
                group.bits.extend_from_slice(&hard);
                group.side_values.push(value);
                group.compensated.push(compensated_raw);
                group.decided.push(decided);
                group.indices.push(idx);

                let group_full = group.indices.len() == sc.group_symbols;
                let last_symbol = k == num_symbols - 1;
                if group_full || last_symbol {
                    let crc = sc.crc_for_group(group.indices.len());
                    let mut checksum = 0u64;
                    for (j, &v) in group.side_values.iter().enumerate() {
                        checksum |= u64::from(v) << (j * bits_per);
                    }
                    // Mask to CRC width (a partial tail group carries a
                    // narrower checksum).
                    let width = usize::from(crc.width());
                    // lint:allow(as-cast): masked to the CRC width (at most 8 bits), fits u8
                    let checksum = (checksum & ((1u64 << width) - 1)) as u8;
                    let ok = crc.verify(&group.bits, checksum);
                    for _ in 0..group.indices.len() {
                        crc_ok.push(ok);
                    }
                    if obs.enabled() {
                        let group_id = group.indices[0] as u64; // lint:allow(as-cast): small index/count widens to u64
                        obs.counter(
                            if ok {
                                "phy.side_crc_ok"
                            } else {
                                "phy.side_crc_fail"
                            },
                            1,
                        );
                        obs.emit(
                            idx as f64, // lint:allow(as-cast): symbol count to f64, exact below 2^53
                            Event::SideCrc {
                                group: group_id,
                                ok,
                            },
                        );
                        obs.trace(
                            TraceKind::SideCrc,
                            symbol_time(idx),
                            group_id,
                            u64::from(ok),
                        );
                    }
                    if ok {
                        for ((rx_sym, decided), sym_idx) in group
                            .compensated
                            .iter()
                            .zip(&group.decided)
                            .zip(&group.indices)
                        {
                            if obs.enabled() {
                                let before = estimator.rte_counters();
                                estimator.update(rx_sym, decided, *sym_idx);
                                if let (Some((b, _)), Some((a, _))) =
                                    (before, estimator.rte_counters())
                                {
                                    let applied = a > b;
                                    obs.counter(
                                        if applied {
                                            "phy.rte_applied"
                                        } else {
                                            "phy.rte_rejected"
                                        },
                                        1,
                                    );
                                    let symbol = *sym_idx as u64; // lint:allow(as-cast): small index/count widens to u64
                                    obs.emit(*sym_idx as f64, Event::RteUpdate { symbol, applied }); // lint:allow(as-cast): symbol count to f64, exact below 2^53
                                    obs.trace(
                                        TraceKind::RteRecal,
                                        symbol_time(*sym_idx),
                                        symbol,
                                        u64::from(applied),
                                    );
                                }
                            } else {
                                estimator.update(rx_sym, decided, *sym_idx);
                            }
                        }
                    } else if obs.enabled() {
                        // A failed group CRC vetoes every candidate update
                        // in the group (paper Section 5 gating).
                        if estimator.rte_counters().is_some() {
                            for &sym_idx in &group.indices {
                                let symbol = sym_idx as u64; // lint:allow(as-cast): small index/count widens to u64
                                obs.counter("phy.rte_rejected", 1);
                                obs.emit(
                                    sym_idx as f64, // lint:allow(as-cast): symbol count to f64, exact below 2^53
                                    Event::RteUpdate {
                                        symbol,
                                        applied: false,
                                    },
                                );
                                obs.trace(TraceKind::RteRecal, symbol_time(sym_idx), symbol, 0);
                            }
                        }
                    }
                    group.clear();
                }
            }

            *prev_phase = track.offset;
            // Scatter this symbol's coded bits into the trellis lattice.
            let sc_map = &scratch.rx_maps[map_idx].2;
            let limit = n_cbps.min(usable.saturating_sub(k * n_cbps));
            let sym_lattice = &mut lattice[k * sc_map.flat_per_symbol()..];
            if *soft_decoding {
                sc_map.scatter_soft(&scratch.llrs, limit, sym_lattice);
            } else {
                sc_map.scatter_hard(&hard, limit, sym_lattice);
            }
            raw_symbol_bits.push(hard);
        }
        *symbol_index += num_symbols;
        obs.counter("phy.symbols_decoded", num_symbols as u64); // lint:allow(as-cast): small index/count widens to u64
        obs.counter("phy.sections_decoded", 1);

        // FEC decode and descramble.
        let mut bits = {
            let _viterbi_span = obs.span(carpool_obs::names::PHY_VITERBI);
            decode_prepared(layout.message_bits, &mut scratch.viterbi)
        };
        if layout.scramble {
            Scrambler::default().scramble_in_place(&mut bits);
        }

        Ok(RxSection {
            bits,
            raw_symbol_bits,
            crc_ok,
            side_values,
            phase_offsets,
        })
    }
}

/// Sim-time stamp of payload symbol `idx` for flight-recorder records.
fn symbol_time(idx: usize) -> f64 {
    // lint:allow(as-cast): symbol indices are far below 2^52, conversion exact
    idx as f64 * SYMBOL_DURATION
}

/// Receives and decodes a PPDU whose full section layout is known.
///
/// # Errors
///
/// * [`PhyError::LengthMismatch`] if `samples` is shorter than the
///   preamble plus the symbols implied by `layouts`.
/// * [`PhyError::EmptyFrame`] if `layouts` is empty.
///
/// # Examples
///
/// ```
/// use carpool_phy::mcs::Mcs;
/// use carpool_phy::rx::{receive, Estimation, SectionLayout};
/// use carpool_phy::tx::{transmit, SectionSpec};
///
/// # fn main() -> Result<(), carpool_phy::PhyError> {
/// let spec = SectionSpec::payload(vec![1, 0, 1, 1, 0, 0, 1, 0], Mcs::QPSK_1_2);
/// let frame = transmit(std::slice::from_ref(&spec))?;
/// let rx = receive(&frame.samples, &[SectionLayout::of(&spec)], Estimation::Standard)?;
/// assert_eq!(rx.sections[0].bits, spec.bits);
/// # Ok(())
/// # }
/// ```
pub fn receive(
    samples: &[Complex64],
    layouts: &[SectionLayout],
    estimation: Estimation,
) -> Result<RxFrame, PhyError> {
    receive_with(samples, layouts, estimation, false)
}

/// [`receive`] with soft-decision Viterbi decoding of the payloads.
///
/// # Errors
///
/// Same as [`receive`].
pub fn receive_soft(
    samples: &[Complex64],
    layouts: &[SectionLayout],
    estimation: Estimation,
) -> Result<RxFrame, PhyError> {
    receive_with(samples, layouts, estimation, true)
}

fn receive_with(
    samples: &[Complex64],
    layouts: &[SectionLayout],
    estimation: Estimation,
    soft: bool,
) -> Result<RxFrame, PhyError> {
    if layouts.is_empty() {
        return Err(PhyError::EmptyFrame);
    }
    let total_symbols: usize = layouts.iter().map(|l| l.symbol_count()).sum();
    let needed = PREAMBLE_LEN + total_symbols * SYMBOL_LEN;
    if samples.len() < needed {
        return Err(PhyError::LengthMismatch {
            expected: needed,
            actual: samples.len(),
        });
    }
    let mut decoder = FrameDecoder::new(samples, estimation)?.with_soft_decoding(soft);
    let mut sections = Vec::with_capacity(layouts.len()); // lint:allow(hot-alloc): per-frame decode buffers, pre-sized from SIG fields
    for layout in layouts {
        sections.push(decoder.decode_section(layout)?);
    }
    // The decoder is done: move the estimate out instead of cloning it.
    Ok(RxFrame {
        sections,
        initial_estimate: decoder.initial,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::bit_error_rate;
    use crate::tx::transmit;

    fn round_trip(spec: SectionSpec, estimation: Estimation) -> RxFrame {
        let frame = transmit(std::slice::from_ref(&spec)).unwrap();
        receive(&frame.samples, &[SectionLayout::of(&spec)], estimation).unwrap()
    }

    fn pattern_bits(n: usize) -> Vec<u8> {
        (0..n).map(|k| ((k * 7 + k / 3) % 5 < 2) as u8).collect()
    }

    #[test]
    fn clean_channel_round_trip_all_mcs() {
        for mcs in Mcs::ALL {
            let spec = SectionSpec::payload(pattern_bits(600), mcs);
            let rx = round_trip(spec.clone(), Estimation::Standard);
            assert_eq!(rx.sections[0].bits, spec.bits, "{mcs}");
        }
    }

    #[test]
    fn clean_channel_round_trip_with_rte() {
        let spec = SectionSpec::payload(pattern_bits(800), Mcs::QAM64_3_4);
        let rx = round_trip(spec.clone(), Estimation::Rte(CalibrationRule::Average));
        assert_eq!(rx.sections[0].bits, spec.bits);
        // All symbol CRCs pass on a clean channel.
        assert!(rx.sections[0].crc_ok.iter().all(|&ok| ok));
    }

    #[test]
    fn side_channel_values_match_transmitter() {
        let spec = SectionSpec::payload(pattern_bits(1000), Mcs::QPSK_1_2);
        let frame = transmit(std::slice::from_ref(&spec)).unwrap();
        let rx = receive(
            &frame.samples,
            &[SectionLayout::of(&spec)],
            Estimation::Standard,
        )
        .unwrap();
        assert_eq!(rx.sections[0].side_values, frame.sections[0].side_values);
    }

    #[test]
    fn raw_symbol_bits_match_on_clean_channel() {
        let spec = SectionSpec::payload(pattern_bits(500), Mcs::QAM16_3_4);
        let frame = transmit(std::slice::from_ref(&spec)).unwrap();
        let rx = receive(
            &frame.samples,
            &[SectionLayout::of(&spec)],
            Estimation::Standard,
        )
        .unwrap();
        for (tx_bits, rx_bits) in frame.sections[0]
            .symbol_bits
            .iter()
            .zip(&rx.sections[0].raw_symbol_bits)
        {
            assert_eq!(bit_error_rate(tx_bits, rx_bits), 0.0);
        }
    }

    #[test]
    fn multi_section_frames_decode() {
        let specs = vec![
            SectionSpec::header(pattern_bits(48)),
            SectionSpec::payload(pattern_bits(400), Mcs::QPSK_3_4),
            SectionSpec::header(pattern_bits(24)),
            SectionSpec::payload(pattern_bits(700), Mcs::QAM64_2_3),
        ];
        let frame = transmit(&specs).unwrap();
        let layouts: Vec<SectionLayout> = specs.iter().map(SectionLayout::of).collect();
        let rx = receive(&frame.samples, &layouts, Estimation::Standard).unwrap();
        for (spec, sec) in specs.iter().zip(&rx.sections) {
            assert_eq!(sec.bits, spec.bits);
        }
    }

    #[test]
    fn skipping_sections_still_decodes_later_ones() {
        let specs = vec![
            SectionSpec::header(pattern_bits(48)),
            SectionSpec::payload(pattern_bits(900), Mcs::QAM16_1_2),
            SectionSpec::payload(pattern_bits(300), Mcs::QPSK_1_2),
        ];
        let frame = transmit(&specs).unwrap();
        let mut dec = FrameDecoder::new(&frame.samples, Estimation::Standard).unwrap();
        let hdr = dec.decode_section(&SectionLayout::of(&specs[0])).unwrap();
        assert_eq!(hdr.bits, specs[0].bits);
        dec.skip_section(&SectionLayout::of(&specs[1])).unwrap();
        let last = dec.decode_section(&SectionLayout::of(&specs[2])).unwrap();
        assert_eq!(last.bits, specs[2].bits);
    }

    #[test]
    fn decoder_position_tracks_symbols() {
        let specs = vec![
            SectionSpec::header(pattern_bits(48)),
            SectionSpec::payload(pattern_bits(300), Mcs::QPSK_1_2),
        ];
        let frame = transmit(&specs).unwrap();
        let mut dec = FrameDecoder::new(&frame.samples, Estimation::Standard).unwrap();
        assert_eq!(dec.position(), 0);
        dec.decode_section(&SectionLayout::of(&specs[0])).unwrap();
        assert_eq!(dec.position(), SectionLayout::of(&specs[0]).symbol_count());
        assert_eq!(
            dec.remaining_symbols(),
            SectionLayout::of(&specs[1]).symbol_count()
        );
    }

    #[test]
    fn legacy_sections_have_no_side_diagnostics() {
        let spec = SectionSpec::payload_legacy(pattern_bits(200), Mcs::QPSK_1_2);
        let rx = round_trip(spec, Estimation::Standard);
        assert!(rx.sections[0].side_values.is_empty());
        assert!(rx.sections[0].crc_ok.is_empty());
    }

    #[test]
    fn truncated_samples_error() {
        let spec = SectionSpec::payload(pattern_bits(300), Mcs::QPSK_1_2);
        let frame = transmit(std::slice::from_ref(&spec)).unwrap();
        let err = receive(
            &frame.samples[..frame.samples.len() - 10],
            &[SectionLayout::of(&spec)],
            Estimation::Standard,
        )
        .unwrap_err();
        assert!(matches!(err, PhyError::LengthMismatch { .. }));
    }

    #[test]
    fn empty_layout_error() {
        assert!(matches!(
            receive(&[], &[], Estimation::Standard),
            Err(PhyError::EmptyFrame)
        ));
    }

    #[test]
    fn short_buffer_rejected_by_decoder() {
        let err = FrameDecoder::new(&[Complex64::ZERO; 100], Estimation::Standard)
            .err()
            .unwrap();
        assert!(matches!(err, PhyError::LengthMismatch { .. }));
    }

    #[test]
    fn qbpsk_header_round_trips_and_classifies() {
        let specs = vec![
            SectionSpec::header_qbpsk(pattern_bits(48)),
            SectionSpec::header(pattern_bits(24)), // a SIG-like BPSK field
            SectionSpec::payload(pattern_bits(300), Mcs::QPSK_1_2),
        ];
        let frame = transmit(&specs).unwrap();
        let mut dec = FrameDecoder::new(&frame.samples, Estimation::Standard).unwrap();
        assert!(dec.peek_is_qbpsk().unwrap(), "A-HDR must look like QBPSK");
        let hdr = dec.decode_section(&SectionLayout::of(&specs[0])).unwrap();
        assert_eq!(hdr.bits, specs[0].bits);
        // The next BPSK field reads as real-axis (the axis test is only
        // meaningful on BPSK symbols — SIG vs A-HDR, as in 802.11n).
        assert!(!dec.peek_is_qbpsk().unwrap());
        for spec in &specs[1..] {
            let section = dec.decode_section(&SectionLayout::of(spec)).unwrap();
            assert_eq!(section.bits, spec.bits);
        }
    }

    #[test]
    fn legacy_frame_classifies_as_legacy() {
        let specs = vec![SectionSpec::header(pattern_bits(24))];
        let frame = transmit(&specs).unwrap();
        let dec = FrameDecoder::new(&frame.samples, Estimation::Standard).unwrap();
        assert!(!dec.peek_is_qbpsk().unwrap());
    }

    #[test]
    fn soft_decoding_round_trips_on_clean_channel() {
        for mcs in [Mcs::BPSK_1_2, Mcs::QAM16_3_4, Mcs::QAM64_2_3] {
            let spec = SectionSpec::payload(pattern_bits(500), mcs);
            let frame = transmit(std::slice::from_ref(&spec)).unwrap();
            let rx = receive_soft(
                &frame.samples,
                &[SectionLayout::of(&spec)],
                Estimation::Standard,
            )
            .unwrap();
            assert_eq!(rx.sections[0].bits, spec.bits, "{mcs}");
        }
    }

    #[test]
    fn noise_variance_is_near_zero_on_clean_channel() {
        let spec = SectionSpec::payload(pattern_bits(100), Mcs::QPSK_1_2);
        let frame = transmit(std::slice::from_ref(&spec)).unwrap();
        let dec = FrameDecoder::new(&frame.samples, Estimation::Standard).unwrap();
        assert!(dec.noise_variance() < 1e-12, "{}", dec.noise_variance());
    }

    #[test]
    fn obs_captures_crc_and_rte_decisions() {
        use carpool_obs::{MemoryRecorder, Obs, RingBufferSink};
        use std::sync::Arc;

        let spec = SectionSpec::payload(pattern_bits(800), Mcs::QPSK_1_2);
        let frame = transmit(std::slice::from_ref(&spec)).unwrap();
        let recorder = Arc::new(MemoryRecorder::new());
        let sink = Arc::new(RingBufferSink::new(4096));
        let obs = Obs::new(recorder.clone(), sink.clone());

        let mut dec = FrameDecoder::new(&frame.samples, Estimation::Rte(CalibrationRule::Average))
            .unwrap()
            .with_obs(obs);
        let layout = SectionLayout::of(&spec);
        let rx = dec.decode_section(&layout).unwrap();
        assert_eq!(rx.bits, spec.bits);

        let snap = recorder.snapshot();
        // Clean channel: every group CRC passes, no failures.
        assert_eq!(snap.counter("phy.side_crc_fail"), 0);
        assert!(snap.counter("phy.side_crc_ok") > 0);
        assert_eq!(
            snap.counter("phy.symbols_decoded"),
            layout.symbol_count() as u64
        );
        assert_eq!(snap.counter("phy.sections_decoded"), 1);
        // Every symbol's RTE decision was observed (applied or gated).
        assert_eq!(
            snap.counter("phy.rte_applied") + snap.counter("phy.rte_rejected"),
            layout.symbol_count() as u64
        );
        assert!(snap.histogram("span.phy.decode").is_some());
        assert!(snap.histogram("span.phy.viterbi").is_some());

        let events = sink.events();
        let crc_events = events
            .iter()
            .filter(|e| matches!(e.event, carpool_obs::Event::SideCrc { .. }))
            .count();
        assert!(crc_events > 0);
        let rte_events = events
            .iter()
            .filter(|e| matches!(e.event, carpool_obs::Event::RteUpdate { .. }))
            .count();
        assert_eq!(rte_events, layout.symbol_count());
    }

    #[test]
    fn obs_skip_emits_equalizer_reset() {
        use carpool_obs::{Obs, RingBufferSink};
        use std::sync::Arc;

        let specs = vec![
            SectionSpec::header(pattern_bits(48)),
            SectionSpec::payload(pattern_bits(300), Mcs::QPSK_1_2),
        ];
        let frame = transmit(&specs).unwrap();
        let sink = Arc::new(RingBufferSink::new(64));
        let mut dec = FrameDecoder::new(&frame.samples, Estimation::Standard)
            .unwrap()
            .with_obs(Obs::with_sink(sink.clone()));
        dec.skip_section(&SectionLayout::of(&specs[0])).unwrap();
        assert!(sink
            .events()
            .iter()
            .any(|e| matches!(e.event, carpool_obs::Event::EqualizerReset { .. })));
    }

    #[test]
    fn group_of_two_symbols_checks_out() {
        let sc = SideChannelConfig {
            modulation: crate::sidechannel::PhaseOffsetMod::TwoBit,
            group_symbols: 2,
        };
        let spec = SectionSpec {
            bits: pattern_bits(700),
            mcs: Mcs::QPSK_1_2,
            scramble: true,
            side_channel: Some(sc),
            qbpsk: false,
        };
        let rx = round_trip(spec.clone(), Estimation::Rte(CalibrationRule::Average));
        assert_eq!(rx.sections[0].bits, spec.bits);
        assert!(rx.sections[0].crc_ok.iter().all(|&ok| ok));
    }
}
