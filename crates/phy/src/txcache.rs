//! Process-wide memoization of transmitted waveforms.
//!
//! The paper's evaluation sweeps BER across SNR points (Figs. 3/12/15
//! territory) where the *transmitted* frame per trial is identical at
//! every sweep point — only the channel and receiver differ. [`transmit`]
//! is a pure function of its [`SectionSpec`] list, so re-encoding the
//! same payload at each SNR is wasted work. This cache memoizes the
//! encoded [`TxFrame`] keyed by the full spec list and hands out shared
//! [`Arc`] clones.
//!
//! # Determinism
//!
//! A cache hit returns a frame that is *the same value* the transmitter
//! would have produced (the key is the complete input of the pure
//! `transmit` call), so every consumer — including the parallel
//! Monte-Carlo driver, whose per-trial randomness lives entirely in the
//! trial-seeded channel — produces byte-identical results with the cache
//! on or off, at any thread count.
//!
//! # Escape hatches
//!
//! The cache can be disabled for a whole process with the CLI flag
//! `--no-tx-cache`, the environment variable `CARPOOL_NO_TX_CACHE=1`, or
//! programmatically via [`set_enabled`]; [`stats`] exposes hit/miss
//! counters so benches can report the hit rate instead of asserting it.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

use carpool_obs::{names, Obs};

use crate::tx::{transmit, SectionSpec, TxFrame};
use crate::PhyError;

/// Upper bound on retained waveforms. Sweeps reuse a handful of distinct
/// specs per process; the bound only exists so a pathological caller
/// cannot grow the cache without limit. Eviction is oldest-first.
pub(crate) const MAX_ENTRIES: usize = 8;

/// Cached (spec list → encoded frame) pairs. Lookup is a linear scan
/// with full structural equality — at most [`MAX_ENTRIES`] comparisons,
/// each a cheap length/discriminant check before the payload memcmp —
/// so no `Hash` requirement leaks into the TX types.
static CACHE: Mutex<Vec<(Vec<SectionSpec>, Arc<TxFrame>)>> = Mutex::new(Vec::new());

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);

/// Runtime override: 0 = follow the environment default, 1 = forced on,
/// 2 = forced off.
static OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Environment default, read once per process.
static ENV_DEFAULT: OnceLock<bool> = OnceLock::new();

fn env_default() -> bool {
    *ENV_DEFAULT.get_or_init(|| {
        !matches!(
            std::env::var("CARPOOL_NO_TX_CACHE").as_deref(),
            Ok("1") | Ok("true") | Ok("yes")
        )
    })
}

/// Recover the cache guard even if a prior holder panicked: the stored
/// pairs are only ever inserted whole, so a poisoned lock still guards
/// consistent data.
fn lock_cache() -> MutexGuard<'static, Vec<(Vec<SectionSpec>, Arc<TxFrame>)>> {
    match CACHE.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Whether `transmit_cached` currently memoizes. Defaults to on unless
/// `CARPOOL_NO_TX_CACHE=1` is set; [`set_enabled`] wins over both.
pub fn is_enabled() -> bool {
    match OVERRIDE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => env_default(),
    }
}

/// Force the cache on or off for the rest of the process (the CLI's
/// `--no-tx-cache` lands here). Takes precedence over the environment.
pub fn set_enabled(on: bool) {
    OVERRIDE.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

/// Drops any [`set_enabled`] override, returning control to the
/// `CARPOOL_NO_TX_CACHE` environment default. Tests that toggle the
/// cache restore the ambient configuration with this.
pub fn clear_override() {
    OVERRIDE.store(0, Ordering::Relaxed);
}

/// Snapshot of the process-wide hit/miss counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TxCacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that ran the full transmitter (including cache-disabled
    /// calls, which are misses by definition).
    pub misses: u64,
}

impl TxCacheStats {
    /// Hits as a fraction of all lookups (0 when there were none).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            // lint:allow(as-cast): counters to f64 for a display ratio
            self.hits as f64 / total as f64
        }
    }
}

/// Current hit/miss counters.
pub fn stats() -> TxCacheStats {
    TxCacheStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
    }
}

/// Drops every cached waveform and zeroes the counters. Benches call
/// this before timed sections so hit rates describe one workload.
pub fn reset() {
    lock_cache().clear();
    HITS.store(0, Ordering::Relaxed);
    MISSES.store(0, Ordering::Relaxed);
}

/// [`transmit`], memoized. Returns a shared handle to the encoded frame;
/// repeated calls with an equal `sections` list reuse the first result.
///
/// # Errors
///
/// Exactly the errors of [`transmit`]; failed encodes are never cached.
pub fn transmit_cached(sections: &[SectionSpec], obs: &Obs) -> Result<Arc<TxFrame>, PhyError> {
    if is_enabled() {
        if let Some(frame) = lookup(sections) {
            HITS.fetch_add(1, Ordering::Relaxed);
            obs.counter(names::TX_CACHE_HIT, 1);
            return Ok(frame);
        }
    }
    let frame = Arc::new(transmit(sections)?);
    MISSES.fetch_add(1, Ordering::Relaxed);
    obs.counter(names::TX_CACHE_MISS, 1);
    if is_enabled() {
        insert(sections, Arc::clone(&frame));
    }
    Ok(frame)
}

fn lookup(sections: &[SectionSpec]) -> Option<Arc<TxFrame>> {
    let cache = lock_cache();
    cache
        .iter()
        .find(|(key, _)| key.as_slice() == sections)
        .map(|(_, frame)| Arc::clone(frame))
}

fn insert(sections: &[SectionSpec], frame: Arc<TxFrame>) {
    let mut cache = lock_cache();
    // A racing encoder may have inserted the same key between our lookup
    // and now; keep the first entry so handles stay shared.
    if cache.iter().any(|(key, _)| key.as_slice() == sections) {
        return;
    }
    if cache.len() >= MAX_ENTRIES {
        cache.remove(0);
    }
    cache.push((sections.to_vec(), frame)); // lint:allow(hot-alloc): cache-fill copy, once per (frame, config) key
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mcs::Mcs;

    /// The cache and its counters are process-wide; tests that touch
    /// them serialize here and restore the default state on drop.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    struct CacheSession(#[allow(dead_code)] MutexGuard<'static, ()>);

    impl CacheSession {
        fn start() -> CacheSession {
            let guard = match TEST_LOCK.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            set_enabled(true);
            reset();
            CacheSession(guard)
        }
    }

    impl Drop for CacheSession {
        fn drop(&mut self) {
            reset();
            clear_override();
        }
    }

    fn spec(seed: u8) -> SectionSpec {
        SectionSpec::payload(vec![seed & 1; 64], Mcs::QPSK_1_2)
    }

    #[test]
    fn hit_returns_the_identical_frame() {
        let _session = CacheSession::start();
        let obs = Obs::noop();
        let s = [spec(1)];
        let first = transmit_cached(&s, &obs).expect("valid spec");
        let second = transmit_cached(&s, &obs).expect("valid spec");
        assert!(Arc::ptr_eq(&first, &second), "hit must share the encode");
        assert_eq!(stats(), TxCacheStats { hits: 1, misses: 1 });
        let direct = transmit(&s).expect("valid spec");
        assert_eq!(*first, direct, "cached frame must equal a fresh encode");
    }

    #[test]
    fn different_specs_do_not_collide() {
        let _session = CacheSession::start();
        let obs = Obs::noop();
        let a = transmit_cached(&[spec(0)], &obs).expect("valid spec");
        let b = transmit_cached(&[spec(1)], &obs).expect("valid spec");
        assert_ne!(*a, *b);
        assert_eq!(stats(), TxCacheStats { hits: 0, misses: 2 });
    }

    #[test]
    fn disabled_cache_always_reencodes() {
        let _session = CacheSession::start();
        set_enabled(false);
        let obs = Obs::noop();
        let s = [spec(1)];
        let first = transmit_cached(&s, &obs).expect("valid spec");
        let second = transmit_cached(&s, &obs).expect("valid spec");
        assert!(!Arc::ptr_eq(&first, &second));
        assert_eq!(*first, *second, "bypass must still be deterministic");
        assert_eq!(stats(), TxCacheStats { hits: 0, misses: 2 });
    }

    #[test]
    fn eviction_keeps_the_cache_bounded() {
        let _session = CacheSession::start();
        let obs = Obs::noop();
        for bits in 0..(MAX_ENTRIES + 2) {
            let s = [SectionSpec::payload(vec![1; 16 + bits], Mcs::QPSK_1_2)];
            transmit_cached(&s, &obs).expect("valid spec");
        }
        assert!(lock_cache().len() <= MAX_ENTRIES);
        // The oldest entry was evicted: re-requesting it is a miss.
        let oldest = [SectionSpec::payload(vec![1; 16], Mcs::QPSK_1_2)];
        let before = stats().misses;
        transmit_cached(&oldest, &obs).expect("valid spec");
        assert_eq!(stats().misses, before + 1);
    }

    #[test]
    fn errors_are_propagated_not_cached() {
        let _session = CacheSession::start();
        let obs = Obs::noop();
        assert!(transmit_cached(&[], &obs).is_err());
        assert!(lock_cache().is_empty());
    }

    #[test]
    fn obs_counters_track_hits_and_misses() {
        let _session = CacheSession::start();
        let recorder = Arc::new(carpool_obs::MemoryRecorder::new());
        let obs = Obs::with_recorder(recorder.clone());
        let s = [spec(1)];
        transmit_cached(&s, &obs).expect("valid spec");
        transmit_cached(&s, &obs).expect("valid spec");
        let snap = recorder.snapshot();
        assert_eq!(snap.counter(names::TX_CACHE_MISS), 1);
        assert_eq!(snap.counter(names::TX_CACHE_HIT), 1);
    }
}
