//! Gray-coded constellation mapping for BPSK, QPSK, 16-QAM and 64-QAM.
//!
//! Mappings follow IEEE 802.11-2012 Table 18-8..18-11: per-axis Gray
//! coding with normalisation factors `1`, `1/sqrt(2)`, `1/sqrt(10)` and
//! `1/sqrt(42)` so every constellation has unit average power. Demapping
//! is hard-decision minimum-distance, implemented per axis (which is
//! exact for these square constellations).

use crate::math::Complex64;

/// Modulation scheme of a data subcarrier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Modulation {
    /// Binary phase shift keying, 1 bit/subcarrier.
    #[default]
    Bpsk,
    /// Quadrature phase shift keying, 2 bits/subcarrier.
    Qpsk,
    /// 16-ary quadrature amplitude modulation, 4 bits/subcarrier.
    Qam16,
    /// 64-ary quadrature amplitude modulation, 6 bits/subcarrier.
    Qam64,
}

impl Modulation {
    /// All modulations, in increasing order.
    pub const ALL: [Modulation; 4] = [
        Modulation::Bpsk,
        Modulation::Qpsk,
        Modulation::Qam16,
        Modulation::Qam64,
    ];

    /// Bits carried per subcarrier.
    pub fn bits_per_symbol(&self) -> usize {
        match self {
            Modulation::Bpsk => 1,
            Modulation::Qpsk => 2,
            Modulation::Qam16 => 4,
            Modulation::Qam64 => 6,
        }
    }

    /// Normalisation factor K_MOD (IEEE 802.11-2012 17.3.5.8).
    pub fn normalization(&self) -> f64 {
        match self {
            Modulation::Bpsk => 1.0,
            Modulation::Qpsk => 1.0 / 2f64.sqrt(),
            Modulation::Qam16 => 1.0 / 10f64.sqrt(),
            Modulation::Qam64 => 1.0 / 42f64.sqrt(),
        }
    }

    /// Per-axis Gray map: bits -> unnormalised PAM level.
    fn axis_level(&self, bits: &[u8]) -> f64 {
        match self {
            Modulation::Bpsk | Modulation::Qpsk => {
                if bits[0] == 0 {
                    -1.0
                } else {
                    1.0
                }
            }
            // Matching on the LSB as bool keeps the Gray map exhaustive
            // without an unreachable arm (callers only pass 0/1).
            Modulation::Qam16 => match (bits[0] & 1 == 1, bits[1] & 1 == 1) {
                (false, false) => -3.0,
                (false, true) => -1.0,
                (true, true) => 1.0,
                (true, false) => 3.0,
            },
            Modulation::Qam64 => match (bits[0] & 1 == 1, bits[1] & 1 == 1, bits[2] & 1 == 1) {
                (false, false, false) => -7.0,
                (false, false, true) => -5.0,
                (false, true, true) => -3.0,
                (false, true, false) => -1.0,
                (true, true, false) => 1.0,
                (true, true, true) => 3.0,
                (true, false, true) => 5.0,
                (true, false, false) => 7.0,
            },
        }
    }

    /// Per-axis Gray demap: PAM level decision -> bits.
    fn axis_bits(&self, level: f64, out: &mut Vec<u8>) {
        match self {
            Modulation::Bpsk | Modulation::Qpsk => {
                out.push((level >= 0.0) as u8);
            }
            Modulation::Qam16 => {
                let l = nearest_level(level, &[-3.0, -1.0, 1.0, 3.0]);
                let bits: [u8; 2] = match l {
                    0 => [0, 0],
                    1 => [0, 1],
                    2 => [1, 1],
                    _ => [1, 0],
                };
                out.extend_from_slice(&bits);
            }
            Modulation::Qam64 => {
                let l = nearest_level(level, &[-7.0, -5.0, -3.0, -1.0, 1.0, 3.0, 5.0, 7.0]);
                let bits: [u8; 3] = match l {
                    0 => [0, 0, 0],
                    1 => [0, 0, 1],
                    2 => [0, 1, 1],
                    3 => [0, 1, 0],
                    4 => [1, 1, 0],
                    5 => [1, 1, 1],
                    6 => [1, 0, 1],
                    _ => [1, 0, 0],
                };
                out.extend_from_slice(&bits);
            }
        }
    }

    /// Maps a group of [`Modulation::bits_per_symbol`] bits to one
    /// constellation point with unit average power.
    ///
    /// # Panics
    ///
    /// Panics if `bits` has the wrong length or contains non-binary values.
    ///
    /// # Examples
    ///
    /// ```
    /// use carpool_phy::modulation::Modulation;
    /// let point = Modulation::Bpsk.map(&[1]);
    /// assert_eq!(point.re, 1.0);
    /// assert_eq!(point.im, 0.0);
    /// ```
    pub fn map(&self, bits: &[u8]) -> Complex64 {
        assert_eq!(
            bits.len(),
            self.bits_per_symbol(),
            "expected {} bits for {:?}",
            self.bits_per_symbol(),
            self
        );
        assert!(bits.iter().all(|&b| b <= 1), "non-binary bit value");
        let k = self.normalization();
        match self {
            Modulation::Bpsk => Complex64::new(self.axis_level(bits) * k, 0.0),
            Modulation::Qpsk => Complex64::new(
                self.axis_level(&bits[0..1]) * k,
                self.axis_level(&bits[1..2]) * k,
            ),
            Modulation::Qam16 => Complex64::new(
                self.axis_level(&bits[0..2]) * k,
                self.axis_level(&bits[2..4]) * k,
            ),
            Modulation::Qam64 => Complex64::new(
                self.axis_level(&bits[0..3]) * k,
                self.axis_level(&bits[3..6]) * k,
            ),
        }
    }

    /// Hard-decision demapping of one equalised constellation point.
    pub fn demap(&self, point: Complex64) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.bits_per_symbol());
        self.demap_into(point, &mut out);
        out
    }

    /// Demaps into an existing buffer (avoids per-point allocation).
    pub fn demap_into(&self, point: Complex64, out: &mut Vec<u8>) {
        let k = self.normalization();
        let re = point.re / k;
        let im = point.im / k;
        match self {
            Modulation::Bpsk => self.axis_bits(re, out),
            Modulation::Qpsk => {
                self.axis_bits(re, out);
                self.axis_bits(im, out);
            }
            Modulation::Qam16 | Modulation::Qam64 => {
                self.axis_bits(re, out);
                self.axis_bits(im, out);
            }
        }
    }

    /// Maps a full bit slice to constellation points.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len()` is not a multiple of the bits per symbol.
    pub fn map_all(&self, bits: &[u8]) -> Vec<Complex64> {
        let mut out = Vec::with_capacity(bits.len() / self.bits_per_symbol().max(1)); // lint:allow(hot-alloc): per-section symbol buffer, pre-sized from bit count
        self.map_all_into(bits, &mut out);
        out
    }

    /// Appends the mapped points for `bits` to `out` — the reusable-buffer
    /// form of [`Modulation::map_all`] used by the receive hot loop.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len()` is not a multiple of the bits per symbol.
    pub fn map_all_into(&self, bits: &[u8], out: &mut Vec<Complex64>) {
        let bps = self.bits_per_symbol();
        assert_eq!(bits.len() % bps, 0, "bit count not a multiple of {bps}");
        out.reserve(bits.len() / bps);
        out.extend(bits.chunks(bps).map(|c| self.map(c)));
    }

    /// Demaps a slice of points back to bits.
    pub fn demap_all(&self, points: &[Complex64]) -> Vec<u8> {
        let mut out = Vec::with_capacity(points.len() * self.bits_per_symbol()); // lint:allow(hot-alloc): per-section symbol buffer, pre-sized from bit count
        for &p in points {
            self.demap_into(p, &mut out);
        }
        out
    }

    /// Minimum distance between constellation points (after normalisation).
    ///
    /// Useful for analytical BER sanity checks in tests.
    pub fn min_distance(&self) -> f64 {
        2.0 * self.normalization()
    }

    /// Per-axis PAM levels of this constellation (unnormalised).
    fn axis_levels(&self) -> &'static [f64] {
        match self {
            Modulation::Bpsk | Modulation::Qpsk => &[-1.0, 1.0],
            Modulation::Qam16 => &[-3.0, -1.0, 1.0, 3.0],
            Modulation::Qam64 => &[-7.0, -5.0, -3.0, -1.0, 1.0, 3.0, 5.0, 7.0],
        }
    }

    /// Bits of the Gray label of axis level index `idx`, most-significant
    /// label bit first (matching [`Modulation::axis_bits`] output order).
    fn axis_label(&self, idx: usize) -> &'static [u8] {
        match self {
            Modulation::Bpsk | Modulation::Qpsk => {
                const L: [[u8; 1]; 2] = [[0], [1]];
                &L[idx]
            }
            Modulation::Qam16 => {
                const L: [[u8; 2]; 4] = [[0, 0], [0, 1], [1, 1], [1, 0]];
                &L[idx]
            }
            Modulation::Qam64 => {
                const L: [[u8; 3]; 8] = [
                    [0, 0, 0],
                    [0, 0, 1],
                    [0, 1, 1],
                    [0, 1, 0],
                    [1, 1, 0],
                    [1, 1, 1],
                    [1, 0, 1],
                    [1, 0, 0],
                ];
                &L[idx]
            }
        }
    }

    /// Max-log soft demapping of one axis coordinate into per-bit LLRs,
    /// written to a pre-sized slice (one slot per axis bit).
    ///
    /// Convention: positive LLR favours bit value 1. `noise_var` is the
    /// per-axis Gaussian noise variance after equalisation.
    fn axis_llrs_slice(&self, level: f64, noise_var: f64, out: &mut [f64]) {
        let levels = self.axis_levels();
        let inv = 1.0 / (2.0 * noise_var.max(1e-12));
        for (b, slot) in out.iter_mut().enumerate() {
            let mut best0 = f64::INFINITY;
            let mut best1 = f64::INFINITY;
            for (idx, &l) in levels.iter().enumerate() {
                let d = (level - l) * (level - l);
                if self.axis_label(idx)[b] == 0 {
                    best0 = best0.min(d);
                } else {
                    best1 = best1.min(d);
                }
            }
            *slot = (best0 - best1) * inv;
        }
    }

    /// Vec-appending form of [`Modulation::axis_llrs_slice`].
    fn axis_llrs(&self, level: f64, noise_var: f64, out: &mut Vec<f64>) {
        let start = out.len();
        let bits = self.axis_label(0).len();
        out.resize(start + bits, 0.0); // lint:allow(hot-alloc): per-section symbol buffer, pre-sized from bit count
        self.axis_llrs_slice(level, noise_var, &mut out[start..]);
    }

    /// Max-log LLR demapping of one equalised constellation point.
    ///
    /// Returns [`Modulation::bits_per_symbol`] LLRs in the same bit order
    /// as [`Modulation::demap`]; positive favours 1. `noise_var` is the
    /// total complex noise variance (split evenly between axes).
    pub fn demap_soft_into(&self, point: Complex64, noise_var: f64, out: &mut Vec<f64>) {
        let k = self.normalization();
        let re = point.re / k;
        let im = point.im / k;
        // Normalising the point by K scales the noise by 1/K^2.
        let axis_var = noise_var / (2.0 * k * k);
        match self {
            Modulation::Bpsk => self.axis_llrs(re, axis_var, out),
            Modulation::Qpsk | Modulation::Qam16 | Modulation::Qam64 => {
                self.axis_llrs(re, axis_var, out);
                self.axis_llrs(im, axis_var, out);
            }
        }
    }

    /// [`Modulation::demap_soft_into`] writing to a pre-sized slice of
    /// exactly [`Modulation::bits_per_symbol`] slots — the fused RX
    /// pipeline's form, which demaps every point of a symbol into one
    /// section-sized buffer with no per-point bookkeeping.
    pub fn demap_soft_slice(&self, point: Complex64, noise_var: f64, out: &mut [f64]) {
        debug_assert_eq!(out.len(), self.bits_per_symbol());
        let k = self.normalization();
        let re = point.re / k;
        let im = point.im / k;
        // Normalising the point by K scales the noise by 1/K^2.
        let axis_var = noise_var / (2.0 * k * k);
        match self {
            Modulation::Bpsk => self.axis_llrs_slice(re, axis_var, out),
            Modulation::Qpsk | Modulation::Qam16 | Modulation::Qam64 => {
                let (lo, hi) = out.split_at_mut(out.len() / 2);
                self.axis_llrs_slice(re, axis_var, lo);
                self.axis_llrs_slice(im, axis_var, hi);
            }
        }
    }

    /// Soft-demaps a slice of points into LLRs.
    pub fn demap_soft_all(&self, points: &[Complex64], noise_var: f64) -> Vec<f64> {
        let mut out = Vec::with_capacity(points.len() * self.bits_per_symbol());
        for &p in points {
            self.demap_soft_into(p, noise_var, &mut out);
        }
        out
    }
}

impl std::fmt::Display for Modulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Modulation::Bpsk => "BPSK",
            Modulation::Qpsk => "QPSK",
            Modulation::Qam16 => "QAM16",
            Modulation::Qam64 => "QAM64",
        };
        f.write_str(name)
    }
}

fn nearest_level(value: f64, levels: &[f64]) -> usize {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (k, &l) in levels.iter().enumerate() {
        let d = (value - l).abs();
        if d < best_d {
            best_d = d;
            best = k;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_bit_patterns(width: usize) -> Vec<Vec<u8>> {
        (0..(1usize << width))
            .map(|v| (0..width).map(|k| ((v >> k) & 1) as u8).collect())
            .collect()
    }

    #[test]
    fn map_demap_round_trip_all_points() {
        for m in Modulation::ALL {
            for bits in all_bit_patterns(m.bits_per_symbol()) {
                let p = m.map(&bits);
                assert_eq!(m.demap(p), bits, "{m} bits {bits:?}");
            }
        }
    }

    #[test]
    fn constellations_have_unit_average_power() {
        for m in Modulation::ALL {
            let pats = all_bit_patterns(m.bits_per_symbol());
            let avg: f64 =
                pats.iter().map(|b| m.map(b).norm_sqr()).sum::<f64>() / pats.len() as f64;
            assert!((avg - 1.0).abs() < 1e-12, "{m}: avg power {avg}");
        }
    }

    #[test]
    fn gray_coding_adjacent_points_differ_by_one_bit() {
        // Along the I axis of QAM16, adjacent levels must differ in 1 bit.
        let m = Modulation::Qam16;
        let pats = all_bit_patterns(4);
        let mut by_level: Vec<(f64, Vec<u8>)> = pats
            .iter()
            .map(|b| (m.map(b).re, b.clone()))
            .filter(|(_, b)| b[2] == 0 && b[3] == 0) // fix Q axis
            .collect();
        by_level.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for w in by_level.windows(2) {
            let d: usize = w[0].1.iter().zip(&w[1].1).filter(|(x, y)| x != y).count();
            assert_eq!(d, 1, "levels {} and {}", w[0].0, w[1].0);
        }
    }

    #[test]
    fn demap_is_robust_to_small_noise() {
        for m in Modulation::ALL {
            let margin = m.min_distance() * 0.45;
            for bits in all_bit_patterns(m.bits_per_symbol()) {
                let p = m.map(&bits) + Complex64::new(margin / 2.0, -margin / 2.0);
                assert_eq!(m.demap(p), bits, "{m}");
            }
        }
    }

    #[test]
    fn map_all_demap_all_round_trip() {
        let m = Modulation::Qam64;
        let bits: Vec<u8> = (0..6 * 48).map(|k| ((k * 7 + 3) % 5 == 0) as u8).collect();
        let pts = m.map_all(&bits);
        assert_eq!(pts.len(), 48);
        assert_eq!(m.demap_all(&pts), bits);
    }

    #[test]
    #[should_panic(expected = "expected 2 bits")]
    fn wrong_bit_count_panics() {
        Modulation::Qpsk.map(&[1]);
    }

    #[test]
    fn demap_soft_slice_matches_vec_form() {
        for m in Modulation::ALL {
            let bps = m.bits_per_symbol();
            for bits in all_bit_patterns(bps) {
                let p = m.map(&bits) + Complex64::new(0.07, -0.11);
                let mut pushed = Vec::new();
                m.demap_soft_into(p, 0.3, &mut pushed);
                let mut sliced = vec![0.0; bps];
                m.demap_soft_slice(p, 0.3, &mut sliced);
                assert_eq!(pushed, sliced, "{m} bits {bits:?}");
            }
        }
    }

    #[test]
    fn bpsk_points_are_real() {
        assert_eq!(Modulation::Bpsk.map(&[0]), Complex64::new(-1.0, 0.0));
        assert_eq!(Modulation::Bpsk.map(&[1]), Complex64::new(1.0, 0.0));
    }

    #[test]
    fn display_names() {
        assert_eq!(Modulation::Qam64.to_string(), "QAM64");
    }
}
