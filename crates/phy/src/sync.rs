//! Frame detection, timing synchronisation and CFO estimation.
//!
//! The receivers in the paper's Fig. 2 start with an *RF detector*: find
//! the frame in the sample stream, align symbol boundaries and correct
//! the carrier frequency offset before any decoding. This module
//! implements the classic OFDM synchronisation pipeline on the STF/LTF
//! preamble:
//!
//! * **Detection** — the STF repeats every 16 samples, so a
//!   delay-16-and-correlate (Schmidl–Cox style) metric plateaus at the
//!   frame start.
//! * **Coarse CFO** — the angle of that lag-16 autocorrelation estimates
//!   offsets up to ±625 kHz at 20 Msample/s.
//! * **Fine timing** — cross-correlation against the known LTF waveform
//!   pins the symbol boundary to the sample.
//! * **Fine CFO** — the lag-64 autocorrelation across the two LTF
//!   repetitions refines the estimate (range ±156 kHz).
//!
//! The residual error after correction is a slow constellation rotation,
//! exactly the *inherent phase offset* the pilot tracker and the phase
//! offset side channel are designed around.

use crate::math::Complex64;
use crate::preamble::{generate_preamble, ltf_offsets, PREAMBLE_LEN};

/// Baseband sample rate of the 20 MHz channelisation.
pub const SAMPLE_RATE: f64 = 20e6;
/// STF repetition period in samples.
pub(crate) const STF_PERIOD: usize = 16;
/// LTF repetition lag in samples. This preamble gives each LTF symbol
/// its own cyclic prefix, so the two training bodies repeat one whole
/// symbol (80 samples) apart — unlike the legacy contiguous L-LTF.
pub(crate) const LTF_LAG: usize = 80;

/// Result of frame synchronisation.
#[derive(Debug, Clone, Copy, PartialEq)]
// lint:allow(dead-api): appears in pub signatures; callers use it structurally without naming the type
pub struct FrameSync {
    /// Index of the first preamble sample.
    pub start: usize,
    /// Estimated carrier frequency offset in Hz.
    pub cfo_hz: f64,
    /// Peak value of the normalised detection metric (0..1-ish).
    pub metric: f64,
}

/// Errors from the synchroniser.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
// lint:allow(dead-api): appears in pub signatures; callers use it structurally without naming the type
pub enum SyncError {
    /// No plateau of the detection metric exceeded the threshold.
    NotDetected,
    /// The buffer is too short to hold a preamble.
    BufferTooShort {
        /// Samples provided.
        len: usize,
    },
}

impl std::fmt::Display for SyncError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SyncError::NotDetected => f.write_str("no frame detected"),
            SyncError::BufferTooShort { len } => {
                write!(f, "buffer of {len} samples cannot hold a preamble")
            }
        }
    }
}

impl std::error::Error for SyncError {}

/// Normalised lag-autocorrelation (Schmidl–Cox metric) at one position.
fn lag_metric(samples: &[Complex64], pos: usize, lag: usize, window: usize) -> (f64, Complex64) {
    let mut corr = Complex64::ZERO;
    let mut energy = 0.0f64;
    for k in 0..window {
        let a = samples[pos + k];
        let b = samples[pos + k + lag];
        corr += b * a.conj();
        energy += a.norm_sqr() + b.norm_sqr();
    }
    if energy <= 0.0 {
        return (0.0, Complex64::ZERO);
    }
    (2.0 * corr.abs() / energy, corr)
}

/// Detects a frame and estimates its CFO.
///
/// Scans for the STF plateau, refines timing against the known LTF and
/// estimates CFO coarsely (STF) then finely (LTF).
///
/// # Errors
///
/// * [`SyncError::BufferTooShort`] if fewer than a preamble's worth of
///   samples remain anywhere in the buffer.
/// * [`SyncError::NotDetected`] if no position clears `threshold`
///   (0.6 is a robust default above ~3 dB SNR).
pub fn detect_frame(samples: &[Complex64], threshold: f64) -> Result<FrameSync, SyncError> {
    if samples.len() < PREAMBLE_LEN + LTF_LAG {
        return Err(SyncError::BufferTooShort { len: samples.len() });
    }
    let window = 3 * STF_PERIOD;
    let scan_end = samples.len() - PREAMBLE_LEN - LTF_LAG;

    // Energy gate: periodic background noise can autocorrelate
    // perfectly, so a candidate must also carry a meaningful share of
    // the buffer's peak window energy.
    let window_energy = |pos: usize| -> f64 {
        samples[pos..pos + window + STF_PERIOD]
            .iter()
            .map(|s| s.norm_sqr())
            .sum()
    };
    let mut peak_energy = 0.0f64;
    for pos in 0..=scan_end {
        peak_energy = peak_energy.max(window_energy(pos));
    }
    if peak_energy <= 0.0 {
        return Err(SyncError::NotDetected);
    }

    // 1. Find the best STF plateau, then anchor on its *start*: the
    //    metric is ~flat across the whole STF, so the maximum alone can
    //    land anywhere inside it.
    let mut best_metric = 0.0f64;
    for pos in 0..=scan_end {
        if window_energy(pos) < 0.05 * peak_energy {
            continue;
        }
        let (m, _) = lag_metric(samples, pos, STF_PERIOD, window);
        if m > threshold && m > best_metric {
            best_metric = m;
        }
    }
    if best_metric <= threshold {
        return Err(SyncError::NotDetected);
    }
    let mut coarse = None;
    let mut best_corr = Complex64::ZERO;
    for pos in 0..=scan_end {
        if window_energy(pos) < 0.05 * peak_energy {
            continue;
        }
        let (m, corr) = lag_metric(samples, pos, STF_PERIOD, window);
        if m >= 0.97 * best_metric {
            coarse = Some(pos);
            best_corr = corr;
            break;
        }
    }
    let coarse = coarse.ok_or(SyncError::NotDetected)?;

    // 2. Coarse CFO from the STF autocorrelation angle.
    let coarse_cfo =
        best_corr.arg() / (2.0 * std::f64::consts::PI * STF_PERIOD as f64 / SAMPLE_RATE);

    // 3. Fine timing: cross-correlate the (CFO-corrected) neighbourhood
    //    with the clean reference preamble's LTF section.
    let reference = generate_preamble();
    let [ltf1, _] = ltf_offsets();
    // Correlate against one clean LTF body (CP excluded).
    let ref_ltf = &reference[ltf1 + 16..ltf1 + 80];
    let search_lo = coarse.saturating_sub(STF_PERIOD);
    let search_hi = (coarse + 4 * STF_PERIOD).min(samples.len() - PREAMBLE_LEN - LTF_LAG);
    let rotation_step = -2.0 * std::f64::consts::PI * coarse_cfo / SAMPLE_RATE;
    let mut best_xcorr = -1.0f64;
    let mut fine_start = coarse;
    for cand in search_lo..=search_hi {
        let base = cand + ltf1 + 16; // align with the reference body

        let mut acc = Complex64::ZERO;
        let mut energy = 0.0f64;
        for (k, r) in ref_ltf.iter().enumerate() {
            let s = samples[base + k].rotate(rotation_step * (base + k) as f64);
            acc += s * r.conj();
            energy += s.norm_sqr();
        }
        let norm = acc.abs() / energy.max(1e-30).sqrt();
        if norm > best_xcorr {
            best_xcorr = norm;
            fine_start = cand;
        }
    }

    // 4. Fine CFO from the two LTF repetitions at the refined position.
    let ltf_base = fine_start + ltf1;
    let mut corr = Complex64::ZERO;
    for k in 0..LTF_LAG {
        corr += samples[ltf_base + LTF_LAG + k] * samples[ltf_base + k].conj();
    }
    let fine_cfo = corr.arg() / (2.0 * std::f64::consts::PI * LTF_LAG as f64 / SAMPLE_RATE);
    // The fine estimate is unambiguous only within ±125 kHz; combine it
    // with the coarse estimate's integer part.
    let fine_range = SAMPLE_RATE / LTF_LAG as f64;
    let wraps = ((coarse_cfo - fine_cfo) / fine_range).round();
    let cfo_hz = fine_cfo + wraps * fine_range;

    Ok(FrameSync {
        start: fine_start,
        cfo_hz,
        metric: best_metric,
    })
}

/// Removes a frequency offset in place (counter-rotation), with the
/// phase reference at the buffer's first sample.
pub fn correct_cfo(samples: &mut [Complex64], cfo_hz: f64) {
    let step = -2.0 * std::f64::consts::PI * cfo_hz / SAMPLE_RATE;
    let mut phase = 0.0f64;
    for s in samples.iter_mut() {
        *s = s.rotate(phase);
        phase = crate::math::wrap_angle(phase + step);
    }
}

/// Convenience: detect a frame, correct its CFO and return the aligned
/// sample slice (starting at the preamble) as an owned buffer.
///
/// # Errors
///
/// Propagates [`SyncError`] from detection.
pub fn synchronize(samples: &[Complex64], threshold: f64) -> Result<Vec<Complex64>, SyncError> {
    let sync = detect_frame(samples, threshold)?;
    let mut aligned = samples[sync.start..].to_vec();
    correct_cfo(&mut aligned, sync.cfo_hz);
    Ok(aligned)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mcs::Mcs;
    use crate::rx::{receive, Estimation, SectionLayout};
    use crate::tx::{transmit, SectionSpec};

    fn pseudo_noise(n: usize, seed: u64, amplitude: f64) -> Vec<Complex64> {
        let mut x = seed | 1;
        let mut step = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x as f64 / u64::MAX as f64) - 0.5
        };
        (0..n)
            .map(|_| Complex64::new(step() * amplitude, step() * amplitude))
            .collect()
    }

    fn embed(frame: &[Complex64], offset: usize, tail: usize) -> Vec<Complex64> {
        // Quiet aperiodic guard noise around the frame.
        let mut buf = pseudo_noise(offset, 5, 1e-4);
        buf.extend_from_slice(frame);
        buf.extend(pseudo_noise(tail, 9, 1e-4));
        buf
    }

    fn test_frame() -> (SectionSpec, Vec<Complex64>) {
        let spec = SectionSpec::payload(
            (0..400).map(|k| (k % 3 == 0) as u8).collect(),
            Mcs::QPSK_1_2,
        );
        let tx = transmit(std::slice::from_ref(&spec)).unwrap();
        (spec, tx.samples)
    }

    #[test]
    fn detects_frame_at_known_offset() {
        let (_, frame) = test_frame();
        for offset in [0usize, 37, 200, 555] {
            let buf = embed(&frame, offset, 100);
            let sync = detect_frame(&buf, 0.6).unwrap();
            assert!(
                (sync.start as isize - offset as isize).abs() <= 1,
                "offset {offset}: detected {}",
                sync.start
            );
        }
    }

    #[test]
    fn estimates_cfo_accurately() {
        let (_, frame) = test_frame();
        for cfo in [-40_000.0f64, -1_000.0, 0.0, 500.0, 25_000.0, 120_000.0] {
            let mut shifted = frame.clone();
            // Apply +cfo.
            correct_cfo(&mut shifted, -cfo);
            let buf = embed(&shifted, 64, 64);
            let sync = detect_frame(&buf, 0.5).unwrap();
            assert!(
                (sync.cfo_hz - cfo).abs() < 200.0,
                "cfo {cfo}: estimated {}",
                sync.cfo_hz
            );
        }
    }

    #[test]
    fn synchronized_frame_decodes() {
        let (spec, frame) = test_frame();
        let mut shifted = frame;
        correct_cfo(&mut shifted, -8_000.0); // inject +8 kHz CFO
        let buf = embed(&shifted, 123, 50);
        let aligned = synchronize(&buf, 0.6).unwrap();
        let rx = receive(&aligned, &[SectionLayout::of(&spec)], Estimation::Standard).unwrap();
        assert_eq!(rx.sections[0].bits, spec.bits);
    }

    #[test]
    fn silence_is_not_detected() {
        let buf = pseudo_noise(2000, 3, 1e-3);
        assert_eq!(detect_frame(&buf, 0.6).unwrap_err(), SyncError::NotDetected);
    }

    #[test]
    fn short_buffer_is_an_error() {
        let buf = vec![Complex64::ONE; 50];
        assert!(matches!(
            detect_frame(&buf, 0.6),
            Err(SyncError::BufferTooShort { len: 50 })
        ));
    }

    #[test]
    fn correct_cfo_is_inverse_of_injection() {
        let mut buf: Vec<Complex64> = (0..500).map(|k| Complex64::cis(0.01 * k as f64)).collect();
        let original = buf.clone();
        correct_cfo(&mut buf, -3_000.0);
        correct_cfo(&mut buf, 3_000.0);
        for (a, b) in buf.iter().zip(&original) {
            assert!((*a - *b).abs() < 1e-9);
        }
    }

    #[test]
    fn detection_metric_is_high_on_clean_preamble() {
        let (_, frame) = test_frame();
        let buf = embed(&frame, 100, 100);
        let sync = detect_frame(&buf, 0.5).unwrap();
        assert!(sync.metric > 0.9, "metric {}", sync.metric);
    }
}
