//! IEEE 802.11 block interleaver.
//!
//! Coded bits of each OFDM symbol are interleaved by the two-permutation
//! scheme of IEEE 802.11-2012 18.3.5.7: the first permutation ensures
//! adjacent coded bits land on non-adjacent subcarriers and the second
//! ensures they alternate between more and less significant constellation
//! bits. Block size is `N_CBPS` (coded bits per OFDM symbol).

use crate::modulation::Modulation;

/// Interleaver for one OFDM symbol of `N_CBPS` coded bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interleaver {
    n_cbps: usize,
    n_bpsc: usize,
}

impl Interleaver {
    /// Creates an interleaver for the given modulation over `n_data`
    /// data subcarriers (48 for the 802.11a/g format used here).
    ///
    /// # Panics
    ///
    /// Panics if `n_data` is not a multiple of 16 (the column count of
    /// the standard interleaver).
    pub fn new(modulation: Modulation, n_data: usize) -> Interleaver {
        let n_bpsc = modulation.bits_per_symbol();
        let n_cbps = n_bpsc * n_data;
        assert!(
            n_cbps.is_multiple_of(16),
            "N_CBPS {n_cbps} must be a multiple of 16"
        );
        Interleaver { n_cbps, n_bpsc }
    }

    /// Coded bits per OFDM symbol handled by this interleaver.
    pub fn block_size(&self) -> usize {
        self.n_cbps
    }

    /// Index mapping of the transmitter: output position of input bit `k`.
    fn permute(&self, k: usize) -> usize {
        let n_cbps = self.n_cbps;
        let s = (self.n_bpsc / 2).max(1);
        // First permutation.
        let i = (n_cbps / 16) * (k % 16) + k / 16;
        // Second permutation.
        s * (i / s) + (i + n_cbps - (16 * i) / n_cbps) % s
    }

    /// Interleaves one block of exactly `N_CBPS` bits.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() != self.block_size()`.
    pub fn interleave(&self, bits: &[u8]) -> Vec<u8> {
        assert_eq!(bits.len(), self.n_cbps, "block size mismatch");
        let mut out = vec![0u8; self.n_cbps];
        for (k, &b) in bits.iter().enumerate() {
            out[self.permute(k)] = b;
        }
        out
    }

    /// Inverts [`Interleaver::interleave`].
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() != self.block_size()`.
    pub fn deinterleave(&self, bits: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.n_cbps);
        self.deinterleave_into(bits, &mut out);
        out
    }

    /// Appends the deinterleaved block to `out` — the allocation-free
    /// form used by the symbol hot loop, which accumulates the coded
    /// stream across symbols.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() != self.block_size()`.
    pub fn deinterleave_into(&self, bits: &[u8], out: &mut Vec<u8>) {
        assert_eq!(bits.len(), self.n_cbps, "block size mismatch");
        out.reserve(self.n_cbps);
        for k in 0..self.n_cbps {
            out.push(bits[self.permute(k)]);
        }
    }

    /// Deinterleaves soft values (LLRs) with the same permutation.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != self.block_size()`.
    pub fn deinterleave_soft(&self, values: &[f64]) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.n_cbps);
        self.deinterleave_soft_into(values, &mut out);
        out
    }

    /// Appends the deinterleaved soft block to `out`; see
    /// [`Interleaver::deinterleave_into`].
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != self.block_size()`.
    pub fn deinterleave_soft_into(&self, values: &[f64], out: &mut Vec<f64>) {
        assert_eq!(values.len(), self.n_cbps, "block size mismatch");
        out.reserve(self.n_cbps);
        for k in 0..self.n_cbps {
            out.push(values[self.permute(k)]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_modulations() {
        for m in Modulation::ALL {
            let il = Interleaver::new(m, 48);
            let bits: Vec<u8> = (0..il.block_size())
                .map(|k| ((k * 31) % 7 < 3) as u8)
                .collect();
            assert_eq!(il.deinterleave(&il.interleave(&bits)), bits, "{m}");
        }
    }

    #[test]
    fn permutation_is_bijective() {
        for m in Modulation::ALL {
            let il = Interleaver::new(m, 48);
            let mut seen = vec![false; il.block_size()];
            for k in 0..il.block_size() {
                let p = il.permute(k);
                assert!(!seen[p], "{m}: position {p} hit twice");
                seen[p] = true;
            }
        }
    }

    #[test]
    fn adjacent_bits_are_separated() {
        // The point of the interleaver: adjacent coded bits must map to
        // positions at least a few subcarriers apart.
        let il = Interleaver::new(Modulation::Bpsk, 48);
        for k in 0..il.block_size() - 1 {
            let a = il.permute(k) as isize;
            let b = il.permute(k + 1) as isize;
            assert!((a - b).abs() >= 3, "bits {k},{} land {a},{b}", k + 1);
        }
    }

    #[test]
    fn interleaving_actually_permutes() {
        let il = Interleaver::new(Modulation::Qam16, 48);
        let mut bits = vec![0u8; il.block_size()];
        bits[1] = 1; // position 0 maps to 0 by construction; use 1
        let out = il.interleave(&bits);
        assert_ne!(out, bits);
        assert_eq!(out.iter().map(|&b| b as usize).sum::<usize>(), 1);
    }

    #[test]
    fn standard_bpsk_first_index() {
        // For BPSK/48 carriers, N_CBPS=48, s=1: position of bit 0 is 0,
        // bit 1 goes to 48/16*1 = 3.
        let il = Interleaver::new(Modulation::Bpsk, 48);
        assert_eq!(il.permute(0), 0);
        assert_eq!(il.permute(1), 3);
        assert_eq!(il.permute(16), 1);
    }

    #[test]
    #[should_panic(expected = "block size mismatch")]
    fn rejects_wrong_block_length() {
        Interleaver::new(Modulation::Bpsk, 48).interleave(&[0, 1]);
    }
}
