//! IEEE 802.11 block interleaver.
//!
//! Coded bits of each OFDM symbol are interleaved by the two-permutation
//! scheme of IEEE 802.11-2012 18.3.5.7: the first permutation ensures
//! adjacent coded bits land on non-adjacent subcarriers and the second
//! ensures they alternate between more and less significant constellation
//! bits. Block size is `N_CBPS` (coded bits per OFDM symbol).

use crate::convolutional::{depuncture_layout, quantize_llr, CodeRate};
use crate::modulation::Modulation;

/// Interleaver for one OFDM symbol of `N_CBPS` coded bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interleaver {
    n_cbps: usize,
    n_bpsc: usize,
}

impl Interleaver {
    /// Creates an interleaver for the given modulation over `n_data`
    /// data subcarriers (48 for the 802.11a/g format used here).
    ///
    /// # Panics
    ///
    /// Panics if `n_data` is not a multiple of 16 (the column count of
    /// the standard interleaver).
    pub fn new(modulation: Modulation, n_data: usize) -> Interleaver {
        let n_bpsc = modulation.bits_per_symbol();
        let n_cbps = n_bpsc * n_data;
        assert!(
            n_cbps.is_multiple_of(16),
            "N_CBPS {n_cbps} must be a multiple of 16"
        );
        Interleaver { n_cbps, n_bpsc }
    }

    /// Coded bits per OFDM symbol handled by this interleaver.
    pub fn block_size(&self) -> usize {
        self.n_cbps
    }

    /// Index mapping of the transmitter: output position of input bit `k`.
    fn permute(&self, k: usize) -> usize {
        let n_cbps = self.n_cbps;
        let s = (self.n_bpsc / 2).max(1);
        // First permutation.
        let i = (n_cbps / 16) * (k % 16) + k / 16;
        // Second permutation.
        s * (i / s) + (i + n_cbps - (16 * i) / n_cbps) % s
    }

    /// Interleaves one block of exactly `N_CBPS` bits.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() != self.block_size()`.
    pub fn interleave(&self, bits: &[u8]) -> Vec<u8> {
        assert_eq!(bits.len(), self.n_cbps, "block size mismatch");
        let mut out = vec![0u8; self.n_cbps];
        for (k, &b) in bits.iter().enumerate() {
            out[self.permute(k)] = b;
        }
        out
    }

    /// Inverts [`Interleaver::interleave`].
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() != self.block_size()`.
    pub fn deinterleave(&self, bits: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.n_cbps);
        self.deinterleave_into(bits, &mut out);
        out
    }

    /// Appends the deinterleaved block to `out` — the allocation-free
    /// form used by the symbol hot loop, which accumulates the coded
    /// stream across symbols.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() != self.block_size()`.
    pub fn deinterleave_into(&self, bits: &[u8], out: &mut Vec<u8>) {
        assert_eq!(bits.len(), self.n_cbps, "block size mismatch");
        out.reserve(self.n_cbps);
        for k in 0..self.n_cbps {
            out.push(bits[self.permute(k)]);
        }
    }

    /// Deinterleaves soft values (LLRs) with the same permutation.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != self.block_size()`.
    pub fn deinterleave_soft(&self, values: &[f64]) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.n_cbps);
        self.deinterleave_soft_into(values, &mut out);
        out
    }

    /// Appends the deinterleaved soft block to `out`; see
    /// [`Interleaver::deinterleave_into`].
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != self.block_size()`.
    pub fn deinterleave_soft_into(&self, values: &[f64], out: &mut Vec<f64>) {
        assert_eq!(values.len(), self.n_cbps, "block size mismatch");
        out.reserve(self.n_cbps);
        for k in 0..self.n_cbps {
            out.push(values[self.permute(k)]);
        }
    }
}

/// Precomputed scatter map of the fused RX pipeline: one entry per
/// coded bit of an OFDM symbol, pairing the interleaved (transmission
/// order) source position with the flat trellis-lattice destination
/// offset after deinterleaving and depuncturing. Built once per
/// `(modulation, code rate)` and cached in the receive scratch, it lets
/// the symbol hot loop write quantized integer levels straight into the
/// Viterbi lattice — no coded-order intermediate stream, no separate
/// deinterleave or depuncture pass.
#[derive(Debug, Clone)]
pub(crate) struct RxSymbolMap {
    /// `(interleaved source, flat lattice offset)` per coded bit, in
    /// deinterleaved coded order.
    pairs: Vec<(usize, usize)>,
    /// Flat lattice entries spanned by one OFDM symbol.
    flat_per_symbol: usize,
}

impl RxSymbolMap {
    /// Builds the map for one modulation/rate pair over `n_data` data
    /// subcarriers.
    ///
    /// # Panics
    ///
    /// Panics if the symbol's coded-bit count is not a whole number of
    /// puncture periods (true for every 802.11a/g MCS, where `N_CBPS ∈
    /// {48, 96, 192, 288}` and periods keep 2, 3 or 4 bits).
    pub(crate) fn new(modulation: Modulation, rate: CodeRate, n_data: usize) -> RxSymbolMap {
        let il = Interleaver::new(modulation, n_data);
        let n_cbps = il.block_size();
        let (kept, flat, offs) = depuncture_layout(rate);
        assert!(
            n_cbps.is_multiple_of(kept),
            "N_CBPS {n_cbps} not a multiple of the {kept}-bit puncture period"
        );
        let mut pairs = Vec::with_capacity(n_cbps); // lint:allow(hot-alloc): built once per (modulation, rate), cached across frames
        for k in 0..n_cbps {
            let dst = (k / kept) * flat + offs[k % kept];
            pairs.push((il.permute(k), dst));
        }
        RxSymbolMap {
            pairs,
            flat_per_symbol: (n_cbps / kept) * flat,
        }
    }

    /// Flat lattice entries one OFDM symbol spans; symbol `k` of a
    /// section scatters into `lattice[k * flat_per_symbol()..]`.
    pub(crate) fn flat_per_symbol(&self) -> usize {
        self.flat_per_symbol
    }

    /// Scatters the first `limit` coded bits of one hard-demapped
    /// symbol (interleaved order, bits 0/1) into the lattice slice as
    /// ±1 levels. Slots past `limit` — puncture holes and positions
    /// beyond the section's usable coded length — keep the lattice's
    /// pre-zeroed erasure value.
    pub(crate) fn scatter_hard(&self, interleaved: &[u8], limit: usize, lattice: &mut [i32]) {
        for &(src, dst) in &self.pairs[..limit] {
            lattice[dst] = i32::from(interleaved[src]) * 2 - 1;
        }
    }

    /// Scatters the first `limit` coded bits of one soft-demapped
    /// symbol (interleaved-order LLRs) into the lattice slice as
    /// quantized levels; see [`RxSymbolMap::scatter_hard`].
    pub(crate) fn scatter_soft(&self, llrs: &[f64], limit: usize, lattice: &mut [i32]) {
        for &(src, dst) in &self.pairs[..limit] {
            lattice[dst] = quantize_llr(llrs[src]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_modulations() {
        for m in Modulation::ALL {
            let il = Interleaver::new(m, 48);
            let bits: Vec<u8> = (0..il.block_size())
                .map(|k| ((k * 31) % 7 < 3) as u8)
                .collect();
            assert_eq!(il.deinterleave(&il.interleave(&bits)), bits, "{m}");
        }
    }

    #[test]
    fn permutation_is_bijective() {
        for m in Modulation::ALL {
            let il = Interleaver::new(m, 48);
            let mut seen = vec![false; il.block_size()];
            for k in 0..il.block_size() {
                let p = il.permute(k);
                assert!(!seen[p], "{m}: position {p} hit twice");
                seen[p] = true;
            }
        }
    }

    #[test]
    fn adjacent_bits_are_separated() {
        // The point of the interleaver: adjacent coded bits must map to
        // positions at least a few subcarriers apart.
        let il = Interleaver::new(Modulation::Bpsk, 48);
        for k in 0..il.block_size() - 1 {
            let a = il.permute(k) as isize;
            let b = il.permute(k + 1) as isize;
            assert!((a - b).abs() >= 3, "bits {k},{} land {a},{b}", k + 1);
        }
    }

    #[test]
    fn interleaving_actually_permutes() {
        let il = Interleaver::new(Modulation::Qam16, 48);
        let mut bits = vec![0u8; il.block_size()];
        bits[1] = 1; // position 0 maps to 0 by construction; use 1
        let out = il.interleave(&bits);
        assert_ne!(out, bits);
        assert_eq!(out.iter().map(|&b| b as usize).sum::<usize>(), 1);
    }

    #[test]
    fn standard_bpsk_first_index() {
        // For BPSK/48 carriers, N_CBPS=48, s=1: position of bit 0 is 0,
        // bit 1 goes to 48/16*1 = 3.
        let il = Interleaver::new(Modulation::Bpsk, 48);
        assert_eq!(il.permute(0), 0);
        assert_eq!(il.permute(1), 3);
        assert_eq!(il.permute(16), 1);
    }

    #[test]
    #[should_panic(expected = "block size mismatch")]
    fn rejects_wrong_block_length() {
        Interleaver::new(Modulation::Bpsk, 48).interleave(&[0, 1]);
    }

    #[test]
    fn scatter_matches_deinterleave_then_depuncture() {
        // The fused map must equal the composition it replaces:
        // deinterleave to coded order, then place kept bits at the flat
        // lattice offsets of the puncture layout.
        for m in Modulation::ALL {
            for rate in [CodeRate::Half, CodeRate::TwoThirds, CodeRate::ThreeQuarters] {
                let il = Interleaver::new(m, 48);
                let map = RxSymbolMap::new(m, rate, 48);
                let n = il.block_size();
                let (kept, flat, offs) = depuncture_layout(rate);
                assert_eq!(map.flat_per_symbol(), (n / kept) * flat, "{m} {rate}");

                let bits: Vec<u8> = (0..n).map(|k| ((k * 13 + 5) % 3 == 0) as u8).collect();
                let llrs: Vec<f64> = (0..n).map(|k| (k as f64 - 20.0) * 0.37).collect();
                let coded = il.deinterleave(&bits);
                let coded_llrs = il.deinterleave_soft(&llrs);

                // Truncated limits exercise the erasure tail a section's
                // last symbol sees.
                for limit in [n, n - 7] {
                    let mut expect_h = vec![0i32; map.flat_per_symbol()];
                    let mut expect_s = vec![0i32; map.flat_per_symbol()];
                    for k in 0..limit {
                        let dst = (k / kept) * flat + offs[k % kept];
                        expect_h[dst] = i32::from(coded[k]) * 2 - 1;
                        expect_s[dst] = quantize_llr(coded_llrs[k]);
                    }
                    let mut got_h = vec![0i32; map.flat_per_symbol()];
                    map.scatter_hard(&bits, limit, &mut got_h);
                    assert_eq!(got_h, expect_h, "hard {m} {rate} limit {limit}");
                    let mut got_s = vec![0i32; map.flat_per_symbol()];
                    map.scatter_soft(&llrs, limit, &mut got_s);
                    assert_eq!(got_s, expect_s, "soft {m} {rate} limit {limit}");
                }
            }
        }
    }
}
