//! Minimal complex arithmetic for the baseband simulator.
//!
//! The workspace deliberately avoids external math crates, so this module
//! provides a small, well-tested [`Complex64`] type covering exactly what
//! the OFDM chain needs: arithmetic, polar conversion, conjugation and a
//! handful of conveniences such as [`Complex64::from_polar`].

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// # Examples
///
/// ```
/// use carpool_phy::math::Complex64;
///
/// let a = Complex64::new(1.0, 2.0);
/// let b = Complex64::new(3.0, -1.0);
/// assert_eq!(a + b, Complex64::new(4.0, 1.0));
/// assert_eq!(a * Complex64::I, Complex64::new(-2.0, 1.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real component.
    pub re: f64,
    /// Imaginary component.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity, `0 + 0i`.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity, `1 + 0i`.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit, `0 + 1i`.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from rectangular components.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// Creates a complex number from polar components.
    ///
    /// # Examples
    ///
    /// ```
    /// use carpool_phy::math::Complex64;
    /// let z = Complex64::from_polar(2.0, std::f64::consts::FRAC_PI_2);
    /// assert!((z.re).abs() < 1e-12);
    /// assert!((z.im - 2.0).abs() < 1e-12);
    /// ```
    #[inline]
    pub fn from_polar(magnitude: f64, angle: f64) -> Self {
        Complex64::new(magnitude * angle.cos(), magnitude * angle.sin())
    }

    /// Returns `e^{i * angle}`, a unit phasor.
    #[inline]
    pub fn cis(angle: f64) -> Self {
        Complex64::from_polar(1.0, angle)
    }

    /// The complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex64::new(self.re, -self.im)
    }

    /// The squared magnitude `re^2 + im^2`; cheaper than [`Complex64::abs`].
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// The magnitude (Euclidean norm).
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// The argument (phase) in radians, in `(-pi, pi]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex64::new(self.re * k, self.im * k)
    }

    /// Rotates the phasor by `angle` radians.
    #[inline]
    pub fn rotate(self, angle: f64) -> Self {
        self * Complex64::cis(angle)
    }

    /// The multiplicative inverse.
    ///
    /// Returns a pair of infinities or NaNs if `self` is zero, like `1.0/0.0`.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        Complex64::new(self.re / d, -self.im / d)
    }

    /// `true` if both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Complex64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex64) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        Complex64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex64) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: f64) -> Complex64 {
        self.scale(rhs)
    }
}

impl Mul<Complex64> for f64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        rhs.scale(self)
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // division IS multiplication by the inverse
    fn div(self, rhs: Complex64) -> Complex64 {
        self * rhs.inv()
    }
}

impl DivAssign for Complex64 {
    #[inline]
    fn div_assign(&mut self, rhs: Complex64) {
        *self = *self / rhs;
    }
}

impl Div<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: f64) -> Complex64 {
        Complex64::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline]
    fn neg(self) -> Complex64 {
        Complex64::new(-self.re, -self.im)
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Complex64>>(iter: I) -> Complex64 {
        iter.fold(Complex64::ZERO, Add::add)
    }
}

impl From<f64> for Complex64 {
    #[inline]
    fn from(re: f64) -> Complex64 {
        Complex64::new(re, 0.0)
    }
}

impl From<(f64, f64)> for Complex64 {
    #[inline]
    fn from((re, im): (f64, f64)) -> Complex64 {
        Complex64::new(re, im)
    }
}

/// Converts a linear power ratio to decibels.
///
/// # Examples
///
/// ```
/// assert!((carpool_phy::math::lin_to_db(100.0) - 20.0).abs() < 1e-12);
/// ```
#[inline]
#[cfg(test)]
fn lin_to_db(linear: f64) -> f64 {
    10.0 * linear.log10()
}

/// Converts decibels to a linear power ratio.
///
/// # Examples
///
/// ```
/// assert!((carpool_phy::math::db_to_lin(20.0) - 100.0).abs() < 1e-9);
/// ```
#[inline]
pub fn db_to_lin(db: f64) -> f64 {
    10f64.powf(db / 10.0)
}

/// Mean power (mean squared magnitude) of a sample slice.
///
/// Returns `0.0` for an empty slice.
pub fn mean_power(samples: &[Complex64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    // lint:allow(as-cast): sample counts are far below 2^53, exact in f64
    samples.iter().map(|s| s.norm_sqr()).sum::<f64>() / samples.len() as f64
}

/// Wraps an angle in radians to `(-pi, pi]`.
///
/// # Examples
///
/// ```
/// use std::f64::consts::PI;
/// let w = carpool_phy::math::wrap_angle(3.0 * PI);
/// assert!((w - PI).abs() < 1e-12);
/// ```
pub fn wrap_angle(angle: f64) -> f64 {
    use std::f64::consts::PI;
    let mut a = angle % (2.0 * PI);
    if a > PI {
        a -= 2.0 * PI;
    } else if a <= -PI {
        a += 2.0 * PI;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn arithmetic_identities() {
        let z = Complex64::new(3.0, -4.0);
        assert_eq!(z + Complex64::ZERO, z);
        assert_eq!(z * Complex64::ONE, z);
        assert_eq!(z - z, Complex64::ZERO);
        assert_eq!(-z, Complex64::new(-3.0, 4.0));
    }

    #[test]
    fn multiplication_matches_expansion() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(-3.0, 0.5);
        let p = a * b;
        assert!(close(p.re, 1.0 * -3.0 - 2.0 * 0.5));
        assert!(close(p.im, 1.0 * 0.5 + 2.0 * -3.0));
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Complex64::new(0.7, -1.3);
        let b = Complex64::new(2.5, 4.0);
        let q = (a * b) / b;
        assert!(close(q.re, a.re));
        assert!(close(q.im, a.im));
    }

    #[test]
    fn conjugate_and_norm() {
        let z = Complex64::new(3.0, 4.0);
        assert!(close(z.abs(), 5.0));
        assert!(close(z.norm_sqr(), 25.0));
        assert!(close((z * z.conj()).re, 25.0));
        assert!(close((z * z.conj()).im, 0.0));
    }

    #[test]
    fn polar_round_trip() {
        let z = Complex64::from_polar(2.0, 0.3);
        assert!(close(z.abs(), 2.0));
        assert!(close(z.arg(), 0.3));
    }

    #[test]
    fn rotate_quarter_turn() {
        let z = Complex64::ONE.rotate(FRAC_PI_2);
        assert!(close(z.re, 0.0));
        assert!(close(z.im, 1.0));
    }

    #[test]
    fn inverse_of_unit_is_conjugate() {
        let z = Complex64::cis(1.1);
        let inv = z.inv();
        assert!(close(inv.re, z.conj().re));
        assert!(close(inv.im, z.conj().im));
    }

    #[test]
    fn sum_over_iterator() {
        let total: Complex64 = (0..4).map(|k| Complex64::new(k as f64, 1.0)).sum();
        assert_eq!(total, Complex64::new(6.0, 4.0));
    }

    #[test]
    fn db_round_trip() {
        for db in [-20.0, -3.0, 0.0, 10.0, 30.0] {
            assert!((lin_to_db(db_to_lin(db)) - db).abs() < 1e-9);
        }
    }

    #[test]
    fn wrap_angle_range() {
        for k in -10..=10 {
            let a = wrap_angle(0.37 + k as f64 * 2.0 * PI);
            assert!((a - 0.37).abs() < 1e-9);
        }
        assert!(close(wrap_angle(PI), PI));
        assert!(close(wrap_angle(-PI), PI));
    }

    #[test]
    fn mean_power_of_unit_circle() {
        let samples: Vec<Complex64> = (0..100).map(|k| Complex64::cis(k as f64 * 0.1)).collect();
        assert!(close(mean_power(&samples), 1.0));
        assert_eq!(mean_power(&[]), 0.0);
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex64::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex64::new(1.0, -2.0).to_string(), "1-2i");
    }
}
