#![warn(missing_docs)]
//! # carpool-phy — an IEEE 802.11-style OFDM PHY with Carpool extensions
//!
//! A from-scratch software implementation of the 20 MHz OFDM physical
//! layer used by IEEE 802.11a/g (and, per-subframe, by the Carpool
//! design): 64-point FFT with 48 data + 4 pilot subcarriers, STF/LTF
//! preamble, frame-synchronous scrambler, K=7 convolutional code with
//! Viterbi decoding, block interleaver and Gray-coded BPSK/QPSK/16-QAM/
//! 64-QAM — plus the two PHY mechanisms contributed by the Carpool paper:
//!
//! * the **phase offset side channel** ([`sidechannel`]): per-symbol
//!   constellation rotations that carry a symbol-level CRC without
//!   affecting standard data decoding, and
//! * **real-time channel estimation** ([`rte`]): CRC-verified symbols act
//!   as data pilots that continuously recalibrate the channel estimate,
//!   eliminating the BER bias of long aggregated frames.
//!
//! The chain is exercised end to end by [`tx::transmit`] and
//! [`rx::receive`].
//!
//! # Examples
//!
//! ```
//! use carpool_phy::mcs::Mcs;
//! use carpool_phy::rx::{receive, Estimation, SectionLayout};
//! use carpool_phy::tx::{transmit, SectionSpec};
//!
//! # fn main() -> Result<(), carpool_phy::PhyError> {
//! let spec = SectionSpec::payload(vec![1, 0, 1, 1, 0, 1, 0, 0], Mcs::QAM16_1_2);
//! let tx = transmit(std::slice::from_ref(&spec))?;
//! let rx = receive(&tx.samples, &[SectionLayout::of(&spec)], Estimation::Standard)?;
//! assert_eq!(rx.sections[0].bits, spec.bits);
//! # Ok(())
//! # }
//! ```

pub mod bits;
pub mod convolutional;
pub mod crc;
pub mod equalizer;
pub mod fft;
pub mod interleaver;
pub mod math;
pub mod mcs;
pub mod mimo;
pub mod modulation;
pub mod ofdm;
pub mod preamble;
pub mod rte;
pub mod rx;
pub mod scrambler;
pub mod sidechannel;
pub mod sync;
pub mod tx;
/// Process-wide memoization of encoded TX waveforms (see module docs).
pub mod txcache;

/// Errors produced by the PHY layer.
#[derive(Debug, Clone, PartialEq)]
pub enum PhyError {
    /// An FFT was attempted on an invalid length.
    Fft(fft::FftError),
    /// The sample buffer does not match the expected frame structure.
    LengthMismatch {
        /// Samples required by the layout.
        expected: usize,
        /// Samples actually provided.
        actual: usize,
    },
    /// A frame with no sections or an empty section was requested.
    EmptyFrame,
    /// A configuration parameter is out of its supported range.
    InvalidConfig {
        /// Human-readable reason.
        reason: String,
    },
}

impl std::fmt::Display for PhyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PhyError::Fft(e) => write!(f, "fft error: {e}"),
            PhyError::LengthMismatch { expected, actual } => {
                write!(f, "expected {expected} samples, got {actual}")
            }
            PhyError::EmptyFrame => f.write_str("frame has no content"),
            PhyError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
        }
    }
}

impl std::error::Error for PhyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PhyError::Fft(e) => Some(e),
            _ => None,
        }
    }
}

impl From<fft::FftError> for PhyError {
    fn from(e: fft::FftError) -> PhyError {
        PhyError::Fft(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_source() {
        let e = PhyError::Fft(fft::FftError::NotPowerOfTwo { len: 3 });
        assert!(e.to_string().contains("power of two"));
        assert!(std::error::Error::source(&e).is_some());
        let e2 = PhyError::LengthMismatch {
            expected: 10,
            actual: 4,
        };
        assert!(e2.to_string().contains("10"));
        assert!(std::error::Error::source(&e2).is_none());
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PhyError>();
    }
}
