//! Phase offset side channel (Section 5.2 of the paper, Table 1).
//!
//! The transmitter injects an extra rotation into every payload OFDM
//! symbol *after* data modulation. Because the rotation is applied to
//! data and pilot subcarriers alike, standard pilot phase tracking at the
//! receiver measures and removes the *total* phase (inherent + injected)
//! before demapping — so data decoding is untouched. The side-channel
//! bits are recovered from the *difference* between the tracked phases of
//! consecutive symbols, which cancels the slowly-accumulating inherent
//! offset caused by residual CFO.
//!
//! Carpool uses this channel to carry a per-symbol CRC checksum that
//! tells the receiver which symbols decoded cleanly, enabling data-pilot
//! channel calibration ([`crate::rte`]).

use crate::math::wrap_angle;
use std::f64::consts::PI;

/// Phase offset modulation alphabet (paper Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PhaseOffsetMod {
    /// One bit per symbol: +90° ⇒ 1, −90° ⇒ 0.
    OneBit,
    /// Two bits per symbol: 45° ⇒ 11, 135° ⇒ 01, −135° ⇒ 00, −45° ⇒ 10.
    #[default]
    TwoBit,
}

impl PhaseOffsetMod {
    /// Bits conveyed per OFDM symbol.
    pub fn bits_per_symbol(&self) -> usize {
        match self {
            PhaseOffsetMod::OneBit => 1,
            PhaseOffsetMod::TwoBit => 2,
        }
    }

    /// The modulation alphabet as (angle_radians, bit_value) pairs.
    pub fn alphabet(&self) -> &'static [(f64, u8)] {
        const DEG90: f64 = PI / 2.0;
        const DEG45: f64 = PI / 4.0;
        const DEG135: f64 = 3.0 * PI / 4.0;
        match self {
            PhaseOffsetMod::OneBit => &[(DEG90, 1), (-DEG90, 0)],
            PhaseOffsetMod::TwoBit => &[
                (DEG45, 0b11),
                (DEG135, 0b01),
                (-DEG135, 0b00),
                (-DEG45, 0b10),
            ],
        }
    }

    /// Maps a bit group to the phase offset *difference* in radians.
    ///
    /// # Panics
    ///
    /// Panics if `value` does not fit in [`Self::bits_per_symbol`] bits.
    pub fn modulate(&self, value: u8) -> f64 {
        let max = (1u8 << self.bits_per_symbol()) - 1;
        assert!(value <= max, "side-channel value {value} exceeds {max}");
        // Every value up to `max` appears in the alphabet, so the
        // fallback angle is unreachable after the assert above.
        self.alphabet()
            .iter()
            .find(|(_, v)| *v == value)
            .map_or(0.0, |(a, _)| *a)
    }

    /// Nearest-angle demodulation of a measured phase difference.
    /// Non-finite inputs compare as maximally distant (`total_cmp`), so
    /// the result is always a valid alphabet value.
    pub fn demodulate(&self, delta: f64) -> u8 {
        let d = wrap_angle(delta);
        self.alphabet()
            .iter()
            .min_by(|(a, _), (b, _)| angular_distance(d, *a).total_cmp(&angular_distance(d, *b)))
            .map_or(0, |(_, v)| *v)
    }
}

impl std::fmt::Display for PhaseOffsetMod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PhaseOffsetMod::OneBit => f.write_str("1-bit phase offset"),
            PhaseOffsetMod::TwoBit => f.write_str("2-bit phase offset"),
        }
    }
}

fn angular_distance(a: f64, b: f64) -> f64 {
    wrap_angle(a - b).abs()
}

/// Differential phase-offset encoder.
///
/// Tracks the cumulative injected rotation: to convey bit group `v` on
/// symbol `n`, the injected *absolute* rotation is
/// `phi_n = phi_{n-1} + modulate(v)` (paper Fig. 8(b): conveying "110"
/// over three symbols injects 90°, 180°, 90°).
///
/// # Examples
///
/// ```
/// use carpool_phy::sidechannel::{PhaseOffsetEncoder, PhaseOffsetMod};
/// use std::f64::consts::PI;
///
/// let mut enc = PhaseOffsetEncoder::new(PhaseOffsetMod::OneBit);
/// assert!((enc.next_offset(1) - PI / 2.0).abs() < 1e-12); //  90°
/// assert!((enc.next_offset(1) - PI).abs() < 1e-12);       // 180°
/// assert!((enc.next_offset(0) - PI / 2.0).abs() < 1e-12); //  90°
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseOffsetEncoder {
    modulation: PhaseOffsetMod,
    cumulative: f64,
}

impl PhaseOffsetEncoder {
    /// Creates an encoder with zero initial rotation.
    pub fn new(modulation: PhaseOffsetMod) -> PhaseOffsetEncoder {
        PhaseOffsetEncoder {
            modulation,
            cumulative: 0.0,
        }
    }

    /// The configured modulation.
    pub fn modulation(&self) -> PhaseOffsetMod {
        self.modulation
    }

    /// Returns the absolute rotation to inject into the next symbol in
    /// order to convey `value`, advancing the encoder state.
    pub fn next_offset(&mut self, value: u8) -> f64 {
        self.cumulative = wrap_angle(self.cumulative + self.modulation.modulate(value));
        self.cumulative
    }
}

/// Differential phase-offset decoder.
///
/// Feed it the total tracked phase of each symbol (from pilot tracking);
/// it emits the bit group carried by each symbol relative to the previous
/// one. The first call establishes the reference (normally the SIG or
/// last header symbol, which carries no injection).
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseOffsetDecoder {
    modulation: PhaseOffsetMod,
    previous: Option<f64>,
}

impl PhaseOffsetDecoder {
    /// Creates a decoder with no reference phase yet.
    pub fn new(modulation: PhaseOffsetMod) -> PhaseOffsetDecoder {
        PhaseOffsetDecoder {
            modulation,
            previous: None,
        }
    }

    /// The configured modulation.
    pub fn modulation(&self) -> PhaseOffsetMod {
        self.modulation
    }

    /// Sets the reference phase without emitting bits (e.g. the tracked
    /// phase of the last non-injected header symbol).
    pub fn set_reference(&mut self, phase: f64) {
        self.previous = Some(wrap_angle(phase));
    }

    /// Decodes the bit group carried by a symbol whose tracked total
    /// phase is `phase`. Returns `None` for the very first symbol if no
    /// reference was set (it then only establishes the reference).
    pub fn decode(&mut self, phase: f64) -> Option<u8> {
        let phase = wrap_angle(phase);
        let out = self
            .previous
            .map(|prev| self.modulation.demodulate(phase - prev));
        self.previous = Some(phase);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_mapping() {
        let m1 = PhaseOffsetMod::OneBit;
        assert!((m1.modulate(1) - PI / 2.0).abs() < 1e-12);
        assert!((m1.modulate(0) + PI / 2.0).abs() < 1e-12);

        let m2 = PhaseOffsetMod::TwoBit;
        assert!((m2.modulate(0b11) - PI / 4.0).abs() < 1e-12);
        assert!((m2.modulate(0b01) - 3.0 * PI / 4.0).abs() < 1e-12);
        assert!((m2.modulate(0b00) + 3.0 * PI / 4.0).abs() < 1e-12);
        assert!((m2.modulate(0b10) + PI / 4.0).abs() < 1e-12);
    }

    #[test]
    fn demodulate_inverts_modulate() {
        for m in [PhaseOffsetMod::OneBit, PhaseOffsetMod::TwoBit] {
            for v in 0..(1u8 << m.bits_per_symbol()) {
                assert_eq!(m.demodulate(m.modulate(v)), v, "{m} value {v}");
            }
        }
    }

    #[test]
    fn demodulate_tolerates_noise() {
        let m = PhaseOffsetMod::TwoBit;
        for v in 0..4u8 {
            let angle = m.modulate(v);
            for noise in [-0.3, -0.1, 0.1, 0.3] {
                assert_eq!(m.demodulate(angle + noise), v);
            }
        }
    }

    #[test]
    fn paper_figure8_example() {
        // Conveying "110" (bit by bit, 1-bit modulation) injects
        // 90°, 180°, 90° absolute offsets.
        let mut enc = PhaseOffsetEncoder::new(PhaseOffsetMod::OneBit);
        let offs: Vec<f64> = [1u8, 1, 0].iter().map(|&b| enc.next_offset(b)).collect();
        assert!((offs[0] - PI / 2.0).abs() < 1e-12);
        assert!((offs[1].abs() - PI).abs() < 1e-12); // 180° == -180° wrapped
        assert!((offs[2] - PI / 2.0).abs() < 1e-12);
    }

    #[test]
    fn encode_decode_round_trip_with_inherent_drift() {
        // Simulate residual CFO: inherent phase grows linearly per symbol.
        for m in [PhaseOffsetMod::OneBit, PhaseOffsetMod::TwoBit] {
            let values: Vec<u8> = (0..64u8).map(|k| k % (1 << m.bits_per_symbol())).collect();
            let mut enc = PhaseOffsetEncoder::new(m);
            let drift_per_symbol = 0.07; // small, as the paper assumes
            let mut dec = PhaseOffsetDecoder::new(m);
            dec.set_reference(0.0);
            for (n, &v) in values.iter().enumerate() {
                let injected = enc.next_offset(v);
                let inherent = drift_per_symbol * (n + 1) as f64;
                let total = wrap_angle(injected + inherent);
                assert_eq!(dec.decode(total), Some(v), "{m} symbol {n}");
            }
        }
    }

    #[test]
    fn wrap_around_is_unambiguous() {
        // Large cumulative offsets must not confuse the decoder because
        // only consecutive differences matter.
        let m = PhaseOffsetMod::TwoBit;
        let mut enc = PhaseOffsetEncoder::new(m);
        let mut dec = PhaseOffsetDecoder::new(m);
        dec.set_reference(0.0);
        for k in 0..100 {
            let v = 0b01; // +135° each symbol: wraps every few symbols
            let injected = enc.next_offset(v);
            assert_eq!(dec.decode(injected), Some(v), "symbol {k}");
        }
    }

    #[test]
    fn first_symbol_without_reference_yields_none() {
        let mut dec = PhaseOffsetDecoder::new(PhaseOffsetMod::OneBit);
        assert_eq!(dec.decode(0.3), None);
        assert!(dec.decode(0.3 + PI / 2.0).is_some());
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn modulate_rejects_out_of_range() {
        PhaseOffsetMod::OneBit.modulate(2);
    }
}
