//! Bit-level helpers shared across the PHY pipeline.
//!
//! The coding chain (scrambler, convolutional code, interleaver, mapper)
//! operates on individual bits; frames arrive as bytes. These helpers
//! convert between the two representations (LSB-first, matching the
//! IEEE 802.11 convention) and provide utilities such as Hamming distance
//! used throughout the tests and benches.

/// Unpacks bytes into bits, least-significant bit of each byte first.
///
/// # Examples
///
/// ```
/// let bits = carpool_phy::bits::bytes_to_bits(&[0b0000_0101]);
/// assert_eq!(&bits[..4], &[1, 0, 1, 0]);
/// ```
pub fn bytes_to_bits(bytes: &[u8]) -> Vec<u8> {
    let mut bits = Vec::with_capacity(bytes.len() * 8); // lint:allow(hot-alloc): per-frame bit buffer, pre-sized
    for &b in bytes {
        for k in 0..8 {
            bits.push((b >> k) & 1);
        }
    }
    bits
}

/// Packs bits (LSB-first per byte) into bytes.
///
/// Trailing bits that do not fill a byte are packed into a final byte with
/// zero padding in the high positions.
///
/// # Panics
///
/// Panics if any element of `bits` is not `0` or `1`.
pub fn bits_to_bytes(bits: &[u8]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(bits.len().div_ceil(8)); // lint:allow(hot-alloc): per-frame bit buffer, pre-sized
    for chunk in bits.chunks(8) {
        let mut b = 0u8;
        for (k, &bit) in chunk.iter().enumerate() {
            assert!(bit <= 1, "bit value {bit} out of range");
            b |= bit << k;
        }
        bytes.push(b);
    }
    bytes
}

/// Number of positions at which two bit slices differ.
///
/// Only the common prefix is compared; callers should ensure equal lengths
/// when the tail matters.
pub fn hamming_distance(a: &[u8], b: &[u8]) -> usize {
    a.iter().zip(b.iter()).filter(|(x, y)| x != y).count()
}

/// Bit error rate between a transmitted and received bit sequence.
///
/// Returns `0.0` for empty input.
pub fn bit_error_rate(sent: &[u8], received: &[u8]) -> f64 {
    let n = sent.len().min(received.len());
    if n == 0 {
        return 0.0;
    }
    // lint:allow(as-cast): bit counts are far below 2^53, exact in f64
    hamming_distance(&sent[..n], &received[..n]) as f64 / n as f64
}

/// Extracts an unsigned integer from `width` bits (LSB first).
///
/// # Panics
///
/// Panics if `width > 64` or `bits.len() < width`.
pub fn bits_to_uint(bits: &[u8], width: usize) -> u64 {
    assert!(width <= 64, "width {width} exceeds u64");
    assert!(bits.len() >= width, "need {width} bits, got {}", bits.len());
    let mut v = 0u64;
    for (k, &bit) in bits[..width].iter().enumerate() {
        v |= u64::from(bit) << k;
    }
    v
}

/// Serialises the low `width` bits of `value` as bits, LSB first.
///
/// # Panics
///
/// Panics if `width > 64`.
pub fn uint_to_bits(value: u64, width: usize) -> Vec<u8> {
    assert!(width <= 64, "width {width} exceeds u64");
    (0..width)
        .map(|k| u8::from((value >> k) & 1 != 0))
        .collect() // lint:allow(hot-alloc): per-frame bit buffer, pre-sized
}

/// Pads a bit vector with zeros up to a multiple of `block`.
///
/// Returns the number of padding bits appended.
///
/// # Panics
///
/// Panics if `block == 0`.
pub fn pad_to_multiple(bits: &mut Vec<u8>, block: usize) -> usize {
    assert!(block > 0, "block size must be positive");
    let rem = bits.len() % block;
    if rem == 0 {
        return 0;
    }
    let pad = block - rem;
    bits.extend(std::iter::repeat_n(0, pad));
    pad
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_bit_round_trip() {
        let bytes: Vec<u8> = (0..=255).collect();
        assert_eq!(bits_to_bytes(&bytes_to_bits(&bytes)), bytes);
    }

    #[test]
    fn lsb_first_ordering() {
        let bits = bytes_to_bits(&[0x01, 0x80]);
        assert_eq!(bits[0], 1);
        assert_eq!(&bits[1..8], &[0; 7]);
        assert_eq!(&bits[8..15], &[0; 7]);
        assert_eq!(bits[15], 1);
    }

    #[test]
    fn partial_byte_packing_pads_high_bits() {
        assert_eq!(bits_to_bytes(&[1, 1, 0]), vec![0b011]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_non_binary_values() {
        bits_to_bytes(&[2]);
    }

    #[test]
    fn hamming_and_ber() {
        let a = [0, 1, 0, 1];
        let b = [0, 1, 1, 0];
        assert_eq!(hamming_distance(&a, &b), 2);
        assert!((bit_error_rate(&a, &b) - 0.5).abs() < 1e-12);
        assert_eq!(bit_error_rate(&[], &[]), 0.0);
    }

    #[test]
    fn uint_round_trip() {
        for v in [0u64, 1, 47, 0xDEAD, u32::MAX as u64] {
            assert_eq!(bits_to_uint(&uint_to_bits(v, 33), 33), v);
        }
    }

    #[test]
    fn padding_behaviour() {
        let mut bits = vec![1, 0, 1];
        assert_eq!(pad_to_multiple(&mut bits, 4), 1);
        assert_eq!(bits, vec![1, 0, 1, 0]);
        assert_eq!(pad_to_multiple(&mut bits, 4), 0);
    }
}
