//! Signal-level MU-MIMO: zero-forcing precoding for two spatial streams.
//!
//! The paper's Section 8 extends Carpool to 802.11ac MU-MIMO: "VHT
//! preamble and payloads for A,B are pre-coded by the precoder that is
//! computed based on the channel estimation for A,B" (Fig. 18). This
//! module implements that mechanism at the subcarrier level for a
//! two-antenna AP:
//!
//! * a [`Matrix2`] of complex gains models the downlink channel rows of
//!   the two receivers in a precoding group;
//! * the AP applies the **zero-forcing precoder** `W = H⁻¹ D` (columns
//!   normalised to unit transmit power), so each receiver sees only its
//!   own stream as an effective scalar channel;
//! * per-stream orthogonal training (the VHT-LTF) lets each receiver
//!   estimate that effective channel before demapping.
//!
//! The frame-level grouping/airtime model lives in `carpool-frame`'s
//! `mimo` module; this is the PHY underneath one precoding group.

use crate::math::Complex64;
use crate::modulation::Modulation;

/// A 2x2 complex matrix (row-major).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Matrix2 {
    /// Row 0, column 0.
    pub a: Complex64,
    /// Row 0, column 1.
    pub b: Complex64,
    /// Row 1, column 0.
    pub c: Complex64,
    /// Row 1, column 1.
    pub d: Complex64,
}

impl Matrix2 {
    /// The identity matrix.
    pub const IDENTITY: Matrix2 = Matrix2 {
        a: Complex64 { re: 1.0, im: 0.0 },
        b: Complex64 { re: 0.0, im: 0.0 },
        c: Complex64 { re: 0.0, im: 0.0 },
        d: Complex64 { re: 1.0, im: 0.0 },
    };

    /// Builds a matrix from rows.
    pub fn from_rows(row0: [Complex64; 2], row1: [Complex64; 2]) -> Matrix2 {
        Matrix2 {
            a: row0[0],
            b: row0[1],
            c: row1[0],
            d: row1[1],
        }
    }

    /// The determinant.
    pub fn det(&self) -> Complex64 {
        self.a * self.d - self.b * self.c
    }

    /// The inverse, or `None` if the matrix is (near-)singular.
    pub fn inverse(&self) -> Option<Matrix2> {
        let det = self.det();
        if det.norm_sqr() < 1e-18 {
            return None;
        }
        let inv = det.inv();
        Some(Matrix2 {
            a: self.d * inv,
            b: -self.b * inv,
            c: -self.c * inv,
            d: self.a * inv,
        })
    }

    /// Matrix-vector product.
    pub fn mul_vec(&self, v: [Complex64; 2]) -> [Complex64; 2] {
        [self.a * v[0] + self.b * v[1], self.c * v[0] + self.d * v[1]]
    }

    /// Matrix-matrix product `self * rhs`.
    pub fn mul(&self, rhs: &Matrix2) -> Matrix2 {
        Matrix2 {
            a: self.a * rhs.a + self.b * rhs.c,
            b: self.a * rhs.b + self.b * rhs.d,
            c: self.c * rhs.a + self.d * rhs.c,
            d: self.c * rhs.b + self.d * rhs.d,
        }
    }

    /// Scales each column to unit norm (per-stream transmit power
    /// normalisation) and returns the per-column scale factors applied.
    pub fn normalize_columns(&self) -> (Matrix2, [f64; 2]) {
        let n0 = (self.a.norm_sqr() + self.c.norm_sqr()).sqrt().max(1e-12);
        let n1 = (self.b.norm_sqr() + self.d.norm_sqr()).sqrt().max(1e-12);
        (
            Matrix2 {
                a: self.a / n0,
                b: self.b / n1,
                c: self.c / n0,
                d: self.d / n1,
            },
            [1.0 / n0, 1.0 / n1],
        )
    }
}

/// Errors from the MU-MIMO group processor.
#[derive(Debug, Clone, PartialEq, Eq)]
// lint:allow(dead-api): appears in pub signatures; callers use it structurally without naming the type
pub enum MimoError {
    /// The downlink channel matrix is singular — the two receivers are
    /// not spatially separable and must go to different groups.
    SingularChannel,
    /// Stream payloads have mismatched lengths.
    StreamLengthMismatch,
}

impl std::fmt::Display for MimoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MimoError::SingularChannel => f.write_str("channel matrix is singular"),
            MimoError::StreamLengthMismatch => f.write_str("stream lengths differ"),
        }
    }
}

impl std::error::Error for MimoError {}

/// One transmitted MU-MIMO group: per-antenna subcarrier streams.
#[derive(Debug, Clone, PartialEq)]
// lint:allow(dead-api): appears in pub signatures; callers use it structurally without naming the type
pub struct PrecodedGroup {
    /// Per-antenna sequences of transmitted subcarrier values:
    /// `antennas[a][k]` is antenna `a`'s value at position `k`.
    pub antennas: [Vec<Complex64>; 2],
    /// Length of the per-stream training prefix (in positions).
    pub training_len: usize,
}

/// Zero-forcing precoder for a two-receiver group.
///
/// `channel` holds the receivers' channel rows: row `r` is
/// `[h_{r,ant0}, h_{r,ant1}]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZfPrecoder {
    weights: Matrix2,
    /// Effective per-stream gains after column normalisation: receiver
    /// `r`'s post-precoding scalar channel is `gains[r]`.
    gains: [Complex64; 2],
}

impl ZfPrecoder {
    /// Computes the precoder from the group's channel matrix.
    ///
    /// # Errors
    ///
    /// Returns [`MimoError::SingularChannel`] when the rows are
    /// (near-)linearly dependent.
    pub fn new(channel: &Matrix2) -> Result<ZfPrecoder, MimoError> {
        let inverse = channel.inverse().ok_or(MimoError::SingularChannel)?;
        let (weights, scales) = inverse.normalize_columns();
        // H * W = diag(g): receiver r hears only stream r with gain g_r.
        let hw = channel.mul(&weights);
        let _ = scales;
        Ok(ZfPrecoder {
            weights,
            gains: [hw.a, hw.d],
        })
    }

    /// The normalised precoding matrix.
    pub fn weights(&self) -> &Matrix2 {
        &self.weights
    }

    /// Effective scalar channel of receiver `r` (0 or 1).
    pub fn gain(&self, receiver: usize) -> Complex64 {
        self.gains[receiver]
    }

    /// Precodes two parallel subcarrier streams, prefixing orthogonal
    /// per-stream training of `training_len` positions each (stream 0
    /// trains first while stream 1 is silent, then vice versa — the
    /// VHT-LTF idea).
    ///
    /// # Errors
    ///
    /// Returns [`MimoError::StreamLengthMismatch`] if the streams differ
    /// in length.
    pub fn precode(
        &self,
        stream0: &[Complex64],
        stream1: &[Complex64],
        training_len: usize,
    ) -> Result<PrecodedGroup, MimoError> {
        if stream0.len() != stream1.len() {
            return Err(MimoError::StreamLengthMismatch);
        }
        let total = 2 * training_len + stream0.len();
        let mut ant0 = Vec::with_capacity(total);
        let mut ant1 = Vec::with_capacity(total);
        let mut push = |s: [Complex64; 2]| {
            let x = self.weights.mul_vec(s);
            ant0.push(x[0]);
            ant1.push(x[1]);
        };
        for _ in 0..training_len {
            push([Complex64::ONE, Complex64::ZERO]);
        }
        for _ in 0..training_len {
            push([Complex64::ZERO, Complex64::ONE]);
        }
        for (s0, s1) in stream0.iter().zip(stream1) {
            push([*s0, *s1]);
        }
        Ok(PrecodedGroup {
            antennas: [ant0, ant1],
            training_len,
        })
    }
}

/// What receiver `r` observes: `y[k] = h_r · x[k] (+ noise)`.
pub fn observe(group: &PrecodedGroup, channel_row: [Complex64; 2]) -> Vec<Complex64> {
    group.antennas[0]
        .iter()
        .zip(&group.antennas[1])
        .map(|(x0, x1)| channel_row[0] * *x0 + channel_row[1] * *x1)
        .collect()
}

/// Receiver-side processing: estimate the effective channel from this
/// receiver's training slot, verify the interference floor, equalise
/// and demap the payload stream.
///
/// Returns `(bits, interference_to_signal_ratio)`.
pub fn decode_stream(
    observed: &[Complex64],
    receiver: usize,
    training_len: usize,
    modulation: Modulation,
) -> (Vec<u8>, f64) {
    // Own and foreign training windows.
    let own_start = receiver * training_len;
    let foreign_start = (1 - receiver) * training_len;
    let own: Complex64 = observed[own_start..own_start + training_len]
        .iter()
        .copied()
        .sum::<Complex64>()
        / training_len as f64;
    let foreign: Complex64 = observed[foreign_start..foreign_start + training_len]
        .iter()
        .copied()
        .sum::<Complex64>()
        / training_len as f64;
    let isr = foreign.norm_sqr() / own.norm_sqr().max(1e-18);
    let payload = &observed[2 * training_len..];
    let bits = modulation.demap_all(&payload.iter().map(|y| *y / own).collect::<Vec<Complex64>>());
    (bits, isr)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_channel() -> Matrix2 {
        Matrix2::from_rows(
            [Complex64::new(0.9, 0.2), Complex64::new(-0.4, 0.6)],
            [Complex64::new(0.1, -0.7), Complex64::new(0.8, 0.3)],
        )
    }

    #[test]
    fn matrix_inverse_round_trip() {
        let m = test_channel();
        let inv = m.inverse().expect("invertible");
        let id = m.mul(&inv);
        assert!((id.a - Complex64::ONE).abs() < 1e-12);
        assert!((id.d - Complex64::ONE).abs() < 1e-12);
        assert!(id.b.abs() < 1e-12);
        assert!(id.c.abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_has_no_inverse() {
        let m = Matrix2::from_rows(
            [Complex64::ONE, Complex64::new(2.0, 0.0)],
            [Complex64::new(2.0, 0.0), Complex64::new(4.0, 0.0)],
        );
        assert!(m.inverse().is_none());
        assert_eq!(ZfPrecoder::new(&m).unwrap_err(), MimoError::SingularChannel);
    }

    #[test]
    fn column_normalisation_is_unit_power() {
        let (n, _) = test_channel().normalize_columns();
        assert!(((n.a.norm_sqr() + n.c.norm_sqr()) - 1.0).abs() < 1e-12);
        assert!(((n.b.norm_sqr() + n.d.norm_sqr()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_forcing_cancels_cross_streams() {
        let h = test_channel();
        let p = ZfPrecoder::new(&h).expect("invertible");
        // H * W must be diagonal.
        let hw = h.mul(p.weights());
        assert!(hw.b.abs() < 1e-12, "cross term {}", hw.b.abs());
        assert!(hw.c.abs() < 1e-12, "cross term {}", hw.c.abs());
        assert!((hw.a - p.gain(0)).abs() < 1e-12);
        assert!((hw.d - p.gain(1)).abs() < 1e-12);
    }

    #[test]
    fn two_receivers_decode_their_own_streams() {
        let h = test_channel();
        let p = ZfPrecoder::new(&h).expect("invertible");
        let m = Modulation::Qpsk;
        let bits0: Vec<u8> = (0..96).map(|k| (k % 3 == 0) as u8).collect();
        let bits1: Vec<u8> = (0..96).map(|k| (k % 5 < 2) as u8).collect();
        let s0 = m.map_all(&bits0);
        let s1 = m.map_all(&bits1);
        let group = p.precode(&s0, &s1, 4).expect("equal lengths");

        for (r, expect) in [(0usize, &bits0), (1usize, &bits1)] {
            let row = if r == 0 { [h.a, h.b] } else { [h.c, h.d] };
            let y = observe(&group, row);
            let (bits, isr) = decode_stream(&y, r, 4, m);
            assert_eq!(&bits, expect, "receiver {r}");
            assert!(isr < 1e-10, "receiver {r} interference {isr}");
        }
    }

    #[test]
    fn without_precoding_streams_interfere() {
        // Identity "precoder": each antenna sends one raw stream; both
        // receivers hear a mixture and the interference ratio is large.
        let h = test_channel();
        let m = Modulation::Qpsk;
        let bits0: Vec<u8> = (0..48).map(|k| (k % 2) as u8).collect();
        let bits1: Vec<u8> = (0..48).map(|k| ((k + 1) % 2) as u8).collect();
        let raw = PrecodedGroup {
            antennas: [
                // training slots then payload, unprecoded
                std::iter::repeat_n(Complex64::ONE, 4)
                    .chain(std::iter::repeat_n(Complex64::ZERO, 4))
                    .chain(m.map_all(&bits0))
                    .collect(),
                std::iter::repeat_n(Complex64::ZERO, 4)
                    .chain(std::iter::repeat_n(Complex64::ONE, 4))
                    .chain(m.map_all(&bits1))
                    .collect(),
            ],
            training_len: 4,
        };
        let y = observe(&raw, [h.a, h.b]);
        let (_, isr) = decode_stream(&y, 0, 4, m);
        assert!(isr > 0.1, "expected strong interference, isr {isr}");
    }

    #[test]
    fn noisy_zero_forcing_still_decodes() {
        let h = test_channel();
        let p = ZfPrecoder::new(&h).expect("invertible");
        let m = Modulation::Qpsk;
        let bits0: Vec<u8> = (0..192).map(|k| (k * 7 % 3 == 0) as u8).collect();
        let bits1: Vec<u8> = (0..192).map(|k| (k * 5 % 4 < 2) as u8).collect();
        let group = p
            .precode(&m.map_all(&bits0), &m.map_all(&bits1), 8)
            .expect("equal lengths");
        // Deterministic small noise.
        let mut y = observe(&group, [h.c, h.d]); // receiver 1
        for (k, v) in y.iter_mut().enumerate() {
            *v += Complex64::new(
                0.02 * ((k * 37 % 11) as f64 / 11.0 - 0.5),
                0.02 * ((k * 53 % 13) as f64 / 13.0 - 0.5),
            );
        }
        let (bits, isr) = decode_stream(&y, 1, 8, m);
        assert_eq!(bits, bits1);
        assert!(isr < 0.01);
    }

    #[test]
    fn mismatched_streams_rejected() {
        let p = ZfPrecoder::new(&test_channel()).expect("invertible");
        let err = p
            .precode(&[Complex64::ONE], &[Complex64::ONE, Complex64::ZERO], 2)
            .unwrap_err();
        assert_eq!(err, MimoError::StreamLengthMismatch);
    }
}
