//! Radix-2 decimation-in-time FFT used for OFDM (de)modulation.
//!
//! The OFDM symbol size in IEEE 802.11a/g/n (20 MHz) is 64 subcarriers, so
//! a simple iterative radix-2 implementation is entirely sufficient. Both
//! directions use the engineering convention: the *inverse* transform
//! carries the `1/N` normalisation, so `ifft(fft(x)) == x`.

use crate::math::Complex64;
use std::sync::OnceLock;

/// Largest transform size (as log2) whose twiddle factors are cached.
/// OFDM uses 64-point transforms (log2 = 6); anything beyond the cache
/// falls back to computing the `cis` recurrence per call.
const MAX_CACHED_LOG2: usize = 12;

/// Per-size forward twiddle tables, keyed by log2(n). Each table holds
/// the butterfly factors of every stage concatenated (stage `len` starts
/// at offset `len/2 - 1` and holds `len/2` factors), `n - 1` in total.
static FWD_TWIDDLES: [OnceLock<Vec<Complex64>>; MAX_CACHED_LOG2 + 1] =
    [const { OnceLock::new() }; MAX_CACHED_LOG2 + 1];
/// Inverse-direction counterpart of [`FWD_TWIDDLES`].
static INV_TWIDDLES: [OnceLock<Vec<Complex64>>; MAX_CACHED_LOG2 + 1] =
    [const { OnceLock::new() }; MAX_CACHED_LOG2 + 1];
/// Per-size bit-reversal permutations, keyed by log2(n). Each entry is
/// the list of `(i, j)` swap pairs (with `i < j`) that the carry-ripple
/// permutation loop would perform, so applying the cached pairs is
/// trivially identical to recomputing the permutation per call.
static BITREV_SWAPS: [OnceLock<Vec<(u32, u32)>>; MAX_CACHED_LOG2 + 1] =
    [const { OnceLock::new() }; MAX_CACHED_LOG2 + 1];

/// Builds one direction's twiddle table for a size-`n` transform using
/// the exact multiplicative recurrence of the butterfly loop, so cached
/// and uncached transforms are bit-identical.
fn build_twiddles(n: usize, sign: f64) -> Vec<Complex64> {
    let mut table = Vec::with_capacity(n.saturating_sub(1));
    let mut len = 2usize;
    while len <= n {
        // lint:allow(as-cast): len <= 2^12, exactly representable in f64
        let angle = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex64::cis(angle);
        let mut w = Complex64::ONE;
        for _ in 0..len / 2 {
            table.push(w);
            w *= wlen;
        }
        len <<= 1;
    }
    table
}

/// Cached twiddle table for a power-of-two `n`, or `None` if `n` is
/// beyond the cache size.
fn twiddles(n: usize, inverse: bool) -> Option<&'static [Complex64]> {
    // lint:allow(as-cast): u32 bit index widened to usize, lossless
    let log2 = n.trailing_zeros() as usize;
    if n != (1 << log2) || log2 > MAX_CACHED_LOG2 {
        return None;
    }
    let (cache, sign) = if inverse {
        (&INV_TWIDDLES[log2], 1.0)
    } else {
        (&FWD_TWIDDLES[log2], -1.0)
    };
    Some(cache.get_or_init(|| build_twiddles(n, sign)).as_slice())
}

/// Errors returned by FFT routines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FftError {
    /// The input length is not a power of two.
    NotPowerOfTwo {
        /// Offending length.
        len: usize,
    },
}

impl std::fmt::Display for FftError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FftError::NotPowerOfTwo { len } => {
                write!(f, "fft length {len} is not a power of two")
            }
        }
    }
}

impl std::error::Error for FftError {}

/// Enumerates the `(i, j)` swap pairs of the size-`n` bit-reversal
/// permutation via the carry-ripple counter.
fn build_bitrev_swaps(n: usize) -> Vec<(u32, u32)> {
    let mut pairs = Vec::new();
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            // lint:allow(as-cast): indices < n <= 2^12 fit in u32
            pairs.push((i as u32, j as u32));
        }
    }
    pairs
}

/// Cached swap-pair list for a power-of-two `n`, or `None` beyond the
/// cache size.
fn bitrev_swaps(n: usize) -> Option<&'static [(u32, u32)]> {
    // lint:allow(as-cast): u32 bit index widened to usize, lossless
    let log2 = n.trailing_zeros() as usize;
    if n != (1 << log2) || log2 > MAX_CACHED_LOG2 {
        return None;
    }
    Some(
        BITREV_SWAPS[log2]
            .get_or_init(|| build_bitrev_swaps(n))
            .as_slice(),
    )
}

fn bit_reverse_permute(data: &mut [Complex64]) {
    let n = data.len();
    if let Some(pairs) = bitrev_swaps(n) {
        for &(i, j) in pairs {
            // lint:allow(as-cast): swap indices were built from usize < n
            data.swap(i as usize, j as usize);
        }
        return;
    }
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            data.swap(i, j);
        }
    }
}

fn transform(data: &mut [Complex64], inverse: bool) -> Result<(), FftError> {
    let n = data.len();
    if n == 0 || !n.is_power_of_two() {
        return Err(FftError::NotPowerOfTwo { len: n });
    }
    bit_reverse_permute(data);
    if let Some(table) = twiddles(n, inverse) {
        let mut len = 2;
        while len <= n {
            let half = len / 2;
            let stage = &table[half - 1..half - 1 + half];
            for chunk in data.chunks_mut(len) {
                for (k, &w) in stage.iter().enumerate() {
                    let u = chunk[k];
                    let v = chunk[k + half] * w;
                    chunk[k] = u + v;
                    chunk[k + half] = u - v;
                }
            }
            len <<= 1;
        }
    } else {
        let sign = if inverse { 1.0 } else { -1.0 };
        let mut len = 2;
        while len <= n {
            let angle = sign * 2.0 * std::f64::consts::PI / len as f64;
            let wlen = Complex64::cis(angle);
            for chunk in data.chunks_mut(len) {
                let mut w = Complex64::ONE;
                let half = len / 2;
                for k in 0..half {
                    let u = chunk[k];
                    let v = chunk[k + half] * w;
                    chunk[k] = u + v;
                    chunk[k + half] = u - v;
                    w *= wlen;
                }
            }
            len <<= 1;
        }
    }
    if inverse {
        let scale = 1.0 / n as f64;
        for x in data.iter_mut() {
            *x = x.scale(scale);
        }
    }
    Ok(())
}

/// In-place forward FFT.
///
/// # Errors
///
/// Returns [`FftError::NotPowerOfTwo`] if `data.len()` is zero or not a
/// power of two.
///
/// # Examples
///
/// ```
/// use carpool_phy::fft::fft_in_place;
/// use carpool_phy::math::Complex64;
///
/// # fn main() -> Result<(), carpool_phy::fft::FftError> {
/// let mut x = vec![Complex64::ONE; 8];
/// fft_in_place(&mut x)?;
/// // A constant signal concentrates all energy in bin 0.
/// assert!((x[0].re - 8.0).abs() < 1e-12);
/// assert!(x[1].abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn fft_in_place(data: &mut [Complex64]) -> Result<(), FftError> {
    transform(data, false)
}

/// In-place inverse FFT with `1/N` normalisation.
///
/// # Errors
///
/// Returns [`FftError::NotPowerOfTwo`] if `data.len()` is zero or not a
/// power of two.
pub fn ifft_in_place(data: &mut [Complex64]) -> Result<(), FftError> {
    transform(data, true)
}

/// Out-of-place forward FFT.
///
/// # Errors
///
/// Returns [`FftError::NotPowerOfTwo`] if the input length is invalid.
pub fn fft(input: &[Complex64]) -> Result<Vec<Complex64>, FftError> {
    let mut out = input.to_vec(); // lint:allow(hot-alloc): per-transform output buffer; twiddles are cached
    fft_in_place(&mut out)?;
    Ok(out)
}

/// Out-of-place inverse FFT with `1/N` normalisation.
///
/// # Errors
///
/// Returns [`FftError::NotPowerOfTwo`] if the input length is invalid.
pub fn ifft(input: &[Complex64]) -> Result<Vec<Complex64>, FftError> {
    let mut out = input.to_vec(); // lint:allow(hot-alloc): per-transform output buffer; twiddles are cached
    ifft_in_place(&mut out)?;
    Ok(out)
}

/// Forward FFT of a *real-valued* signal, at roughly half the cost of
/// the complex transform.
///
/// Packs the even/odd samples into a half-size complex sequence, runs
/// one `N/2`-point complex FFT, and untangles the conjugate-symmetric
/// halves. This is the natural kernel for real correlation metrics on
/// the preamble path — e.g. spectra of the Schmidl–Cox timing metric or
/// matched-filter magnitude profiles — where the imaginary part of the
/// input is identically zero and the full complex transform wastes half
/// its butterflies.
///
/// Returns the full `N`-bin spectrum (the upper half is the conjugate
/// mirror of the lower, as for any real input). Results agree with
/// [`fft`] on the zero-padded complex input to floating-point rounding
/// (not bit-exactly: the half-size factorization evaluates a different
/// but mathematically equal expression).
///
/// # Errors
///
/// Returns [`FftError::NotPowerOfTwo`] if `input.len()` is zero, one,
/// or not a power of two (the split-radix step needs `N >= 2`).
pub fn fft_real(input: &[f64]) -> Result<Vec<Complex64>, FftError> {
    let n = input.len();
    if n < 2 || !n.is_power_of_two() {
        return Err(FftError::NotPowerOfTwo { len: n });
    }
    let half = n / 2;
    // Pack even samples into the real lane and odd samples into the
    // imaginary lane of a half-size complex signal.
    let mut packed: Vec<Complex64> = (0..half)
        .map(|k| Complex64::new(input[2 * k], input[2 * k + 1]))
        .collect(); // lint:allow(hot-alloc): per-transform output buffer; twiddles are cached
    fft_in_place(&mut packed)?;

    // Untangle: for Z = fft(even + i*odd),
    //   E[k] = (Z[k] + conj(Z[-k])) / 2,  O[k] = (Z[k] - conj(Z[-k])) / 2i,
    //   X[k] = E[k] + w^k O[k],  X[k + N/2] = E[k] - w^k O[k].
    let mut out = vec![Complex64::ZERO; n];
    for k in 0..half {
        let zk = packed[k];
        let zmk = packed[(half - k) % half].conj();
        let e = (zk + zmk).scale(0.5);
        let o_times_i = (zk - zmk).scale(0.5); // i * O[k]
        let o = Complex64::new(o_times_i.im, -o_times_i.re);
        // lint:allow(as-cast): k < n <= small power of two, exact in f64
        let angle = -2.0 * std::f64::consts::PI * k as f64 / n as f64;
        let w = Complex64::cis(angle);
        let t = w * o;
        out[k] = e + t;
        out[k + half] = e - t;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: Complex64, b: Complex64) {
        assert!(
            (a - b).abs() < 1e-9,
            "expected {b}, got {a} (delta {})",
            (a - b).abs()
        );
    }

    #[test]
    fn rejects_non_power_of_two() {
        let mut x = vec![Complex64::ZERO; 12];
        assert_eq!(
            fft_in_place(&mut x).unwrap_err(),
            FftError::NotPowerOfTwo { len: 12 }
        );
        assert!(ifft(&[]).is_err());
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let mut x = vec![Complex64::ZERO; 16];
        x[0] = Complex64::ONE;
        fft_in_place(&mut x).unwrap();
        for bin in x {
            assert_close(bin, Complex64::ONE);
        }
    }

    #[test]
    fn single_tone_lands_in_one_bin() {
        let n = 64;
        let tone = 5;
        let x: Vec<Complex64> = (0..n)
            .map(|t| Complex64::cis(2.0 * std::f64::consts::PI * tone as f64 * t as f64 / n as f64))
            .collect();
        let spec = fft(&x).unwrap();
        for (k, bin) in spec.iter().enumerate() {
            if k == tone {
                assert!((bin.abs() - n as f64).abs() < 1e-9);
            } else {
                assert!(bin.abs() < 1e-9, "leakage at bin {k}: {bin}");
            }
        }
    }

    #[test]
    fn round_trip_is_identity() {
        let x: Vec<Complex64> = (0..64)
            .map(|k| Complex64::new((k as f64 * 0.37).sin(), (k as f64 * 0.91).cos()))
            .collect();
        let y = ifft(&fft(&x).unwrap()).unwrap();
        for (a, b) in x.iter().zip(y.iter()) {
            assert_close(*a, *b);
        }
    }

    #[test]
    fn linearity() {
        let a: Vec<Complex64> = (0..32).map(|k| Complex64::new(k as f64, -1.0)).collect();
        let b: Vec<Complex64> = (0..32).map(|k| Complex64::new(0.5, k as f64)).collect();
        let sum: Vec<Complex64> = a.iter().zip(&b).map(|(x, y)| *x + *y).collect();
        let fa = fft(&a).unwrap();
        let fb = fft(&b).unwrap();
        let fsum = fft(&sum).unwrap();
        for k in 0..32 {
            assert_close(fsum[k], fa[k] + fb[k]);
        }
    }

    #[test]
    fn cached_twiddles_are_bit_identical_to_the_recurrence() {
        // The cache must reproduce the butterfly recurrence exactly so
        // printed bench numbers do not move by a ulp.
        for inverse in [false, true] {
            let sign = if inverse { 1.0 } else { -1.0 };
            let table = twiddles(64, inverse).unwrap();
            let mut idx = 0;
            let mut len = 2usize;
            while len <= 64 {
                let angle = sign * 2.0 * std::f64::consts::PI / len as f64;
                let wlen = Complex64::cis(angle);
                let mut w = Complex64::ONE;
                for _ in 0..len / 2 {
                    assert_eq!(table[idx].re.to_bits(), w.re.to_bits());
                    assert_eq!(table[idx].im.to_bits(), w.im.to_bits());
                    idx += 1;
                    w *= wlen;
                }
                len <<= 1;
            }
            assert_eq!(idx, 63);
        }
    }

    #[test]
    fn uncached_sizes_fall_back_to_the_direct_path() {
        let n = 1 << (MAX_CACHED_LOG2 + 1);
        assert!(twiddles(n, false).is_none());
        let mut x = vec![Complex64::ZERO; n];
        x[0] = Complex64::ONE;
        fft_in_place(&mut x).unwrap();
        for bin in x.iter().take(8) {
            assert_close(*bin, Complex64::ONE);
        }
    }

    #[test]
    fn cached_bitrev_swaps_match_the_ripple_loop() {
        for log2 in 1..=6 {
            let n = 1usize << log2;
            let cached = bitrev_swaps(n).unwrap();
            assert_eq!(cached, build_bitrev_swaps(n).as_slice());
        }
        assert!(bitrev_swaps(1 << (MAX_CACHED_LOG2 + 1)).is_none());
        assert!(bitrev_swaps(12).is_none());
    }

    #[test]
    fn real_fft_matches_complex_fft() {
        for n in [2usize, 4, 8, 64, 128] {
            let x: Vec<f64> = (0..n).map(|k| (k as f64 * 0.73).sin() + 0.25).collect();
            let complex_in: Vec<Complex64> = x.iter().map(|&r| Complex64::new(r, 0.0)).collect();
            let want = fft(&complex_in).unwrap();
            let got = fft_real(&x).unwrap();
            assert_eq!(got.len(), n);
            for (a, b) in got.iter().zip(want.iter()) {
                assert_close(*a, *b);
            }
        }
    }

    #[test]
    fn real_fft_spectrum_is_conjugate_symmetric() {
        let x: Vec<f64> = (0..64).map(|k| (k as f64 * 1.3).cos()).collect();
        let spec = fft_real(&x).unwrap();
        for k in 1..32 {
            assert_close(spec[64 - k], spec[k].conj());
        }
    }

    #[test]
    fn real_fft_rejects_bad_lengths() {
        assert!(fft_real(&[]).is_err());
        assert!(fft_real(&[1.0]).is_err());
        assert!(fft_real(&[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn parseval_energy_conservation() {
        let x: Vec<Complex64> = (0..128)
            .map(|k| Complex64::new((k as f64).sin(), (k as f64 * 2.0).cos()))
            .collect();
        let time_energy: f64 = x.iter().map(|s| s.norm_sqr()).sum();
        let spec = fft(&x).unwrap();
        let freq_energy: f64 = spec.iter().map(|s| s.norm_sqr()).sum::<f64>() / 128.0;
        assert!((time_energy - freq_energy).abs() < 1e-6);
    }
}
