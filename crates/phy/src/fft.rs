//! Radix-2 decimation-in-time FFT used for OFDM (de)modulation.
//!
//! The OFDM symbol size in IEEE 802.11a/g/n (20 MHz) is 64 subcarriers, so
//! a simple iterative radix-2 implementation is entirely sufficient. Both
//! directions use the engineering convention: the *inverse* transform
//! carries the `1/N` normalisation, so `ifft(fft(x)) == x`.

use crate::math::Complex64;

/// Errors returned by FFT routines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FftError {
    /// The input length is not a power of two.
    NotPowerOfTwo {
        /// Offending length.
        len: usize,
    },
}

impl std::fmt::Display for FftError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FftError::NotPowerOfTwo { len } => {
                write!(f, "fft length {len} is not a power of two")
            }
        }
    }
}

impl std::error::Error for FftError {}

fn bit_reverse_permute(data: &mut [Complex64]) {
    let n = data.len();
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            data.swap(i, j);
        }
    }
}

fn transform(data: &mut [Complex64], inverse: bool) -> Result<(), FftError> {
    let n = data.len();
    if n == 0 || !n.is_power_of_two() {
        return Err(FftError::NotPowerOfTwo { len: n });
    }
    bit_reverse_permute(data);
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let angle = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex64::cis(angle);
        for chunk in data.chunks_mut(len) {
            let mut w = Complex64::ONE;
            let half = len / 2;
            for k in 0..half {
                let u = chunk[k];
                let v = chunk[k + half] * w;
                chunk[k] = u + v;
                chunk[k + half] = u - v;
                w *= wlen;
            }
        }
        len <<= 1;
    }
    if inverse {
        let scale = 1.0 / n as f64;
        for x in data.iter_mut() {
            *x = x.scale(scale);
        }
    }
    Ok(())
}

/// In-place forward FFT.
///
/// # Errors
///
/// Returns [`FftError::NotPowerOfTwo`] if `data.len()` is zero or not a
/// power of two.
///
/// # Examples
///
/// ```
/// use carpool_phy::fft::fft_in_place;
/// use carpool_phy::math::Complex64;
///
/// # fn main() -> Result<(), carpool_phy::fft::FftError> {
/// let mut x = vec![Complex64::ONE; 8];
/// fft_in_place(&mut x)?;
/// // A constant signal concentrates all energy in bin 0.
/// assert!((x[0].re - 8.0).abs() < 1e-12);
/// assert!(x[1].abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn fft_in_place(data: &mut [Complex64]) -> Result<(), FftError> {
    transform(data, false)
}

/// In-place inverse FFT with `1/N` normalisation.
///
/// # Errors
///
/// Returns [`FftError::NotPowerOfTwo`] if `data.len()` is zero or not a
/// power of two.
pub fn ifft_in_place(data: &mut [Complex64]) -> Result<(), FftError> {
    transform(data, true)
}

/// Out-of-place forward FFT.
///
/// # Errors
///
/// Returns [`FftError::NotPowerOfTwo`] if the input length is invalid.
pub fn fft(input: &[Complex64]) -> Result<Vec<Complex64>, FftError> {
    let mut out = input.to_vec();
    fft_in_place(&mut out)?;
    Ok(out)
}

/// Out-of-place inverse FFT with `1/N` normalisation.
///
/// # Errors
///
/// Returns [`FftError::NotPowerOfTwo`] if the input length is invalid.
pub fn ifft(input: &[Complex64]) -> Result<Vec<Complex64>, FftError> {
    let mut out = input.to_vec();
    ifft_in_place(&mut out)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: Complex64, b: Complex64) {
        assert!(
            (a - b).abs() < 1e-9,
            "expected {b}, got {a} (delta {})",
            (a - b).abs()
        );
    }

    #[test]
    fn rejects_non_power_of_two() {
        let mut x = vec![Complex64::ZERO; 12];
        assert_eq!(
            fft_in_place(&mut x).unwrap_err(),
            FftError::NotPowerOfTwo { len: 12 }
        );
        assert!(ifft(&[]).is_err());
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let mut x = vec![Complex64::ZERO; 16];
        x[0] = Complex64::ONE;
        fft_in_place(&mut x).unwrap();
        for bin in x {
            assert_close(bin, Complex64::ONE);
        }
    }

    #[test]
    fn single_tone_lands_in_one_bin() {
        let n = 64;
        let tone = 5;
        let x: Vec<Complex64> = (0..n)
            .map(|t| Complex64::cis(2.0 * std::f64::consts::PI * tone as f64 * t as f64 / n as f64))
            .collect();
        let spec = fft(&x).unwrap();
        for (k, bin) in spec.iter().enumerate() {
            if k == tone {
                assert!((bin.abs() - n as f64).abs() < 1e-9);
            } else {
                assert!(bin.abs() < 1e-9, "leakage at bin {k}: {bin}");
            }
        }
    }

    #[test]
    fn round_trip_is_identity() {
        let x: Vec<Complex64> = (0..64)
            .map(|k| Complex64::new((k as f64 * 0.37).sin(), (k as f64 * 0.91).cos()))
            .collect();
        let y = ifft(&fft(&x).unwrap()).unwrap();
        for (a, b) in x.iter().zip(y.iter()) {
            assert_close(*a, *b);
        }
    }

    #[test]
    fn linearity() {
        let a: Vec<Complex64> = (0..32).map(|k| Complex64::new(k as f64, -1.0)).collect();
        let b: Vec<Complex64> = (0..32).map(|k| Complex64::new(0.5, k as f64)).collect();
        let sum: Vec<Complex64> = a.iter().zip(&b).map(|(x, y)| *x + *y).collect();
        let fa = fft(&a).unwrap();
        let fb = fft(&b).unwrap();
        let fsum = fft(&sum).unwrap();
        for k in 0..32 {
            assert_close(fsum[k], fa[k] + fb[k]);
        }
    }

    #[test]
    fn parseval_energy_conservation() {
        let x: Vec<Complex64> = (0..128)
            .map(|k| Complex64::new((k as f64).sin(), (k as f64 * 2.0).cos()))
            .collect();
        let time_energy: f64 = x.iter().map(|s| s.norm_sqr()).sum();
        let spec = fft(&x).unwrap();
        let freq_energy: f64 = spec.iter().map(|s| s.norm_sqr()).sum::<f64>() / 128.0;
        assert!((time_energy - freq_energy).abs() < 1e-6);
    }
}
