//! PLCP preamble: short and long training fields.
//!
//! Following the paper's implementation (Section 6), the preamble is two
//! OFDM symbols of STF followed by two OFDM symbols of LTF. The STF is
//! used by real hardware for detection and AGC; in this simulator it is
//! generated faithfully but the receiver relies on the LTF, which carries
//! the known ±1 training sequence on all 52 used subcarriers and yields
//! the least-squares channel estimate Ĥo that standard decoding uses for
//! the whole frame (and that RTE then calibrates).

use crate::fft::ifft;
use crate::math::Complex64;
use crate::ofdm::{carrier_to_bin, CP_LEN, FFT_SIZE, SYMBOL_LEN};

/// L-LTF training values on logical subcarriers -26..=26 (DC included as 0),
/// per IEEE 802.11-2012 Eq. 18-11.
pub(crate) const LTF_SEQUENCE: [i8; 53] = [
    1, 1, -1, -1, 1, 1, -1, 1, -1, 1, 1, 1, 1, 1, 1, -1, -1, 1, 1, -1, 1, -1, 1, 1, 1,
    1, // -26..-1
    0, // DC
    1, -1, -1, 1, 1, -1, 1, -1, 1, -1, -1, -1, -1, -1, 1, 1, -1, -1, 1, -1, 1, -1, 1, 1, 1,
    1, // 1..26
];

/// Known LTF value on a logical carrier index (`-26..=26`).
///
/// # Panics
///
/// Panics if `carrier` is outside `-26..=26`.
pub fn ltf_value(carrier: i32) -> Complex64 {
    assert!(
        (-26..=26).contains(&carrier),
        "carrier {carrier} out of range"
    );
    Complex64::new(LTF_SEQUENCE[(carrier + 26) as usize] as f64, 0.0)
}

/// STF frequency-domain values: nonzero on every 4th subcarrier,
/// normalised per IEEE 802.11-2012 Eq. 18-8.
fn stf_bins() -> Vec<Complex64> {
    let s = (13.0f64 / 6.0).sqrt();
    let p = Complex64::new(s, s);
    let n = Complex64::new(-s, -s);
    // (carrier, value) pairs from the standard.
    let entries: [(i32, Complex64); 12] = [
        (-24, p),
        (-20, n),
        (-16, p),
        (-12, n),
        (-8, n),
        (-4, p),
        (4, n),
        (8, n),
        (12, p),
        (16, p),
        (20, p),
        (24, p),
    ];
    let mut bins = vec![Complex64::ZERO; FFT_SIZE];
    for (c, v) in entries {
        bins[carrier_to_bin(c)] = v;
    }
    bins
}

/// LTF frequency-domain values over the 64 FFT bins.
pub(crate) fn ltf_bins() -> Vec<Complex64> {
    let mut bins = vec![Complex64::ZERO; FFT_SIZE];
    for c in -26..=26i32 {
        if c == 0 {
            continue;
        }
        bins[carrier_to_bin(c)] = ltf_value(c);
    }
    bins
}

/// Number of OFDM symbols in the preamble (2 STF + 2 LTF).
pub(crate) const PREAMBLE_SYMBOLS: usize = 4;
/// Total preamble length in samples.
pub const PREAMBLE_LEN: usize = PREAMBLE_SYMBOLS * SYMBOL_LEN;

fn symbol_with_cp(bins: &[Complex64]) -> Vec<Complex64> {
    // lint:allow(panic): the preamble tables are fixed 64-bin arrays and 64 is a power of two
    let time = ifft(bins).expect("64-bin IFFT cannot fail");
    let mut out = Vec::with_capacity(SYMBOL_LEN); // lint:allow(hot-alloc): per-frame preamble build, memoized by the TX waveform cache
    out.extend_from_slice(&time[FFT_SIZE - CP_LEN..]);
    out.extend_from_slice(&time);
    out
}

/// Generates the 4-symbol preamble waveform (2 STF + 2 LTF symbols).
pub fn generate_preamble() -> Vec<Complex64> {
    let stf = symbol_with_cp(&stf_bins());
    let ltf = symbol_with_cp(&ltf_bins());
    let mut out = Vec::with_capacity(PREAMBLE_LEN); // lint:allow(hot-alloc): per-frame preamble build, memoized by the TX waveform cache
    out.extend_from_slice(&stf);
    out.extend_from_slice(&stf);
    out.extend_from_slice(&ltf);
    out.extend_from_slice(&ltf);
    out
}

/// Byte offsets of the two LTF symbols inside the preamble, in samples.
pub fn ltf_offsets() -> [usize; 2] {
    [2 * SYMBOL_LEN, 3 * SYMBOL_LEN]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft::fft;

    #[test]
    fn preamble_has_expected_length() {
        assert_eq!(generate_preamble().len(), PREAMBLE_LEN);
        assert_eq!(PREAMBLE_LEN, 4 * 80);
    }

    #[test]
    fn ltf_sequence_is_pm_one_with_dc_null() {
        assert_eq!(LTF_SEQUENCE.len(), 53);
        assert_eq!(LTF_SEQUENCE[26], 0);
        for (k, &v) in LTF_SEQUENCE.iter().enumerate() {
            if k != 26 {
                assert!(v == 1 || v == -1);
            }
        }
    }

    #[test]
    fn ltf_symbols_are_identical_repetitions() {
        let pre = generate_preamble();
        let [a, b] = ltf_offsets();
        for k in 0..SYMBOL_LEN {
            assert_eq!(pre[a + k], pre[b + k]);
        }
    }

    #[test]
    fn ltf_round_trips_through_fft() {
        let pre = generate_preamble();
        let [a, _] = ltf_offsets();
        let bins = fft(&pre[a + CP_LEN..a + SYMBOL_LEN]).unwrap();
        for c in -26..=26i32 {
            if c == 0 {
                continue;
            }
            let got = bins[carrier_to_bin(c)];
            let want = ltf_value(c);
            assert!((got - want).abs() < 1e-9, "carrier {c}: {got} vs {want}");
        }
    }

    #[test]
    fn stf_has_period_16_structure() {
        // Energy only on every 4th carrier makes the STF time signal
        // periodic with period 16 samples.
        let stf = symbol_with_cp(&stf_bins());
        let body = &stf[CP_LEN..];
        for k in 0..FFT_SIZE - 16 {
            assert!(
                (body[k] - body[k + 16]).abs() < 1e-9,
                "sample {k} not periodic"
            );
        }
    }

    #[test]
    fn preamble_symbols_have_energy() {
        let pre = generate_preamble();
        // 52 used carriers of unit-ish magnitude, 1/64 IFFT normalisation:
        // mean time-domain power ~ 52/64^2 ~ 0.0127.
        let power = crate::math::mean_power(&pre);
        assert!((0.005..0.05).contains(&power), "preamble power {power}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn ltf_value_range_check() {
        ltf_value(27);
    }
}
