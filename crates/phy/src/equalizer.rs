//! Channel estimation and equalisation.
//!
//! The standard 802.11 receiver estimates the per-subcarrier channel once
//! from the LTF preamble (least squares: `Ĥ = R / X` averaged over the
//! two LTF repetitions) and equalises every payload symbol with that one
//! estimate. Residual phase (from CFO or channel drift) is tracked per
//! symbol with the four pilot subcarriers and removed before demapping.
//!
//! Because the injected phase offsets of the side channel rotate *all*
//! subcarriers of a symbol coherently, this pilot-tracking step also
//! transparently removes the injected rotation — exactly the property the
//! paper exploits (Section 5.2): data decoding is unaffected while the
//! tracked total phase exposes the side-channel bits.

use crate::fft::fft;
use crate::math::{wrap_angle, Complex64};
use crate::ofdm::{
    carrier_to_bin, pilot_polarity, FreqSymbol, CP_LEN, DATA_CARRIERS, FFT_SIZE, NUM_PILOTS,
    PILOT_BASE, PILOT_CARRIERS, SYMBOL_LEN,
};
use crate::preamble::ltf_value;

/// Per-subcarrier complex channel estimate over the 64 FFT bins.
///
/// Unused bins hold `1 + 0i` so that equalising a null carrier is a
/// harmless no-op.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelEstimate {
    bins: Vec<Complex64>,
}

impl ChannelEstimate {
    /// An identity (flat, unit-gain) estimate.
    pub fn identity() -> ChannelEstimate {
        ChannelEstimate {
            bins: vec![Complex64::ONE; FFT_SIZE],
        }
    }

    /// Builds an estimate from explicit per-bin values.
    ///
    /// # Panics
    ///
    /// Panics if `bins.len() != 64`.
    pub fn from_bins(bins: Vec<Complex64>) -> ChannelEstimate {
        assert_eq!(bins.len(), FFT_SIZE, "need {FFT_SIZE} bins");
        ChannelEstimate { bins }
    }

    /// Least-squares estimate from the two received LTF symbols.
    ///
    /// Each LTF symbol is `SYMBOL_LEN` time samples (CP included).
    ///
    /// # Panics
    ///
    /// Panics if either slice has the wrong length.
    pub fn from_ltf(ltf1: &[Complex64], ltf2: &[Complex64]) -> ChannelEstimate {
        assert_eq!(ltf1.len(), SYMBOL_LEN, "LTF symbol length");
        assert_eq!(ltf2.len(), SYMBOL_LEN, "LTF symbol length");
        // lint:allow(panic): length asserted to SYMBOL_LEN above, exact FFT size
        let b1 = fft(&ltf1[CP_LEN..]).expect("64-point FFT");
        // lint:allow(panic): length asserted to SYMBOL_LEN above, exact FFT size
        let b2 = fft(&ltf2[CP_LEN..]).expect("64-point FFT");
        let mut bins = vec![Complex64::ONE; FFT_SIZE];
        for c in -26..=26i32 {
            if c == 0 {
                continue;
            }
            let x = ltf_value(c);
            let bin = carrier_to_bin(c);
            let avg = (b1[bin] + b2[bin]).scale(0.5);
            bins[bin] = avg / x;
        }
        ChannelEstimate { bins }
    }

    /// Channel value on a logical carrier.
    pub fn at(&self, carrier: i32) -> Complex64 {
        self.bins[carrier_to_bin(carrier)]
    }

    /// Mutable access for calibration (used by the RTE estimator).
    pub(crate) fn at_mut(&mut self, carrier: i32) -> &mut Complex64 {
        &mut self.bins[carrier_to_bin(carrier)]
    }

    /// Zero-forcing equalisation of a received frequency symbol.
    pub fn equalize(&self, sym: &FreqSymbol) -> FreqSymbol {
        let mut out = FreqSymbol {
            data: Vec::with_capacity(sym.data.len()),
            pilots: [Complex64::ZERO; NUM_PILOTS],
        };
        self.equalize_into(sym, &mut out);
        out
    }

    /// In-place variant of [`ChannelEstimate::equalize`]: writes the
    /// equalised symbol into `out`, reusing its `data` allocation.
    pub fn equalize_into(&self, sym: &FreqSymbol, out: &mut FreqSymbol) {
        out.data.clear();
        out.data.extend(
            sym.data
                .iter()
                .zip(DATA_CARRIERS)
                .map(|(v, c)| *v / self.at(c)),
        );
        for (k, (v, c)) in sym.pilots.iter().zip(PILOT_CARRIERS).enumerate() {
            out.pilots[k] = *v / self.at(c);
        }
    }

    /// Frequency-domain smoothing: replaces each used carrier's value
    /// with the average of used carriers within `window` logical
    /// indices. The channel's frequency response is continuous, so for
    /// delay spreads well inside the cyclic prefix this suppresses
    /// estimation noise (variance shrinks by ~the averaging width) at
    /// the cost of bias on strongly frequency-selective channels.
    ///
    /// `window = 0` returns the estimate unchanged.
    pub fn smoothed(&self, window: usize) -> ChannelEstimate {
        if window == 0 {
            return self.clone();
        }
        let used: Vec<i32> = (-26..=26).filter(|&c| c != 0).collect();
        let mut bins = self.bins.clone();
        for &c in &used {
            let mut acc = Complex64::ZERO;
            let mut n = 0usize;
            for &other in &used {
                if (other - c).unsigned_abs() as usize <= window {
                    acc += self.at(other);
                    n += 1;
                }
            }
            bins[carrier_to_bin(c)] = acc / n as f64;
        }
        ChannelEstimate { bins }
    }

    /// Mean squared error against another estimate over used carriers.
    pub fn mse(&self, other: &ChannelEstimate) -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for c in -26..=26i32 {
            if c == 0 {
                continue;
            }
            sum += (self.at(c) - other.at(c)).norm_sqr();
            n += 1;
        }
        sum / n as f64
    }
}

/// Estimates the complex noise variance per sample from the difference
/// of the two (identical) received LTF symbols: `var = E|l1 - l2|^2 / 2`.
///
/// # Panics
///
/// Panics if the slices have different or zero lengths.
pub fn estimate_noise_from_ltf(ltf1: &[Complex64], ltf2: &[Complex64]) -> f64 {
    assert_eq!(ltf1.len(), ltf2.len(), "LTF lengths differ");
    assert!(!ltf1.is_empty(), "empty LTF");
    let diff_power: f64 = ltf1
        .iter()
        .zip(ltf2)
        .map(|(a, b)| (*a - *b).norm_sqr())
        .sum::<f64>()
        / ltf1.len() as f64;
    diff_power / 2.0
}

/// Result of pilot-based phase tracking for one symbol.
#[derive(Debug, Clone, Copy, PartialEq)]
// lint:allow(dead-api): appears in pub signatures; callers use it structurally without naming the type
pub struct PhaseTrack {
    /// Total measured common phase offset of the symbol, radians in
    /// `(-pi, pi]`. Includes both inherent (CFO/channel drift) and any
    /// injected side-channel rotation.
    pub offset: f64,
    /// Magnitude-weighted confidence of the measurement (sum of pilot
    /// correlation magnitudes).
    pub confidence: f64,
}

/// Estimates the common phase rotation of an equalised symbol from its
/// four pilots, given the symbol index (for pilot polarity).
pub fn track_phase(equalized: &FreqSymbol, symbol_index: usize) -> PhaseTrack {
    let p = pilot_polarity(symbol_index);
    let mut acc = Complex64::ZERO;
    for (rx, base) in equalized.pilots.iter().zip(PILOT_BASE) {
        let expected = Complex64::new(base * p, 0.0);
        acc += *rx * expected.conj();
    }
    PhaseTrack {
        offset: wrap_angle(acc.arg()),
        confidence: acc.abs(),
    }
}

/// Removes a common phase rotation from all subcarriers of a symbol.
pub fn compensate_phase(sym: &mut FreqSymbol, offset: f64) {
    let r = Complex64::cis(-offset);
    for d in &mut sym.data {
        *d *= r;
    }
    for p in &mut sym.pilots {
        *p *= r;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modulation::Modulation;
    use crate::ofdm::modulate_symbol;
    use crate::preamble::{generate_preamble, ltf_offsets};

    fn apply_flat_channel(samples: &[Complex64], h: Complex64) -> Vec<Complex64> {
        samples.iter().map(|s| *s * h).collect()
    }

    #[test]
    fn identity_estimate_is_transparent() {
        let est = ChannelEstimate::identity();
        let data = Modulation::Qpsk.map_all(&[1u8, 0, 1, 1].repeat(24));
        let sym = FreqSymbol::with_standard_pilots(data.clone(), 0);
        let eq = est.equalize(&sym);
        for (a, b) in eq.data.iter().zip(&data) {
            assert!((*a - *b).abs() < 1e-12);
        }
    }

    #[test]
    fn ltf_estimation_recovers_flat_channel() {
        let h = Complex64::from_polar(0.8, 0.6);
        let pre = apply_flat_channel(&generate_preamble(), h);
        let [a, b] = ltf_offsets();
        let est = ChannelEstimate::from_ltf(&pre[a..a + SYMBOL_LEN], &pre[b..b + SYMBOL_LEN]);
        for c in [-26, -7, 1, 21, 26] {
            assert!((est.at(c) - h).abs() < 1e-9, "carrier {c}");
        }
    }

    #[test]
    fn equalization_inverts_channel() {
        let h = Complex64::from_polar(0.5, -1.2);
        let bits: Vec<u8> = (0..96).map(|k| (k % 5 < 2) as u8).collect();
        let data = Modulation::Qpsk.map_all(&bits);
        let sym = FreqSymbol::with_standard_pilots(data, 7);
        let time = apply_flat_channel(&modulate_symbol(&sym).unwrap(), h);

        let pre = apply_flat_channel(&generate_preamble(), h);
        let [a, b] = ltf_offsets();
        let est = ChannelEstimate::from_ltf(&pre[a..a + SYMBOL_LEN], &pre[b..b + SYMBOL_LEN]);

        let rx = crate::ofdm::demodulate_symbol(&time).unwrap();
        let eq = est.equalize(&rx);
        assert_eq!(Modulation::Qpsk.demap_all(&eq.data), bits);
    }

    #[test]
    fn phase_tracking_measures_injected_rotation() {
        let data = Modulation::Bpsk.map_all(&[1u8; 48]);
        for &angle in &[0.1, 0.7, -1.4, std::f64::consts::FRAC_PI_2] {
            let mut sym = FreqSymbol::with_standard_pilots(data.clone(), 5);
            sym.rotate(angle);
            let track = track_phase(&sym, 5);
            assert!(
                (track.offset - angle).abs() < 1e-9,
                "angle {angle}: measured {}",
                track.offset
            );
            assert!(track.confidence > 3.9);
        }
    }

    #[test]
    fn phase_compensation_restores_data() {
        let bits: Vec<u8> = (0..48).map(|k| (k % 2) as u8).collect();
        let data = Modulation::Bpsk.map_all(&bits);
        let mut sym = FreqSymbol::with_standard_pilots(data, 2);
        sym.rotate(1.0);
        let track = track_phase(&sym, 2);
        compensate_phase(&mut sym, track.offset);
        assert_eq!(Modulation::Bpsk.demap_all(&sym.data), bits);
    }

    #[test]
    fn tracking_uses_polarity_correctly() {
        // At a symbol index with negative polarity, uncompensated pilots
        // would read as a pi rotation; polarity handling must yield ~0.
        let data = Modulation::Bpsk.map_all(&[0u8; 48]);
        let idx = 4; // polarity -1 in the standard sequence
        assert_eq!(pilot_polarity(idx), -1.0);
        let sym = FreqSymbol::with_standard_pilots(data, idx);
        let track = track_phase(&sym, idx);
        assert!(track.offset.abs() < 1e-9);
    }

    #[test]
    fn mse_zero_against_self() {
        let est = ChannelEstimate::identity();
        assert_eq!(est.mse(&est), 0.0);
    }

    #[test]
    fn smoothing_reduces_noise_on_flat_channels() {
        // A flat channel observed through noisy per-carrier estimates:
        // averaging across carriers must approach the truth.
        let h = Complex64::from_polar(0.9, 0.4);
        let mut bins = vec![Complex64::ONE; FFT_SIZE];
        for (k, c) in (-26..=26i32).filter(|&c| c != 0).enumerate() {
            // Deterministic pseudo-noise per carrier.
            let n = Complex64::new(
                ((k * 37 % 17) as f64 / 17.0 - 0.5) * 0.3,
                ((k * 53 % 19) as f64 / 19.0 - 0.5) * 0.3,
            );
            bins[carrier_to_bin(c)] = h + n;
        }
        let noisy = ChannelEstimate::from_bins(bins);
        let truth = {
            let mut b = vec![Complex64::ONE; FFT_SIZE];
            for c in (-26..=26i32).filter(|&c| c != 0) {
                b[carrier_to_bin(c)] = h;
            }
            ChannelEstimate::from_bins(b)
        };
        let before = noisy.mse(&truth);
        let after = noisy.smoothed(4).mse(&truth);
        assert!(after < before / 2.0, "before {before}, after {after}");
    }

    #[test]
    fn smoothing_biases_selective_channels() {
        // A rapidly varying frequency response: wide smoothing must
        // introduce bias (the classic variance/bias tradeoff).
        let mut bins = vec![Complex64::ONE; FFT_SIZE];
        for c in (-26..=26i32).filter(|&c| c != 0) {
            bins[carrier_to_bin(c)] = Complex64::cis(c as f64 * 1.2);
        }
        let selective = ChannelEstimate::from_bins(bins);
        let smoothed = selective.smoothed(6);
        assert!(smoothed.mse(&selective) > 0.1);
    }

    #[test]
    fn zero_window_is_identity() {
        let est = ChannelEstimate::identity();
        assert_eq!(est.smoothed(0), est);
    }
}
