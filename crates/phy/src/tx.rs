//! Transmitter chain: section bits to baseband samples.
//!
//! A PHY frame (PPDU) is a preamble followed by a list of *sections*.
//! Each section has its own MCS, optional scrambling and optional phase
//! offset side channel — which is exactly the flexibility the Carpool
//! frame format needs: the A-HDR and SIG fields are unscrambled BPSK-1/2
//! sections without injection, while each subframe's MAC data is a
//! scrambled section at its receiver's MCS with the side channel active.
//!
//! Per section, the chain is: scramble → convolutional encode →
//! pad to a whole number of OFDM symbols → per-symbol interleave →
//! constellation map → pilot insertion → side-channel rotation → IFFT+CP.

use crate::bits::pad_to_multiple;
use crate::convolutional::encode;
use crate::crc::SmallCrc;
use crate::interleaver::Interleaver;
use crate::math::{wrap_angle, Complex64};
use crate::mcs::Mcs;
use crate::ofdm::{modulate_symbol, FreqSymbol};
use crate::preamble::generate_preamble;
use crate::scrambler::Scrambler;
use crate::sidechannel::PhaseOffsetMod;
use crate::PhyError;

/// Configuration of the per-symbol CRC side channel for a section.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SideChannelConfig {
    /// Phase-offset alphabet (1 or 2 bits per symbol).
    pub modulation: PhaseOffsetMod,
    /// OFDM symbols per CRC group. The paper's measurement study found
    /// one symbol per group with the 2-bit alphabet optimal (Section 5.2).
    pub group_symbols: usize,
}

impl Default for SideChannelConfig {
    fn default() -> Self {
        SideChannelConfig {
            modulation: PhaseOffsetMod::TwoBit,
            group_symbols: 1,
        }
    }
}

impl SideChannelConfig {
    /// CRC width (bits) carried by a group of `symbols` symbols.
    ///
    /// # Panics
    ///
    /// Panics if the resulting width is not within 1..=8 (the paper's
    /// schemes use 1–6 bits).
    pub fn crc_for_group(&self, symbols: usize) -> SmallCrc {
        let width = symbols * self.modulation.bits_per_symbol();
        assert!(
            (1..=8).contains(&width),
            "CRC width {width} unsupported; reduce group_symbols"
        );
        SmallCrc::standard(width as u8)
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), PhyError> {
        let width = self.group_symbols * self.modulation.bits_per_symbol();
        if self.group_symbols == 0 || width > 8 {
            return Err(PhyError::InvalidConfig {
                // lint:allow(hot-alloc): per-frame waveform assembly, memoized by the TX waveform cache
                reason: format!(
                    "side channel group of {} symbols x {} bits unsupported",
                    self.group_symbols,
                    self.modulation.bits_per_symbol()
                ),
            });
        }
        Ok(())
    }
}

/// Specification of one PPDU section to transmit.
#[derive(Debug, Clone, PartialEq)]
pub struct SectionSpec {
    /// Information bits (pre-coding).
    pub bits: Vec<u8>,
    /// Modulation and coding scheme.
    pub mcs: Mcs,
    /// Whether the 802.11 scrambler whitens this section. Header fields
    /// (A-HDR, SIG) are unscrambled so any receiver can parse them.
    pub scramble: bool,
    /// Phase offset side channel carrying per-symbol CRCs, if enabled.
    pub side_channel: Option<SideChannelConfig>,
    /// Transmit this section's *data* subcarriers rotated by 90°
    /// (QBPSK) — the classic 802.11 format-detection trick. Carpool
    /// marks its A-HDR this way so receivers can distinguish Carpool
    /// PPDUs from legacy ones at the first post-preamble symbol (paper
    /// Section 4.3). Pilots stay unrotated, so pilot phase tracking is
    /// unaffected while the data constellation moves to the imaginary
    /// axis.
    pub qbpsk: bool,
}

impl SectionSpec {
    /// An unscrambled BPSK-1/2 header section without side channel
    /// (used for SIG fields and legacy headers).
    pub fn header(bits: Vec<u8>) -> SectionSpec {
        SectionSpec {
            bits,
            mcs: Mcs::BPSK_1_2,
            scramble: false,
            side_channel: None,
            qbpsk: false,
        }
    }

    /// A QBPSK-marked header section — the Carpool A-HDR (Section 4.3
    /// format detection).
    pub fn header_qbpsk(bits: Vec<u8>) -> SectionSpec {
        SectionSpec {
            qbpsk: true,
            ..SectionSpec::header(bits)
        }
    }

    /// A scrambled payload section with the default side channel.
    pub fn payload(bits: Vec<u8>, mcs: Mcs) -> SectionSpec {
        SectionSpec {
            bits,
            mcs,
            scramble: true,
            side_channel: Some(SideChannelConfig::default()),
            qbpsk: false,
        }
    }

    /// A scrambled payload section without side channel (legacy PHY).
    pub fn payload_legacy(bits: Vec<u8>, mcs: Mcs) -> SectionSpec {
        SectionSpec {
            bits,
            mcs,
            scramble: true,
            side_channel: None,
            qbpsk: false,
        }
    }

    /// Number of OFDM symbols this section occupies.
    pub fn symbol_count(&self) -> usize {
        self.mcs.symbols_for_bits(self.bits.len())
    }
}

/// Per-section transmit metadata, kept for receivers and evaluations.
#[derive(Debug, Clone, PartialEq)]
pub struct SectionInfo {
    /// Index of the section's first payload OFDM symbol in the frame.
    pub first_symbol: usize,
    /// Number of OFDM symbols.
    pub num_symbols: usize,
    /// The spec this section was built from.
    pub spec: SectionSpec,
    /// Interleaved coded bits actually placed on each symbol
    /// (reference for raw-BER measurements).
    pub symbol_bits: Vec<Vec<u8>>,
    /// Side-channel values injected per symbol (empty if disabled).
    pub side_values: Vec<u8>,
}

/// A fully modulated PPDU.
#[derive(Debug, Clone, PartialEq)]
pub struct TxFrame {
    /// Baseband samples: preamble followed by payload symbols.
    pub samples: Vec<Complex64>,
    /// Metadata per section.
    pub sections: Vec<SectionInfo>,
}

impl TxFrame {
    /// Total number of payload OFDM symbols (preamble excluded).
    pub fn payload_symbols(&self) -> usize {
        self.sections.iter().map(|s| s.num_symbols).sum()
    }
}

/// Splits a CRC value of `width` bits into per-symbol side-channel
/// values, `bits_per` bits each, first symbol carries the least
/// significant bits.
fn split_crc(value: u8, width: usize, bits_per: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(width.div_ceil(bits_per)); // lint:allow(hot-alloc): per-frame waveform assembly, memoized by the TX waveform cache
    let mut v = value;
    let mut remaining = width;
    while remaining > 0 {
        let take = bits_per.min(remaining);
        out.push(v & ((1 << take) - 1));
        v >>= take;
        remaining -= take;
    }
    out
}

/// Transmits a list of sections as one PPDU.
///
/// # Errors
///
/// Returns [`PhyError::InvalidConfig`] if a section's side-channel
/// configuration is unusable or [`PhyError::EmptyFrame`] if `sections`
/// is empty or contains a section without bits.
///
/// # Examples
///
/// ```
/// use carpool_phy::mcs::Mcs;
/// use carpool_phy::tx::{transmit, SectionSpec};
///
/// # fn main() -> Result<(), carpool_phy::PhyError> {
/// let frame = transmit(&[SectionSpec::payload(vec![1, 0, 1, 1], Mcs::QPSK_1_2)])?;
/// assert!(frame.payload_symbols() >= 1);
/// # Ok(())
/// # }
/// ```
pub fn transmit(sections: &[SectionSpec]) -> Result<TxFrame, PhyError> {
    if sections.is_empty() {
        return Err(PhyError::EmptyFrame);
    }
    let mut samples = generate_preamble();
    let mut infos = Vec::with_capacity(sections.len()); // lint:allow(hot-alloc): per-frame waveform assembly, memoized by the TX waveform cache
    let mut symbol_index = 0usize;
    // Injected rotation of the previous symbol; resets after any
    // non-injected symbol so differential decoding always references the
    // physically previous symbol.
    let mut last_injected = 0.0f64;

    for spec in sections {
        if spec.bits.is_empty() {
            return Err(PhyError::EmptyFrame);
        }
        if let Some(sc) = &spec.side_channel {
            sc.validate()?;
        }
        let mut bits = spec.bits.clone(); // lint:allow(hot-alloc): per-frame waveform assembly, memoized by the TX waveform cache
        if spec.scramble {
            Scrambler::default().scramble_in_place(&mut bits);
        }
        let mut coded = encode(&bits, spec.mcs.code_rate);
        let n_cbps = spec.mcs.coded_bits_per_symbol();
        pad_to_multiple(&mut coded, n_cbps);
        let num_symbols = coded.len() / n_cbps;
        let interleaver = Interleaver::new(spec.mcs.modulation, crate::ofdm::NUM_DATA);

        // Interleave per symbol and build frequency symbols.
        let mut symbol_bits = Vec::with_capacity(num_symbols); // lint:allow(hot-alloc): per-frame waveform assembly, memoized by the TX waveform cache
        let mut freq_symbols = Vec::with_capacity(num_symbols); // lint:allow(hot-alloc): per-frame waveform assembly, memoized by the TX waveform cache
        for (k, chunk) in coded.chunks(n_cbps).enumerate() {
            let interleaved = interleaver.interleave(chunk);
            let mut points = spec.mcs.modulation.map_all(&interleaved);
            if spec.qbpsk {
                // Rotate only the data subcarriers; pilots stay put so
                // phase tracking cannot silently undo the mark.
                for p in &mut points {
                    *p *= Complex64::I;
                }
            }
            let sym = FreqSymbol::with_standard_pilots(points, symbol_index + k);
            symbol_bits.push(interleaved);
            freq_symbols.push(sym);
        }

        // Side-channel injection.
        let mut side_values = Vec::new(); // lint:allow(hot-alloc): per-frame waveform assembly, memoized by the TX waveform cache
        if let Some(sc) = &spec.side_channel {
            let bits_per = sc.modulation.bits_per_symbol();
            let mut sym_pos = 0usize;
            while sym_pos < num_symbols {
                let group = sc.group_symbols.min(num_symbols - sym_pos);
                let crc = sc.crc_for_group(group);
                let group_bits: Vec<u8> = symbol_bits[sym_pos..sym_pos + group]
                    .iter()
                    .flatten()
                    .copied()
                    .collect(); // lint:allow(hot-alloc): per-frame waveform assembly, memoized by the TX waveform cache
                let checksum = crc.compute(&group_bits);
                for v in split_crc(checksum, crc.width() as usize, bits_per) {
                    side_values.push(v);
                }
                sym_pos += group;
            }
            debug_assert_eq!(side_values.len(), num_symbols);
            for (sym, &v) in freq_symbols.iter_mut().zip(&side_values) {
                let delta = sc.modulation.modulate(v);
                last_injected = wrap_angle(last_injected + delta);
                sym.rotate(last_injected);
            }
        } else {
            last_injected = 0.0;
        }

        for sym in &freq_symbols {
            samples.extend(modulate_symbol(sym).map_err(PhyError::Fft)?);
        }

        infos.push(SectionInfo {
            first_symbol: symbol_index,
            num_symbols,
            spec: spec.clone(), // lint:allow(hot-alloc): per-frame waveform assembly, memoized by the TX waveform cache
            symbol_bits,
            side_values,
        });
        symbol_index += num_symbols;
    }

    Ok(TxFrame {
        samples,
        sections: infos,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ofdm::SYMBOL_LEN;
    use crate::preamble::PREAMBLE_LEN;

    #[test]
    fn frame_length_matches_symbol_count() {
        let frame = transmit(&[
            SectionSpec::header(vec![1; 48]),
            SectionSpec::payload([0, 1, 1, 0].repeat(100), Mcs::QAM16_1_2),
        ])
        .unwrap();
        let expected = PREAMBLE_LEN + frame.payload_symbols() * SYMBOL_LEN;
        assert_eq!(frame.samples.len(), expected);
    }

    #[test]
    fn header_sections_have_no_side_values() {
        let frame = transmit(&[SectionSpec::header(vec![1; 48])]).unwrap();
        assert!(frame.sections[0].side_values.is_empty());
    }

    #[test]
    fn side_values_cover_every_symbol() {
        let frame = transmit(&[SectionSpec::payload(vec![1; 500], Mcs::QPSK_1_2)]).unwrap();
        let s = &frame.sections[0];
        assert_eq!(s.side_values.len(), s.num_symbols);
        for &v in &s.side_values {
            assert!(v < 4);
        }
    }

    #[test]
    fn empty_inputs_are_rejected() {
        assert!(matches!(transmit(&[]), Err(PhyError::EmptyFrame)));
        assert!(matches!(
            transmit(&[SectionSpec::header(vec![])]),
            Err(PhyError::EmptyFrame)
        ));
    }

    #[test]
    fn split_crc_orders_lsb_first() {
        assert_eq!(split_crc(0b1101, 4, 2), vec![0b01, 0b11]);
        assert_eq!(split_crc(0b1, 1, 2), vec![0b1]);
        assert_eq!(split_crc(0b101101, 6, 2), vec![0b01, 0b11, 0b10]);
    }

    #[test]
    fn sections_start_at_consecutive_symbols() {
        let frame = transmit(&[
            SectionSpec::header(vec![1; 24]),
            SectionSpec::payload(vec![1; 100], Mcs::QPSK_1_2),
            SectionSpec::payload(vec![0; 100], Mcs::QAM64_3_4),
        ])
        .unwrap();
        let mut next = 0;
        for s in &frame.sections {
            assert_eq!(s.first_symbol, next);
            next += s.num_symbols;
        }
    }

    #[test]
    fn symbol_bits_have_block_size() {
        let frame = transmit(&[SectionSpec::payload(vec![1; 300], Mcs::QAM64_3_4)]).unwrap();
        for bits in &frame.sections[0].symbol_bits {
            assert_eq!(bits.len(), Mcs::QAM64_3_4.coded_bits_per_symbol());
        }
    }

    #[test]
    fn invalid_side_channel_rejected() {
        let spec = SectionSpec {
            bits: vec![1; 10],
            mcs: Mcs::QPSK_1_2,
            scramble: true,
            side_channel: Some(SideChannelConfig {
                modulation: PhaseOffsetMod::TwoBit,
                group_symbols: 5, // 10-bit CRC: unsupported
            }),
            qbpsk: false,
        };
        assert!(matches!(
            transmit(&[spec]),
            Err(PhyError::InvalidConfig { .. })
        ));
    }
}
