//! Real-time channel estimation (RTE, Section 5 of the paper).
//!
//! The standard receiver's channel estimate comes from the preamble only,
//! so it goes stale over a long frame — the cause of the *BER bias*
//! measured in the paper's Fig. 3. RTE treats every correctly decoded
//! OFDM symbol (verified via the per-symbol CRC on the phase offset side
//! channel) as a set of known "data pilots": the receiver re-modulates
//! the decided bits, derives a fresh per-subcarrier estimate
//! `Ĥ_n = D_n / Y_n`, and folds it into the running estimate with the
//! paper's Eq. (3):
//!
//! ```text
//! H̃_n = (H̃_{n-1} + Ĥ_n) / 2   if symbol n decoded correctly
//! H̃_n =  H̃_{n-1}              otherwise
//! ```

use crate::equalizer::ChannelEstimate;
use crate::math::Complex64;
use crate::ofdm::{data_carriers, pilot_polarity, FreqSymbol, PILOT_BASE, PILOT_CARRIERS};

/// How a fresh data-pilot estimate is folded into the running estimate.
///
/// [`CalibrationRule::Average`] is the paper's Eq. (3); the others exist
/// for the ablation study (`ablation_rte_rule` bench).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum CalibrationRule {
    /// `H̃ = (H̃ + Ĥ) / 2` — the paper's rule.
    #[default]
    Average,
    /// `H̃ = Ĥ` — trust the newest symbol entirely.
    Replace,
    /// `H̃ = (1 - alpha) * H̃ + alpha * Ĥ` — exponential smoothing.
    Ewma(f64),
}

impl CalibrationRule {
    fn fold(&self, old: Complex64, fresh: Complex64) -> Complex64 {
        match *self {
            CalibrationRule::Average => (old + fresh).scale(0.5),
            CalibrationRule::Replace => fresh,
            CalibrationRule::Ewma(alpha) => old.scale(1.0 - alpha) + fresh.scale(alpha),
        }
    }
}

/// Running RTE channel estimator.
///
/// # Examples
///
/// ```
/// use carpool_phy::equalizer::ChannelEstimate;
/// use carpool_phy::rte::{CalibrationRule, RteEstimator};
///
/// let rte = RteEstimator::new(ChannelEstimate::identity(), CalibrationRule::Average);
/// assert_eq!(rte.updates(), 0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RteEstimator {
    estimate: ChannelEstimate,
    rule: CalibrationRule,
    updates: usize,
    rejected: usize,
    innovation_gate: f64,
}

impl RteEstimator {
    /// Default innovation gate (see [`RteEstimator::with_innovation_gate`]).
    pub const DEFAULT_INNOVATION_GATE: f64 = 0.35;

    /// Starts from an initial (usually LTF-derived) estimate.
    pub fn new(initial: ChannelEstimate, rule: CalibrationRule) -> RteEstimator {
        RteEstimator {
            estimate: initial,
            rule,
            updates: 0,
            rejected: 0,
            innovation_gate: Self::DEFAULT_INNOVATION_GATE,
        }
    }

    /// Sets the relative innovation gate.
    ///
    /// The premise of RTE is that the channel varies *slowly* relative
    /// to a symbol (Section 5): a genuine data-pilot estimate is always
    /// close to the running one. A fresh estimate whose mean squared
    /// deviation exceeds `gate^2` times the running estimate's mean
    /// power is therefore a mis-decoded symbol that slipped past the
    /// narrow per-symbol CRC (a CRC-2 false positive), and is discarded
    /// instead of corrupting `H̃`. Set to `f64::INFINITY` to disable.
    pub fn with_innovation_gate(mut self, gate: f64) -> RteEstimator {
        self.innovation_gate = gate;
        self
    }

    /// The current calibrated estimate `H̃`.
    pub fn estimate(&self) -> &ChannelEstimate {
        &self.estimate
    }

    /// Number of data-pilot updates applied so far.
    pub fn updates(&self) -> usize {
        self.updates
    }

    /// Number of candidate updates rejected by the innovation gate.
    pub fn rejected(&self) -> usize {
        self.rejected
    }

    /// The folding rule in use.
    pub fn rule(&self) -> CalibrationRule {
        self.rule
    }

    /// Calibrates with one correctly decoded symbol.
    ///
    /// * `received` — the raw received frequency symbol **after common
    ///   phase compensation** (so the estimate keeps the preamble's phase
    ///   convention and the per-symbol tracker stays meaningful).
    /// * `decided` — the re-modulated transmitted data points (48 values)
    ///   corresponding to the receiver's bit decisions.
    /// * `symbol_index` — index for pilot polarity, letting the pilots
    ///   contribute as (always known) training too.
    ///
    /// # Panics
    ///
    /// Panics if `decided.len() != 48`.
    pub fn update(&mut self, received: &FreqSymbol, decided: &[Complex64], symbol_index: usize) {
        assert_eq!(decided.len(), received.data.len(), "decided point count");
        // Innovation gate: compare the fresh per-carrier estimates to the
        // running ones before committing anything.
        if self.innovation_gate.is_finite() {
            let mut deviation = 0.0f64;
            let mut reference = 0.0f64;
            let mut n = 0usize;
            for ((rx, tx), carrier) in received.data.iter().zip(decided).zip(data_carriers()) {
                if tx.norm_sqr() < 1e-12 {
                    continue;
                }
                let fresh = *rx / *tx;
                let current = self.estimate.at(carrier);
                deviation += (fresh - current).norm_sqr();
                reference += current.norm_sqr();
                n += 1;
            }
            if n == 0 || deviation > self.innovation_gate * self.innovation_gate * reference {
                self.rejected += 1;
                return;
            }
        }
        for ((rx, tx), carrier) in received.data.iter().zip(decided).zip(data_carriers()) {
            if tx.norm_sqr() < 1e-12 {
                continue; // cannot divide by a null decision
            }
            let fresh = *rx / *tx;
            // Reliability weighting: dividing by a low-energy (inner)
            // constellation point amplifies receiver noise by 1/|Y|^2 —
            // up to ~20x for inner 64-QAM points. Scale the innovation
            // by min(1, |Y|^2) so weak data pilots nudge rather than
            // overwrite the estimate.
            let weight = tx.norm_sqr().min(1.0);
            let slot = self.estimate.at_mut(carrier);
            let folded = self.rule.fold(*slot, fresh);
            *slot = *slot + (folded - *slot).scale(weight);
        }
        let polarity = pilot_polarity(symbol_index);
        for ((rx, base), carrier) in received.pilots.iter().zip(PILOT_BASE).zip(PILOT_CARRIERS) {
            let known = Complex64::new(base * polarity, 0.0);
            let fresh = *rx / known;
            let slot = self.estimate.at_mut(carrier);
            *slot = self.rule.fold(*slot, fresh);
        }
        self.updates += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modulation::Modulation;

    fn flat_received(data: &[Complex64], h: Complex64, index: usize) -> FreqSymbol {
        let mut sym = FreqSymbol::with_standard_pilots(data.to_vec(), index);
        for d in &mut sym.data {
            *d *= h;
        }
        for p in &mut sym.pilots {
            *p *= h;
        }
        sym
    }

    #[test]
    fn average_rule_converges_to_true_channel() {
        let h_true = Complex64::from_polar(0.7, 0.9);
        let h_stale = Complex64::from_polar(1.0, 0.0);
        let mut bins = vec![h_stale; crate::ofdm::FFT_SIZE];
        // Leave guards at identity value; estimator only touches used bins.
        for b in bins.iter_mut() {
            *b = h_stale;
        }
        let mut rte = RteEstimator::new(ChannelEstimate::from_bins(bins), CalibrationRule::Average)
            .with_innovation_gate(f64::INFINITY);
        let bits: Vec<u8> = (0..96).map(|k| (k % 3 == 0) as u8).collect();
        let tx = Modulation::Qpsk.map_all(&bits);
        for n in 0..12 {
            let rx = flat_received(&tx, h_true, n);
            rte.update(&rx, &tx, n);
        }
        // After 12 halvings the stale component is ~2^-12.
        let got = rte.estimate().at(1);
        assert!((got - h_true).abs() < 1e-3, "estimate {got} vs {h_true}");
        assert_eq!(rte.updates(), 12);
    }

    #[test]
    fn replace_rule_matches_single_update() {
        let h_true = Complex64::from_polar(0.4, -0.5);
        let mut rte = RteEstimator::new(ChannelEstimate::identity(), CalibrationRule::Replace)
            .with_innovation_gate(f64::INFINITY);
        let tx = Modulation::Bpsk.map_all(&[1u8; 48]);
        let rx = flat_received(&tx, h_true, 0);
        rte.update(&rx, &tx, 0);
        assert!((rte.estimate().at(7) - h_true).abs() < 1e-12);
    }

    #[test]
    fn ewma_rule_moves_fractionally() {
        let h_true = Complex64::new(0.0, 1.0);
        let mut rte = RteEstimator::new(ChannelEstimate::identity(), CalibrationRule::Ewma(0.25))
            .with_innovation_gate(f64::INFINITY);
        let tx = Modulation::Bpsk.map_all(&[0u8; 48]);
        let rx = flat_received(&tx, h_true, 0);
        rte.update(&rx, &tx, 0);
        let got = rte.estimate().at(-26);
        let want = Complex64::new(0.75, 0.25);
        assert!((got - want).abs() < 1e-12, "{got} vs {want}");
    }

    #[test]
    fn no_update_leaves_estimate_unchanged() {
        let rte = RteEstimator::new(ChannelEstimate::identity(), CalibrationRule::Average);
        let before = rte.estimate().clone();
        // (Just verify cloning + no spontaneous drift.)
        assert_eq!(rte.estimate(), &before);
        assert_eq!(rte.updates(), 0);
    }

    #[test]
    fn wrong_decisions_pull_estimate_off_without_gate() {
        // Using *incorrect* decided points corrupts the estimate — this
        // is why the per-symbol CRC (and innovation gate) matter.
        let h_true = Complex64::ONE;
        let mut rte = RteEstimator::new(ChannelEstimate::identity(), CalibrationRule::Average)
            .with_innovation_gate(f64::INFINITY);
        let bits_tx = vec![1u8; 48];
        let tx = Modulation::Bpsk.map_all(&bits_tx);
        let wrong = Modulation::Bpsk.map_all(&[0u8; 48]);
        let rx = flat_received(&tx, h_true, 0);
        rte.update(&rx, &wrong, 0);
        let got = rte.estimate().at(3);
        assert!(
            (got - Complex64::ONE).abs() > 0.5,
            "estimate should be off: {got}"
        );
    }

    #[test]
    fn innovation_gate_rejects_bogus_updates() {
        // Same corrupted update, but the default gate blocks it: the
        // implied channel jump is far beyond slow fading.
        let mut rte = RteEstimator::new(ChannelEstimate::identity(), CalibrationRule::Average);
        let tx = Modulation::Bpsk.map_all(&[1u8; 48]);
        let wrong = Modulation::Bpsk.map_all(&[0u8; 48]);
        let rx = flat_received(&tx, Complex64::ONE, 0);
        rte.update(&rx, &wrong, 0);
        assert_eq!(rte.updates(), 0);
        assert_eq!(rte.rejected(), 1);
        assert!((rte.estimate().at(3) - Complex64::ONE).abs() < 1e-12);
    }

    #[test]
    fn innovation_gate_passes_genuine_drift() {
        // A small genuine channel drift must still be folded in.
        let h_drift = Complex64::from_polar(1.05, 0.08);
        let mut rte = RteEstimator::new(ChannelEstimate::identity(), CalibrationRule::Average);
        let tx = Modulation::Qpsk.map_all(&[1u8, 0].repeat(48));
        let rx = flat_received(&tx, h_drift, 0);
        rte.update(&rx, &tx, 0);
        assert_eq!(rte.updates(), 1);
        assert_eq!(rte.rejected(), 0);
    }

    #[test]
    fn default_rule_is_average() {
        assert_eq!(CalibrationRule::default(), CalibrationRule::Average);
    }
}
