//! Property-based invariants of the MAC simulator over random
//! configurations.

use carpool_mac::error_model::BerBiasModel;
use carpool_mac::protocol::Protocol;
use carpool_mac::sim::{HiddenTerminals, SimConfig, Simulator, UplinkTraffic};
use proptest::prelude::*;

fn any_protocol() -> impl Strategy<Value = Protocol> {
    prop::sample::select(Protocol::ALL.to_vec())
}

fn any_config() -> impl Strategy<Value = SimConfig> {
    (
        any_protocol(),
        4usize..20,
        1usize..=2,
        1u64..1000,
        any::<bool>(),
        any::<bool>(),
        prop::option::of(0.0f64..0.6),
    )
        .prop_map(
            |(protocol, num_stas, num_aps, seed, background, rts, hidden)| SimConfig {
                protocol,
                num_stas,
                num_aps,
                duration_s: 1.5,
                seed,
                uplink: background.then(UplinkTraffic::default),
                use_rts_cts: rts,
                hidden_terminals: hidden.map(|fraction| HiddenTerminals { fraction }),
                ..SimConfig::default()
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn simulator_invariants(cfg in any_config()) {
        let report = Simulator::new(cfg.clone(), Box::new(BerBiasModel::calibrated())).run();

        // Time accounting: every station's airtime sums to the duration.
        prop_assert_eq!(report.sta_airtime.len(), cfg.num_stas);
        for (k, share) in report.sta_airtime.iter().enumerate() {
            prop_assert!(
                (share.total() - cfg.duration_s).abs() < 1e-6,
                "sta {}: {}",
                k,
                share.total()
            );
            prop_assert!(share.tx_s >= 0.0 && share.rx_s >= 0.0);
            prop_assert!(share.overhear_s >= 0.0 && share.idle_s >= 0.0);
        }

        // Delays are sane.
        prop_assert!(report.downlink.mean_delay() >= 0.0);
        prop_assert!(report.downlink.max_delay >= report.downlink.mean_delay() - 1e-9);
        prop_assert!(report.uplink.max_delay >= 0.0);

        // Deadline accounting never exceeds total delivery.
        prop_assert!(report.downlink.in_deadline_bytes <= report.downlink.delivered_bytes);
        prop_assert!(report.downlink.in_deadline_frames <= report.downlink.delivered_frames);

        // Channel counters are consistent.
        let ratio = report.channel.collision_ratio();
        prop_assert!((0.0..=1.0).contains(&ratio));
        if report.channel.transmissions > 0 {
            prop_assert!(report.channel.aggregated_frames >= report.channel.transmissions
                || report.channel.aggregated_frames == 0);
            prop_assert!(report.channel.aggregated_receivers <= report.channel.aggregated_frames);
        }
        if cfg.hidden_terminals.is_none() {
            prop_assert_eq!(report.channel.hidden_collisions, 0);
        }

        // Per-STA downlink metrics decompose the aggregate exactly.
        let sta_bytes: u64 = report
            .per_sta_downlink
            .iter()
            .map(|m| m.delivered_bytes)
            .sum();
        prop_assert_eq!(sta_bytes, report.downlink.delivered_bytes);
        let fairness = report.downlink_fairness();
        prop_assert!((0.0..=1.0 + 1e-9).contains(&fairness));
    }

    #[test]
    fn same_seed_is_deterministic(cfg in any_config()) {
        let a = Simulator::new(cfg.clone(), Box::new(BerBiasModel::calibrated())).run();
        let b = Simulator::new(cfg, Box::new(BerBiasModel::calibrated())).run();
        prop_assert_eq!(a.downlink.delivered_bytes, b.downlink.delivered_bytes);
        prop_assert_eq!(a.uplink.delivered_frames, b.uplink.delivered_frames);
        prop_assert_eq!(a.channel.collisions, b.channel.collisions);
        prop_assert_eq!(a.channel.hidden_collisions, b.channel.hidden_collisions);
    }

    #[test]
    fn delivered_never_exceeds_offered(cfg in any_config()) {
        // Two-way VoIP at ~95 kbit/s peak per STA per direction bounds
        // the offered load; delivered bytes cannot exceed it (with a
        // generous margin for packetisation).
        let report = Simulator::new(cfg.clone(), Box::new(BerBiasModel::calibrated())).run();
        let per_sta_bound = 100e3 / 8.0 * cfg.duration_s * 1.2;
        let bound = (cfg.num_stas as f64 * per_sta_bound) as u64;
        prop_assert!(
            report.downlink.delivered_bytes <= bound,
            "downlink {} > bound {}",
            report.downlink.delivered_bytes,
            bound
        );
    }
}
