//! Differential proof that the calendar queue dequeues in exactly the
//! order the old comparison-based `Vec` scan produced: ascending tick,
//! same-tick ties broken by insertion sequence. The reference model is
//! a plain vector popped by linear minimum scan — the same semantics as
//! the pre-engine `sort_by(total_cmp)` + front-drain arrival list.

use carpool_mac::calendar::CalendarQueue;
use proptest::prelude::*;

/// Reference implementation: linear scan for the minimum
/// `(tick, insertion sequence)` pair, mirroring the calendar's
/// clamp-forward rule for pushes behind the monotone cursor.
struct ReferenceQueue {
    live: Vec<(u64, u64)>,
    seq: u64,
    cursor: u64,
}

impl ReferenceQueue {
    fn new() -> ReferenceQueue {
        ReferenceQueue {
            live: Vec::new(),
            seq: 0,
            cursor: 0,
        }
    }

    fn push(&mut self, tick: u64) -> u64 {
        let seq = self.seq;
        self.seq += 1;
        // Events pushed into the past fire at the cursor, exactly as
        // `CalendarQueue::push` clamps them.
        self.live.push((tick.max(self.cursor), seq));
        seq
    }

    fn pop(&mut self) -> Option<(u64, u64)> {
        let best = self
            .live
            .iter()
            .enumerate()
            .min_by_key(|(_, &(tick, seq))| (tick, seq))
            .map(|(k, _)| k)?;
        let (tick, seq) = self.live.swap_remove(best);
        self.cursor = tick;
        Some((tick, seq))
    }
}

/// One interleaving step: enqueue at `tick`, then attempt `pops`
/// dequeues. Ticks span many laps of the smallest (1024-bucket) ring so
/// the horizon-wraparound path is exercised constantly.
fn steps() -> impl Strategy<Value = Vec<(u64, u8)>> {
    prop::collection::vec((0u64..200_000, 0u8..3), 1..120)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Interleaved pushes and pops agree with the reference at every
    // single dequeue, including the final drain.
    #[test]
    fn calendar_matches_comparison_reference(ops in steps()) {
        let mut calendar = CalendarQueue::with_capacity(8);
        let mut reference = ReferenceQueue::new();
        for (tick, pops) in ops {
            let seq = calendar.push(tick, tick);
            prop_assert_eq!(seq, reference.push(tick));
            for _ in 0..pops {
                let got = calendar.pop().map(|(t, s, _)| (t, s));
                prop_assert_eq!(got, reference.pop());
            }
        }
        while let Some((tick, seq, _)) = calendar.pop() {
            prop_assert_eq!(Some((tick, seq)), reference.pop());
        }
        prop_assert_eq!(reference.pop(), None);
        prop_assert!(calendar.is_empty());
    }

    // Pure batch mode — everything enqueued up front, then drained —
    // is exactly the old sorted-`Vec` order. Duplicated ticks force
    // tie-breaks and the narrow range forces bucket-chain collisions.
    #[test]
    fn batch_drain_is_stable_sort_order(ticks in prop::collection::vec(0u64..5_000, 1..200)) {
        let mut calendar = CalendarQueue::with_capacity(ticks.len());
        let mut expected: Vec<(u64, u64)> = ticks
            .iter()
            .enumerate()
            .map(|(seq, &tick)| (tick, seq as u64))
            .collect();
        for &tick in &ticks {
            calendar.push(tick, ());
        }
        expected.sort(); // stable on (tick, seq), seq unique
        let drained: Vec<(u64, u64)> =
            std::iter::from_fn(|| calendar.pop().map(|(t, s, ())| (t, s))).collect();
        prop_assert_eq!(drained, expected);
    }
}
