//! Integration tests for the simulator's observability event stream.

use carpool_mac::error_model::{BerBiasModel, PerfectChannel};
use carpool_mac::protocol::Protocol;
use carpool_mac::sim::{SimConfig, Simulator, UplinkTraffic};
use carpool_obs::{Event, MemoryRecorder, Obs, RingBufferSink};
use std::sync::Arc;

fn run_with_obs(
    protocol: Protocol,
    stas: usize,
) -> (
    Vec<carpool_obs::Stamped>,
    carpool_obs::MetricsSnapshot,
    carpool_mac::metrics::SimReport,
) {
    let cfg = SimConfig {
        protocol,
        num_stas: stas,
        duration_s: 1.0,
        seed: 7,
        uplink: Some(UplinkTraffic::default()),
        ..SimConfig::default()
    };
    let recorder = Arc::new(MemoryRecorder::new());
    let sink = Arc::new(RingBufferSink::new(1 << 20));
    let obs = Obs::new(recorder.clone(), sink.clone());
    let report = Simulator::new(cfg, Box::new(BerBiasModel::default()))
        .with_obs(obs)
        .run();
    (sink.events(), recorder.snapshot(), report)
}

#[test]
fn event_stream_is_monotone_in_simulation_time() {
    let (events, _, _) = run_with_obs(Protocol::Carpool, 10);
    assert!(!events.is_empty(), "an active simulation must emit events");
    let mut prev_t = f64::NEG_INFINITY;
    let mut prev_seq = 0u64;
    for (i, e) in events.iter().enumerate() {
        // SpanEnd events carry wall-clock durations, not sim time.
        if matches!(e.event, Event::SpanEnd { .. }) {
            continue;
        }
        assert!(
            e.t >= prev_t,
            "event {i} ({:?}) at t={} after t={prev_t}",
            e.event,
            e.t
        );
        if i > 0 {
            assert!(e.seq > prev_seq, "seq must strictly increase");
        }
        prev_t = e.t;
        prev_seq = e.seq;
    }
}

#[test]
fn event_stream_agrees_with_report_aggregates() {
    let (events, snap, report) = run_with_obs(Protocol::Carpool, 10);

    let deliveries = events
        .iter()
        .filter(|e| matches!(e.event, Event::MacDelivery { .. }))
        .count() as u64;
    assert_eq!(
        deliveries,
        report.downlink.delivered_frames + report.uplink.delivered_frames
    );

    let delivered_bytes: u64 = events
        .iter()
        .filter_map(|e| match e.event {
            Event::MacDelivery { bytes, .. } => Some(bytes),
            _ => None,
        })
        .sum();
    assert_eq!(
        delivered_bytes,
        report.downlink.delivered_bytes + report.uplink.delivered_bytes
    );

    let drops = events
        .iter()
        .filter(|e| matches!(e.event, Event::MacDrop { .. }))
        .count() as u64;
    assert_eq!(
        drops,
        report.downlink.dropped_frames + report.uplink.dropped_frames
    );

    // Recorder counters mirror the same totals.
    assert_eq!(
        snap.counter("mac.downlink.delivered_frames"),
        report.downlink.delivered_frames
    );
    assert_eq!(
        snap.counter("mac.uplink.delivered_frames"),
        report.uplink.delivered_frames
    );
    assert_eq!(
        snap.counter("mac.transmissions"),
        report.channel.transmissions
    );
    assert_eq!(snap.counter("mac.collisions"), report.channel.collisions);

    // Delay histogram max matches the report's max_delay (drops included
    // in FlowMetrics::max_delay may exceed the delivered-only histogram).
    let h = snap
        .histogram("mac.downlink.delay")
        .expect("delay histogram");
    assert_eq!(h.count(), report.downlink.delivered_frames);
    assert!(h.max() <= report.downlink.max_delay + 1e-12);
}

#[test]
fn obs_does_not_perturb_simulation_results() {
    let cfg = SimConfig {
        protocol: Protocol::Dot11,
        num_stas: 8,
        duration_s: 1.0,
        seed: 3,
        ..SimConfig::default()
    };
    let baseline = Simulator::new(cfg.clone(), Box::new(PerfectChannel)).run();
    let observed = Simulator::new(cfg, Box::new(PerfectChannel))
        .with_obs(Obs::with_sink(Arc::new(RingBufferSink::new(1 << 16))))
        .run();
    assert_eq!(baseline.downlink, observed.downlink);
    assert_eq!(baseline.uplink, observed.uplink);
    assert_eq!(baseline.channel, observed.channel);
}
