//! Generational-index arena for MAC simulator state.
//!
//! Pending frames (and any other per-run bookkeeping) live in a flat
//! slot vector that is allocated once and reused for the whole run:
//! freeing a value pushes its slot onto an intrusive free list, and the
//! next allocation pops it back — no per-event heap traffic after
//! warm-up. Each slot carries a generation counter so a stale
//! [`Handle`] kept across a free/realloc cycle is detected instead of
//! silently aliasing the new occupant (the classic ABA hazard of plain
//! index arenas).
//!
//! Generation parity encodes liveness: odd generations are live, even
//! generations are vacant. A handle is valid only while its generation
//! matches the slot's, so every accessor returns `Option` and the
//! simulator's `let Some(..) else` fallbacks stay panic-free.

/// Sentinel for "no next free slot".
const NIL: u32 = u32::MAX;

/// A generational reference to an arena slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Handle {
    index: u32,
    generation: u32,
}

impl Handle {
    /// The raw slot index (stable while the handle is live).
    pub fn index(&self) -> usize {
        self.index as usize // lint:allow(as-cast): u32 slot index widens to usize
    }
}

#[derive(Debug, Clone)]
struct Slot<T> {
    value: T,
    /// Odd while occupied, even while vacant.
    generation: u32,
    next_free: u32,
}

/// A growable slot arena with generational handles and a free list.
///
/// `T: Default` lets [`Arena::free`] reclaim the stored value with
/// `std::mem::take` instead of leaving a copy behind in the vacant slot.
#[derive(Debug, Clone, Default)]
pub struct Arena<T> {
    slots: Vec<Slot<T>>,
    free_head: u32,
    live: usize,
}

impl<T: Default> Arena<T> {
    /// Creates an empty arena.
    pub fn new() -> Arena<T> {
        Arena {
            slots: Vec::new(),
            free_head: NIL,
            live: 0,
        }
    }

    /// Creates an arena with room for `capacity` live values before the
    /// slot vector has to grow.
    pub fn with_capacity(capacity: usize) -> Arena<T> {
        Arena {
            slots: Vec::with_capacity(capacity),
            free_head: NIL,
            live: 0,
        }
    }

    /// Stores `value`, reusing a vacant slot when one is available.
    pub fn alloc(&mut self, value: T) -> Handle {
        self.live += 1;
        if self.free_head != NIL {
            let index = self.free_head;
            let slot = &mut self.slots[index as usize]; // lint:allow(as-cast): u32 slot index widens to usize
            self.free_head = slot.next_free;
            slot.value = value;
            slot.generation = slot.generation.wrapping_add(1);
            return Handle {
                index,
                generation: slot.generation,
            };
        }
        let index = u32::try_from(self.slots.len()).unwrap_or(u32::MAX - 1);
        // lint:allow(hot-alloc): amortized arena growth; slots are
        // recycled through the free list for the rest of the run
        self.slots.push(Slot {
            value,
            generation: 1,
            next_free: NIL,
        });
        Handle {
            index,
            generation: 1,
        }
    }

    /// Releases the slot behind `handle`, returning its value, or
    /// `None` if the handle is stale.
    pub fn free(&mut self, handle: Handle) -> Option<T> {
        let slot = self.slots.get_mut(handle.index as usize)?; // lint:allow(as-cast): u32 slot index widens to usize
        if slot.generation != handle.generation || handle.generation.is_multiple_of(2) {
            return None;
        }
        slot.generation = slot.generation.wrapping_add(1);
        slot.next_free = self.free_head;
        self.free_head = handle.index;
        self.live -= 1;
        Some(std::mem::take(&mut slot.value))
    }

    /// Shared access to a live value.
    pub fn get(&self, handle: Handle) -> Option<&T> {
        let slot = self.slots.get(handle.index as usize)?; // lint:allow(as-cast): u32 slot index widens to usize
        (slot.generation == handle.generation && handle.generation % 2 == 1).then_some(&slot.value)
    }

    /// Mutable access to a live value.
    pub fn get_mut(&mut self, handle: Handle) -> Option<&mut T> {
        let slot = self.slots.get_mut(handle.index as usize)?; // lint:allow(as-cast): u32 slot index widens to usize
        (slot.generation == handle.generation && handle.generation % 2 == 1)
            .then_some(&mut slot.value)
    }

    /// Number of live values.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no values are live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total slots ever created (live + vacant) — the arena's
    /// high-water mark.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_then_get_roundtrips() {
        let mut arena: Arena<u64> = Arena::new();
        let h = arena.alloc(42);
        assert_eq!(arena.get(h), Some(&42));
        assert_eq!(arena.len(), 1);
    }

    #[test]
    fn free_returns_value_and_recycles_slot() {
        let mut arena: Arena<u64> = Arena::new();
        let a = arena.alloc(1);
        assert_eq!(arena.free(a), Some(1));
        assert!(arena.is_empty());
        let b = arena.alloc(2);
        // Same slot, new generation.
        assert_eq!(a.index(), b.index());
        assert_ne!(a, b);
        assert_eq!(arena.slot_count(), 1);
    }

    #[test]
    fn stale_handle_is_rejected_after_reuse() {
        let mut arena: Arena<u64> = Arena::new();
        let a = arena.alloc(1);
        arena.free(a);
        let _b = arena.alloc(2);
        assert_eq!(arena.get(a), None);
        assert_eq!(arena.free(a), None);
        assert_eq!(arena.len(), 1);
    }

    #[test]
    fn double_free_is_a_no_op() {
        let mut arena: Arena<u64> = Arena::new();
        let a = arena.alloc(7);
        assert_eq!(arena.free(a), Some(7));
        assert_eq!(arena.free(a), None);
        assert!(arena.is_empty());
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut arena: Arena<u64> = Arena::new();
        let a = arena.alloc(5);
        if let Some(v) = arena.get_mut(a) {
            *v += 10;
        }
        assert_eq!(arena.get(a), Some(&15));
    }

    #[test]
    fn free_list_is_lifo_and_bounds_slot_growth() {
        let mut arena: Arena<u64> = Arena::new();
        let handles: Vec<Handle> = (0..8).map(|k| arena.alloc(k)).collect();
        for &h in &handles {
            arena.free(h);
        }
        for k in 0..8 {
            arena.alloc(100 + k);
        }
        // All churn reused the original 8 slots.
        assert_eq!(arena.slot_count(), 8);
        assert_eq!(arena.len(), 8);
    }
}
