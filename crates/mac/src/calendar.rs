//! Indexed calendar queue over fixed slot-time buckets.
//!
//! The MAC simulator's future events are keyed by an integer *slot
//! tick* (simulation time divided by the 9 µs slot). A calendar queue
//! maps each tick onto a bucket of a power-of-two ring (`bucket =
//! tick & mask`); each bucket holds an intrusive FIFO chain of entries
//! living in a flat slab with a free list, so steady-state push/pop
//! does no heap allocation and no comparisons beyond a short chain
//! walk — unlike a `BinaryHeap`, which pays `O(log n)` comparisons and
//! moves per operation.
//!
//! Events whose tick lies beyond the ring horizon (more than one lap
//! ahead) simply wait in their bucket's chain across laps: the scan
//! cursor only consumes an entry whose tick matches the tick under
//! inspection, so a "next year" entry is skipped until the cursor
//! comes back around. Dequeue order is exactly ascending
//! `(tick, insertion sequence)` — same-tick ties break by insertion
//! order, which is what the simulator's sorted-`Vec` scan used to
//! provide (see `calendar_proptests.rs` for the differential proof).

/// Sentinel for "no entry".
const NIL: u32 = u32::MAX;

/// Default bucket count when no sizing hint is given.
const DEFAULT_BUCKETS: usize = 1024;

/// Hard cap on the ring size (keeps per-domain memory modest even for
/// multi-million-event scenarios; longer chains amortize fine).
const MAX_BUCKETS: usize = 1 << 16;

#[derive(Debug, Clone)]
struct Entry<P> {
    tick: u64,
    seq: u64,
    next: u32,
    payload: P,
}

/// Cached location of the earliest entry, so `peek` followed by `pop`
/// costs one scan, not two.
#[derive(Debug, Clone, Copy)]
struct Earliest {
    entry: u32,
    /// Predecessor in the bucket chain (`NIL` when at the head).
    prev: u32,
    bucket: usize,
    tick: u64,
}

/// A calendar queue with `(tick, insertion sequence)` dequeue order.
#[derive(Debug, Clone)]
pub struct CalendarQueue<P> {
    /// Per-bucket `(head, tail)` of the intrusive FIFO chain.
    chains: Vec<(u32, u32)>,
    /// One bit per bucket: chain non-empty. Lets the cursor skip runs
    /// of 64 empty buckets per word probe.
    occupancy: Vec<u64>,
    entries: Vec<Entry<P>>,
    free_head: u32,
    mask: u64,
    /// No live entry has `tick < cursor`; advances monotonically.
    cursor: u64,
    seq: u64,
    len: usize,
    earliest: Option<Earliest>,
}

impl<P> Default for CalendarQueue<P> {
    fn default() -> Self {
        CalendarQueue::with_capacity(DEFAULT_BUCKETS)
    }
}

impl<P> CalendarQueue<P> {
    /// Creates a queue sized for roughly `events` concurrent entries:
    /// the bucket ring is the next power of two (clamped to
    /// [1024, 65536]) and the entry slab is pre-reserved so pushes do
    /// not allocate until the population exceeds the hint.
    pub fn with_capacity(events: usize) -> CalendarQueue<P> {
        let buckets = events
            .next_power_of_two()
            .clamp(DEFAULT_BUCKETS, MAX_BUCKETS);
        CalendarQueue {
            chains: vec![(NIL, NIL); buckets],
            occupancy: vec![0u64; buckets.div_ceil(64)],
            entries: Vec::with_capacity(events),
            free_head: NIL,
            mask: (buckets - 1) as u64, // lint:allow(as-cast): bucket count is a power of two <= 2^16, widens to u64
            cursor: 0,
            seq: 0,
            len: 0,
            earliest: None,
        }
    }

    /// Number of queued entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Enqueues `payload` at `tick` and returns its insertion sequence
    /// number. A tick earlier than an already-dequeued tick is clamped
    /// forward: events pushed into the past fire immediately rather
    /// than violating the monotone cursor.
    pub fn push(&mut self, tick: u64, payload: P) -> u64 {
        let tick = tick.max(self.cursor);
        let seq = self.seq;
        self.seq += 1;
        let index = if self.free_head != NIL {
            let index = self.free_head;
            let slot = &mut self.entries[index as usize]; // lint:allow(as-cast): u32 entry index widens to usize
            self.free_head = slot.next;
            *slot = Entry {
                tick,
                seq,
                next: NIL,
                payload,
            };
            index
        } else {
            let index = u32::try_from(self.entries.len()).unwrap_or(u32::MAX - 1);
            // lint:allow(hot-alloc): amortized slab growth; entries are
            // recycled through the free list for the rest of the run
            self.entries.push(Entry {
                tick,
                seq,
                next: NIL,
                payload,
            });
            index
        };
        let bucket = (tick & self.mask) as usize; // lint:allow(as-cast): masked to the bucket count, fits usize
        let (head, tail) = self.chains[bucket];
        if head == NIL {
            self.chains[bucket] = (index, index);
            self.occupancy[bucket / 64] |= 1u64 << (bucket % 64);
        } else {
            self.entries[tail as usize].next = index; // lint:allow(as-cast): u32 entry index widens to usize
            self.chains[bucket] = (head, index);
        }
        self.len += 1;
        // A strictly-earlier tick outdates the cached earliest; an
        // equal tick keeps it (the cache has the smaller sequence).
        if self.earliest.is_some_and(|e| tick < e.tick) {
            self.earliest = None;
        }
        seq
    }

    /// The earliest entry's `(tick, payload)` without removing it.
    pub fn peek(&mut self) -> Option<(u64, &P)> {
        self.locate_earliest();
        let found = self.earliest?;
        let entry = &self.entries[found.entry as usize]; // lint:allow(as-cast): u32 entry index widens to usize
        Some((entry.tick, &entry.payload))
    }

    /// Removes and returns the earliest entry as
    /// `(tick, insertion sequence, payload)`.
    pub fn pop(&mut self) -> Option<(u64, u64, P)>
    where
        P: Default,
    {
        self.locate_earliest();
        let found = self.earliest.take()?;
        let index = found.entry as usize; // lint:allow(as-cast): u32 entry index widens to usize
        let next = self.entries[index].next;
        if found.prev == NIL {
            let (_, tail) = self.chains[found.bucket];
            if tail == found.entry {
                self.chains[found.bucket] = (NIL, NIL);
                self.occupancy[found.bucket / 64] &= !(1u64 << (found.bucket % 64));
            } else {
                self.chains[found.bucket] = (next, tail);
            }
        } else {
            self.entries[found.prev as usize].next = next; // lint:allow(as-cast): u32 entry index widens to usize
            let (head, tail) = self.chains[found.bucket];
            if tail == found.entry {
                self.chains[found.bucket] = (head, found.prev);
            }
        }
        let slot = &mut self.entries[index];
        let tick = slot.tick;
        let seq = slot.seq;
        let payload = std::mem::take(&mut slot.payload);
        slot.next = self.free_head;
        self.free_head = found.entry;
        self.len -= 1;
        Some((tick, seq, payload))
    }

    /// Finds the earliest `(tick, seq)` entry, advancing the cursor
    /// over provably-empty ticks as it goes (each tick is cleared at
    /// most once per queue lifetime, so scans amortize to O(1)).
    fn locate_earliest(&mut self) {
        if self.earliest.is_some() || self.len == 0 {
            return;
        }
        loop {
            let bucket = (self.cursor & self.mask) as usize; // lint:allow(as-cast): masked to the bucket count, fits usize
            let word = self.occupancy[bucket / 64];
            if word == 0 {
                // 64 consecutive empty buckets: no entry of any lap
                // lives at these ticks; jump to the next word edge.
                let in_word = (bucket % 64) as u64; // lint:allow(as-cast): bit offset < 64 widens to u64
                self.cursor += 64 - in_word;
                continue;
            }
            if word & (1u64 << (bucket % 64)) == 0 {
                self.cursor += 1;
                continue;
            }
            // Chains are appended in push order, so the first entry
            // matching this tick already has the minimum sequence.
            let mut prev = NIL;
            let mut walk = self.chains[bucket].0;
            let mut found = false;
            while walk != NIL {
                let entry = &self.entries[walk as usize]; // lint:allow(as-cast): u32 entry index widens to usize
                if entry.tick == self.cursor {
                    self.earliest = Some(Earliest {
                        entry: walk,
                        prev,
                        bucket,
                        tick: self.cursor,
                    });
                    found = true;
                    break;
                }
                prev = walk;
                walk = entry.next;
            }
            if found {
                return;
            }
            // Only future-lap entries here; this tick is done for good.
            self.cursor += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_tick_order() {
        let mut q = CalendarQueue::with_capacity(8);
        q.push(5, "e");
        q.push(1, "a");
        q.push(3, "c");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, _, p)| p)).collect();
        assert_eq!(order, ["a", "c", "e"]);
    }

    #[test]
    fn same_tick_ties_break_by_insertion_sequence() {
        let mut q = CalendarQueue::with_capacity(8);
        q.push(2, "first");
        q.push(2, "second");
        q.push(2, "third");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, _, p)| p)).collect();
        assert_eq!(order, ["first", "second", "third"]);
    }

    #[test]
    fn entries_beyond_ring_horizon_wait_for_their_lap() {
        // 1024-bucket ring: ticks 10 and 10 + 3*1024 share a bucket.
        let mut q = CalendarQueue::with_capacity(8);
        let far = 10 + 3 * 1024;
        q.push(far, "far");
        q.push(10, "near");
        assert_eq!(q.pop().map(|(t, _, p)| (t, p)), Some((10, "near")));
        assert_eq!(q.pop().map(|(t, _, p)| (t, p)), Some((far, "far")));
        assert!(q.is_empty());
    }

    #[test]
    fn peek_matches_pop_and_does_not_consume() {
        let mut q = CalendarQueue::with_capacity(8);
        q.push(7, 70u32);
        q.push(4, 40u32);
        assert_eq!(q.peek(), Some((4, &40)));
        assert_eq!(q.peek(), Some((4, &40)));
        assert_eq!(q.pop(), Some((4, 1, 40)));
        assert_eq!(q.peek(), Some((7, &70)));
    }

    #[test]
    fn push_behind_cursor_is_clamped_forward() {
        let mut q = CalendarQueue::with_capacity(8);
        q.push(100, "late");
        assert_eq!(q.pop().map(|(t, _, p)| (t, p)), Some((100, "late")));
        // Tick 3 already passed; the entry fires at the cursor instead.
        q.push(3, "past");
        let (tick, _, p) = q.pop().expect("entry present");
        assert_eq!(p, "past");
        assert!(tick >= 100, "clamped tick {tick}");
    }

    #[test]
    fn interleaved_push_pop_keeps_global_order() {
        let mut q = CalendarQueue::with_capacity(4);
        q.push(10, 1u32);
        q.push(20, 2u32);
        assert_eq!(q.pop().map(|x| x.2), Some(1));
        q.push(15, 3u32);
        q.push(10_000, 4u32);
        assert_eq!(q.pop().map(|x| x.2), Some(3));
        assert_eq!(q.pop().map(|x| x.2), Some(2));
        assert_eq!(q.pop().map(|x| x.2), Some(4));
        assert_eq!(q.pop().map(|x| x.2), None);
    }

    #[test]
    fn slab_is_recycled_through_free_list() {
        let mut q = CalendarQueue::with_capacity(1024);
        for round in 0..4u64 {
            for k in 0..100u64 {
                q.push(round * 1000 + k, k);
            }
            for _ in 0..100 {
                assert!(q.pop().is_some());
            }
        }
        // 400 events total, never more than 100 live.
        assert!(q.entries.len() <= 100, "slab grew to {}", q.entries.len());
    }
}
