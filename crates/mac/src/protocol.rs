//! The five MAC protocols compared in the paper's evaluation
//! (Section 7.2.1): IEEE 802.11, A-MPDU, MU-Aggregation, WiFox and
//! Carpool.

use crate::error_model::EstimationScheme;
use carpool_frame::aggregation::AggregationPolicy;
use carpool_frame::airtime::{ahdr_airtime, sig_airtime, CONTROL_MCS, CW_MIN};

/// A downlink MAC protocol variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protocol {
    /// Plain IEEE 802.11 DCF: one frame per transmission.
    Dot11,
    /// IEEE 802.11n MPDU aggregation for a single receiver.
    Ampdu,
    /// Multi-receiver aggregation *without* RTE (per-receiver MAC
    /// addresses in the PHY header, standard channel estimation).
    MuAggregation,
    /// WiFox: plain 802.11 frames, but the AP's channel access is
    /// prioritised to counter downlink/uplink asymmetry.
    Wifox,
    /// Carpool: multi-receiver aggregation with the Bloom-filter A-HDR
    /// and real-time channel estimation.
    Carpool,
}

impl Protocol {
    /// All protocols, in the paper's comparison order.
    pub const ALL: [Protocol; 5] = [
        Protocol::Carpool,
        Protocol::MuAggregation,
        Protocol::Ampdu,
        Protocol::Dot11,
        Protocol::Wifox,
    ];

    /// Frame-selection policy at the AP.
    pub fn aggregation_policy(&self) -> AggregationPolicy {
        match self {
            Protocol::Dot11 | Protocol::Wifox => AggregationPolicy::None,
            Protocol::Ampdu => AggregationPolicy::Ampdu,
            Protocol::MuAggregation | Protocol::Carpool => AggregationPolicy::MultiUser,
        }
    }

    /// Channel-estimation scheme of this protocol's receivers.
    pub fn estimation(&self) -> EstimationScheme {
        match self {
            Protocol::Carpool => EstimationScheme::Rte,
            _ => EstimationScheme::Standard,
        }
    }

    /// Minimum contention window of the AP (all protocols use the
    /// standard CW; WiFox's priority is modelled via
    /// [`Protocol::has_downlink_priority`] instead, because in a
    /// saturated cell a smaller CW only multiplies ties/collisions).
    pub fn ap_cw_min(&self) -> u32 {
        let _ = self;
        CW_MIN
    }

    /// WiFox gives the AP adaptive priority over competing STAs when its
    /// downlink queue backs up (paper Section 7.2.1: "WiFox alleviates
    /// traffic asymmetry by giving higher priority to downlink
    /// transmission in channel contention"). The simulator grants a
    /// backlogged WiFox AP preemptive (PIFS-like) access to a fraction
    /// of contention rounds.
    pub fn has_downlink_priority(&self) -> bool {
        matches!(self, Protocol::Wifox)
    }

    /// Extra PHY-header airtime of a multi-receiver aggregate with
    /// `receivers` destinations, beyond the legacy PLCP:
    ///
    /// * Carpool: the 48-bit A-HDR plus one SIG per subframe;
    /// * MU-Aggregation: one 48-bit MAC address per receiver at the base
    ///   rate (the naive design the paper's Section 3 example costs out)
    ///   plus one SIG per subframe;
    /// * single-receiver protocols: nothing.
    pub fn aggregation_header_airtime(&self, receivers: usize) -> f64 {
        match self {
            Protocol::Dot11 | Protocol::Wifox | Protocol::Ampdu => 0.0,
            Protocol::Carpool => ahdr_airtime() + receivers as f64 * sig_airtime(),
            Protocol::MuAggregation => {
                CONTROL_MCS.airtime_for_bits(receivers * 48) + receivers as f64 * sig_airtime()
            }
        }
    }

    /// Number of ACKs concluding a successful exchange with `receivers`
    /// addressed receivers (sequential ACK for multi-receiver frames,
    /// paper Section 4.2; one block ACK otherwise).
    pub fn acks_per_exchange(&self, receivers: usize) -> usize {
        match self {
            Protocol::MuAggregation | Protocol::Carpool => receivers.max(1),
            _ => 1,
        }
    }

    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Protocol::Dot11 => "802.11",
            Protocol::Ampdu => "A-MPDU",
            Protocol::MuAggregation => "MU-Aggregation",
            Protocol::Wifox => "WiFox",
            Protocol::Carpool => "Carpool",
        }
    }
}

impl std::fmt::Display for Protocol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policies_match_paper_descriptions() {
        assert_eq!(
            Protocol::Dot11.aggregation_policy(),
            AggregationPolicy::None
        );
        assert_eq!(
            Protocol::Wifox.aggregation_policy(),
            AggregationPolicy::None
        );
        assert_eq!(
            Protocol::Ampdu.aggregation_policy(),
            AggregationPolicy::Ampdu
        );
        assert_eq!(
            Protocol::Carpool.aggregation_policy(),
            AggregationPolicy::MultiUser
        );
        assert_eq!(
            Protocol::MuAggregation.aggregation_policy(),
            AggregationPolicy::MultiUser
        );
    }

    #[test]
    fn only_carpool_uses_rte() {
        for p in Protocol::ALL {
            let expect_rte = p == Protocol::Carpool;
            assert_eq!(p.estimation() == EstimationScheme::Rte, expect_rte, "{p}");
        }
    }

    #[test]
    fn wifox_has_priority_access() {
        assert!(Protocol::Wifox.has_downlink_priority());
        assert!(!Protocol::Dot11.has_downlink_priority());
        assert_eq!(Protocol::Wifox.ap_cw_min(), CW_MIN);
    }

    #[test]
    fn carpool_header_is_cheaper_than_mu_aggregation() {
        for n in 2..=8 {
            let carpool = Protocol::Carpool.aggregation_header_airtime(n);
            let mu = Protocol::MuAggregation.aggregation_header_airtime(n);
            assert!(carpool < mu, "n={n}: {carpool} vs {mu}");
        }
    }

    #[test]
    fn sequential_ack_counts() {
        assert_eq!(Protocol::Carpool.acks_per_exchange(5), 5);
        assert_eq!(Protocol::MuAggregation.acks_per_exchange(3), 3);
        assert_eq!(Protocol::Ampdu.acks_per_exchange(1), 1);
        assert_eq!(Protocol::Dot11.acks_per_exchange(1), 1);
    }

    #[test]
    fn single_receiver_protocols_have_no_header_overhead() {
        for p in [Protocol::Dot11, Protocol::Wifox, Protocol::Ampdu] {
            assert_eq!(p.aggregation_header_airtime(1), 0.0, "{p}");
        }
    }
}
