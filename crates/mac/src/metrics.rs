//! Simulation metrics: goodput, delay, retransmissions, airtime shares.

/// Per-direction delivery metrics.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FlowMetrics {
    /// MAC payload bytes delivered.
    pub delivered_bytes: u64,
    /// Frames delivered.
    pub delivered_frames: u64,
    /// Frames dropped after exhausting the retry limit.
    pub dropped_frames: u64,
    /// Sum of queueing+service delays of delivered frames, seconds.
    pub total_delay: f64,
    /// Worst delay observed, seconds.
    pub max_delay: f64,
    /// Retransmission attempts (failed subframe deliveries).
    pub retransmissions: u64,
    /// Frames delivered within the deadline (when one is configured).
    pub in_deadline_frames: u64,
    /// Bytes delivered within the deadline.
    pub in_deadline_bytes: u64,
}

impl FlowMetrics {
    /// Records a delivery.
    pub fn record_delivery(&mut self, bytes: usize, delay: f64, deadline: Option<f64>) {
        self.delivered_bytes += bytes as u64;
        self.delivered_frames += 1;
        self.total_delay += delay;
        if delay > self.max_delay {
            self.max_delay = delay;
        }
        if deadline.map(|d| delay <= d).unwrap_or(true) {
            self.in_deadline_frames += 1;
            self.in_deadline_bytes += bytes as u64;
        }
    }

    /// Mean delivery delay in seconds (0 when nothing delivered).
    pub fn mean_delay(&self) -> f64 {
        if self.delivered_frames == 0 {
            0.0
        } else {
            self.total_delay / self.delivered_frames as f64
        }
    }

    /// Goodput in bit/s over `duration` seconds.
    pub fn goodput_bps(&self, duration: f64) -> f64 {
        if duration <= 0.0 {
            return 0.0;
        }
        self.delivered_bytes as f64 * 8.0 / duration
    }

    /// Deadline-bounded goodput in bit/s (equals [`FlowMetrics::goodput_bps`]
    /// when no deadline was configured).
    pub fn in_deadline_goodput_bps(&self, duration: f64) -> f64 {
        if duration <= 0.0 {
            return 0.0;
        }
        self.in_deadline_bytes as f64 * 8.0 / duration
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &FlowMetrics) {
        self.delivered_bytes += other.delivered_bytes;
        self.delivered_frames += other.delivered_frames;
        self.dropped_frames += other.dropped_frames;
        self.total_delay += other.total_delay;
        self.max_delay = self.max_delay.max(other.max_delay);
        self.retransmissions += other.retransmissions;
        self.in_deadline_frames += other.in_deadline_frames;
        self.in_deadline_bytes += other.in_deadline_bytes;
    }
}

/// Per-node airtime occupancy, for the Section 8 energy analysis.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AirtimeShare {
    /// Seconds spent transmitting.
    pub tx_s: f64,
    /// Seconds spent receiving frames addressed to this node.
    pub rx_s: f64,
    /// Seconds spent overhearing frames for others (legacy nodes decode
    /// them; Carpool nodes can drop after the A-HDR).
    pub overhear_s: f64,
    /// Seconds idle (including backoff and silence).
    pub idle_s: f64,
}

impl AirtimeShare {
    /// Total accounted time.
    pub fn total(&self) -> f64 {
        self.tx_s + self.rx_s + self.overhear_s + self.idle_s
    }
}

/// Channel-level counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChannelStats {
    /// Successful (collision-free) channel acquisitions.
    pub transmissions: u64,
    /// Collision events (two or more simultaneous winners).
    pub collisions: u64,
    /// Losses caused by hidden terminals firing into a transmission.
    pub hidden_collisions: u64,
    /// Aggregate frames carried in successful transmissions.
    pub aggregated_frames: u64,
    /// Aggregate receivers addressed in successful transmissions.
    pub aggregated_receivers: u64,
}

impl ChannelStats {
    /// Mean number of MAC frames per channel acquisition.
    pub fn mean_aggregation(&self) -> f64 {
        if self.transmissions == 0 {
            0.0
        } else {
            self.aggregated_frames as f64 / self.transmissions as f64
        }
    }

    /// Collision probability per contention round.
    pub fn collision_ratio(&self) -> f64 {
        let rounds = self.transmissions + self.collisions;
        if rounds == 0 {
            0.0
        } else {
            self.collisions as f64 / rounds as f64
        }
    }
}

/// Jain's fairness index over nonnegative allocations:
/// `(sum x)^2 / (n * sum x^2)`, 1.0 = perfectly fair, 1/n = maximally
/// unfair. Returns 1.0 for empty or all-zero inputs.
pub fn jain_fairness(allocations: &[f64]) -> f64 {
    let n = allocations.len();
    if n == 0 {
        return 1.0;
    }
    let sum: f64 = allocations.iter().sum();
    let sum_sq: f64 = allocations.iter().map(|x| x * x).sum();
    if sum_sq <= 0.0 {
        return 1.0;
    }
    sum * sum / (n as f64 * sum_sq)
}

/// Complete output of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Simulated seconds.
    pub duration_s: f64,
    /// Downlink (AP to STA) delivery metrics.
    pub downlink: FlowMetrics,
    /// Uplink (STA to AP) delivery metrics.
    pub uplink: FlowMetrics,
    /// Channel counters.
    pub channel: ChannelStats,
    /// Per-STA airtime occupancy (index = STA id).
    pub sta_airtime: Vec<AirtimeShare>,
    /// Per-STA downlink delivery metrics (index = STA id).
    pub per_sta_downlink: Vec<FlowMetrics>,
}

impl SimReport {
    /// Downlink goodput in Mbit/s — the paper's headline metric.
    pub fn downlink_goodput_mbps(&self) -> f64 {
        self.downlink.goodput_bps(self.duration_s) / 1e6
    }

    /// Mean downlink delay in seconds.
    pub fn downlink_delay_s(&self) -> f64 {
        self.downlink.mean_delay()
    }

    /// Jain's fairness index over per-STA delivered downlink bytes
    /// (Section 8, Fairness).
    pub fn downlink_fairness(&self) -> f64 {
        let alloc: Vec<f64> = self
            .per_sta_downlink
            .iter()
            .map(|m| m.delivered_bytes as f64)
            .collect();
        jain_fairness(&alloc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_accounting() {
        let mut m = FlowMetrics::default();
        m.record_delivery(1000, 0.010, None);
        m.record_delivery(500, 0.030, None);
        assert_eq!(m.delivered_bytes, 1500);
        assert_eq!(m.delivered_frames, 2);
        assert!((m.mean_delay() - 0.020).abs() < 1e-12);
        assert_eq!(m.max_delay, 0.030);
        assert!((m.goodput_bps(1.0) - 12_000.0).abs() < 1e-9);
    }

    #[test]
    fn deadline_bounded_goodput() {
        let mut m = FlowMetrics::default();
        m.record_delivery(1000, 0.005, Some(0.010));
        m.record_delivery(1000, 0.050, Some(0.010));
        assert_eq!(m.in_deadline_bytes, 1000);
        assert_eq!(m.delivered_bytes, 2000);
        assert!(m.in_deadline_goodput_bps(1.0) < m.goodput_bps(1.0));
    }

    #[test]
    fn empty_metrics_are_neutral() {
        let m = FlowMetrics::default();
        assert_eq!(m.mean_delay(), 0.0);
        assert_eq!(m.goodput_bps(10.0), 0.0);
        assert_eq!(m.goodput_bps(0.0), 0.0);
    }

    #[test]
    fn merge_combines() {
        let mut a = FlowMetrics::default();
        a.record_delivery(100, 0.1, None);
        let mut b = FlowMetrics::default();
        b.record_delivery(200, 0.3, None);
        b.dropped_frames = 2;
        a.merge(&b);
        assert_eq!(a.delivered_bytes, 300);
        assert_eq!(a.dropped_frames, 2);
        assert_eq!(a.max_delay, 0.3);
    }

    #[test]
    fn channel_stats_ratios() {
        let c = ChannelStats {
            transmissions: 80,
            collisions: 20,
            hidden_collisions: 0,
            aggregated_frames: 400,
            aggregated_receivers: 240,
        };
        assert!((c.mean_aggregation() - 5.0).abs() < 1e-12);
        assert!((c.collision_ratio() - 0.2).abs() < 1e-12);
        assert_eq!(ChannelStats::default().collision_ratio(), 0.0);
    }

    #[test]
    fn jain_index_bounds() {
        assert_eq!(jain_fairness(&[]), 1.0);
        assert_eq!(jain_fairness(&[0.0, 0.0]), 1.0);
        assert!((jain_fairness(&[5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
        // One user takes everything: 1/n.
        assert!((jain_fairness(&[9.0, 0.0, 0.0]) - 1.0 / 3.0).abs() < 1e-12);
        let mid = jain_fairness(&[3.0, 1.0]);
        assert!(mid > 0.5 && mid < 1.0);
    }

    #[test]
    fn airtime_total() {
        let a = AirtimeShare {
            tx_s: 1.0,
            rx_s: 2.0,
            overhear_s: 3.0,
            idle_s: 4.0,
        };
        assert_eq!(a.total(), 10.0);
    }
}
