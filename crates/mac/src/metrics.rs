//! Simulation metrics: goodput, delay, retransmissions, airtime shares.

use carpool_obs::Obs;

/// Per-direction delivery metrics.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FlowMetrics {
    /// MAC payload bytes delivered.
    pub delivered_bytes: u64,
    /// Frames delivered.
    pub delivered_frames: u64,
    /// Frames dropped after exhausting the retry limit.
    pub dropped_frames: u64,
    /// Sum of queueing+service delays of delivered frames, seconds.
    pub total_delay: f64,
    /// Worst delay observed, seconds.
    pub max_delay: f64,
    /// Retransmission attempts (failed subframe deliveries).
    pub retransmissions: u64,
    /// Frames delivered within the deadline (when one is configured).
    pub in_deadline_frames: u64,
    /// Bytes delivered within the deadline.
    pub in_deadline_bytes: u64,
}

impl FlowMetrics {
    /// Records a delivery. A negative `delay` indicates a bookkeeping bug
    /// upstream (a frame cannot be delivered before it arrived); it is
    /// clamped to zero so the accumulators stay consistent, and flagged
    /// with a debug assertion.
    pub fn record_delivery(&mut self, bytes: usize, delay: f64, deadline: Option<f64>) {
        debug_assert!(
            delay >= 0.0,
            "negative delivery delay {delay}: delivery stamped before arrival"
        );
        let delay = delay.max(0.0);
        self.delivered_bytes += bytes as u64;
        self.delivered_frames += 1;
        self.total_delay += delay;
        if delay > self.max_delay {
            self.max_delay = delay;
        }
        if deadline.map(|d| delay <= d).unwrap_or(true) {
            self.in_deadline_frames += 1;
            self.in_deadline_bytes += bytes as u64;
        }
    }

    /// Records a dropped frame. The time the frame sat queued until it was
    /// abandoned counts toward `max_delay` — a frame that waited 2 s and
    /// was then discarded represents worse service than any delivered
    /// frame, and hiding it understated tail latency.
    pub fn record_drop(&mut self, queued_for: f64) {
        debug_assert!(
            queued_for >= 0.0,
            "negative queueing time {queued_for} on drop"
        );
        self.dropped_frames += 1;
        if queued_for > self.max_delay {
            self.max_delay = queued_for;
        }
    }

    /// Mean delivery delay in seconds (0 when nothing delivered).
    pub fn mean_delay(&self) -> f64 {
        if self.delivered_frames == 0 {
            0.0
        } else {
            self.total_delay / self.delivered_frames as f64
        }
    }

    /// Goodput in bit/s over `duration` seconds.
    pub fn goodput_bps(&self, duration: f64) -> f64 {
        if duration <= 0.0 {
            return 0.0;
        }
        self.delivered_bytes as f64 * 8.0 / duration
    }

    /// Deadline-bounded goodput in bit/s (equals [`FlowMetrics::goodput_bps`]
    /// when no deadline was configured).
    pub fn in_deadline_goodput_bps(&self, duration: f64) -> f64 {
        if duration <= 0.0 {
            return 0.0;
        }
        self.in_deadline_bytes as f64 * 8.0 / duration
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &FlowMetrics) {
        self.delivered_bytes += other.delivered_bytes;
        self.delivered_frames += other.delivered_frames;
        self.dropped_frames += other.dropped_frames;
        self.total_delay += other.total_delay;
        self.max_delay = self.max_delay.max(other.max_delay);
        self.retransmissions += other.retransmissions;
        self.in_deadline_frames += other.in_deadline_frames;
        self.in_deadline_bytes += other.in_deadline_bytes;
    }
}

/// Static metric names for one flow direction, so the hot path never
/// formats strings.
#[derive(Debug, Clone, Copy)]
struct FlowNames {
    delivered_bytes: &'static str,
    delivered_frames: &'static str,
    dropped_frames: &'static str,
    retransmissions: &'static str,
    delay: &'static str,
}

const DOWNLINK_NAMES: FlowNames = FlowNames {
    delivered_bytes: "mac.downlink.delivered_bytes",
    delivered_frames: "mac.downlink.delivered_frames",
    dropped_frames: "mac.downlink.dropped_frames",
    retransmissions: "mac.downlink.retransmissions",
    delay: "mac.downlink.delay",
};

const UPLINK_NAMES: FlowNames = FlowNames {
    delivered_bytes: "mac.uplink.delivered_bytes",
    delivered_frames: "mac.uplink.delivered_frames",
    dropped_frames: "mac.uplink.dropped_frames",
    retransmissions: "mac.uplink.retransmissions",
    delay: "mac.uplink.delay",
};

/// [`FlowMetrics`] accumulation routed through a [`carpool_obs::Recorder`].
///
/// Every recorded fact lands in two places: the embedded [`FlowMetrics`]
/// (the view the rest of the simulator and its report structs consume,
/// unchanged) and the attached recorder — counters per direction plus a
/// `mac.<dir>.delay` histogram, which is where percentile delay comes
/// from (`FlowMetrics` alone only keeps mean and max).
#[derive(Debug, Clone)]
pub struct FlowCollector {
    metrics: FlowMetrics,
    obs: Obs,
    names: FlowNames,
}

impl FlowCollector {
    /// Collector for AP→STA traffic (`mac.downlink.*` metrics).
    pub fn downlink(obs: Obs) -> FlowCollector {
        FlowCollector {
            metrics: FlowMetrics::default(),
            obs,
            names: DOWNLINK_NAMES,
        }
    }

    /// Collector for STA→AP traffic (`mac.uplink.*` metrics).
    pub fn uplink(obs: Obs) -> FlowCollector {
        FlowCollector {
            metrics: FlowMetrics::default(),
            obs,
            names: UPLINK_NAMES,
        }
    }

    /// See [`FlowMetrics::record_delivery`].
    pub fn record_delivery(&mut self, bytes: usize, delay: f64, deadline: Option<f64>) {
        self.metrics.record_delivery(bytes, delay, deadline);
        if self.obs.enabled() {
            self.obs.counter(self.names.delivered_bytes, bytes as u64);
            self.obs.counter(self.names.delivered_frames, 1);
            self.obs.record(self.names.delay, delay.max(0.0));
        }
    }

    /// See [`FlowMetrics::record_drop`].
    pub fn record_drop(&mut self, queued_for: f64) {
        self.metrics.record_drop(queued_for);
        self.obs.counter(self.names.dropped_frames, 1);
    }

    /// Counts one retransmission attempt.
    pub fn record_retransmission(&mut self) {
        self.metrics.retransmissions += 1;
        self.obs.counter(self.names.retransmissions, 1);
    }

    /// The accumulated plain-metrics view.
    pub fn metrics(&self) -> &FlowMetrics {
        &self.metrics
    }

    /// Consumes the collector, yielding the accumulated metrics.
    pub fn into_metrics(self) -> FlowMetrics {
        self.metrics
    }
}

/// Per-node airtime occupancy, for the Section 8 energy analysis.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AirtimeShare {
    /// Seconds spent transmitting.
    pub tx_s: f64,
    /// Seconds spent receiving frames addressed to this node.
    pub rx_s: f64,
    /// Seconds spent overhearing frames for others (legacy nodes decode
    /// them; Carpool nodes can drop after the A-HDR).
    pub overhear_s: f64,
    /// Seconds idle (including backoff and silence).
    pub idle_s: f64,
}

impl AirtimeShare {
    /// Total accounted time.
    pub fn total(&self) -> f64 {
        self.tx_s + self.rx_s + self.overhear_s + self.idle_s
    }
}

/// Channel-level counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChannelStats {
    /// Successful (collision-free) channel acquisitions.
    pub transmissions: u64,
    /// Collision events (two or more simultaneous winners).
    pub collisions: u64,
    /// Losses caused by hidden terminals firing into a transmission.
    pub hidden_collisions: u64,
    /// Aggregate frames carried in successful transmissions.
    pub aggregated_frames: u64,
    /// Aggregate receivers addressed in successful transmissions.
    pub aggregated_receivers: u64,
}

impl ChannelStats {
    /// Mean number of MAC frames per channel acquisition.
    pub fn mean_aggregation(&self) -> f64 {
        if self.transmissions == 0 {
            0.0
        } else {
            self.aggregated_frames as f64 / self.transmissions as f64
        }
    }

    /// Accumulates another domain's counters (dense-scenario merge).
    pub fn merge(&mut self, other: &ChannelStats) {
        self.transmissions += other.transmissions;
        self.collisions += other.collisions;
        self.hidden_collisions += other.hidden_collisions;
        self.aggregated_frames += other.aggregated_frames;
        self.aggregated_receivers += other.aggregated_receivers;
    }

    /// Collision probability per contention round.
    pub fn collision_ratio(&self) -> f64 {
        let rounds = self.transmissions + self.collisions;
        if rounds == 0 {
            0.0
        } else {
            self.collisions as f64 / rounds as f64
        }
    }
}

/// Jain's fairness index over nonnegative allocations:
/// `(sum x)^2 / (n * sum x^2)`, 1.0 = perfectly fair, 1/n = maximally
/// unfair. Returns 1.0 for empty or all-zero inputs.
pub(crate) fn jain_fairness(allocations: &[f64]) -> f64 {
    let n = allocations.len();
    if n == 0 {
        return 1.0;
    }
    let sum: f64 = allocations.iter().sum();
    let sum_sq: f64 = allocations.iter().map(|x| x * x).sum();
    if sum_sq <= 0.0 {
        return 1.0;
    }
    sum * sum / (n as f64 * sum_sq)
}

/// Complete output of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Simulated seconds.
    pub duration_s: f64,
    /// Downlink (AP to STA) delivery metrics.
    pub downlink: FlowMetrics,
    /// Uplink (STA to AP) delivery metrics.
    pub uplink: FlowMetrics,
    /// Channel counters.
    pub channel: ChannelStats,
    /// Per-STA airtime occupancy (index = STA id).
    pub sta_airtime: Vec<AirtimeShare>,
    /// Per-STA downlink delivery metrics (index = STA id).
    pub per_sta_downlink: Vec<FlowMetrics>,
}

impl SimReport {
    /// Downlink goodput in Mbit/s — the paper's headline metric.
    pub fn downlink_goodput_mbps(&self) -> f64 {
        self.downlink.goodput_bps(self.duration_s) / 1e6
    }

    /// Mean downlink delay in seconds.
    pub fn downlink_delay_s(&self) -> f64 {
        self.downlink.mean_delay()
    }

    /// Jain's fairness index over per-STA delivered downlink bytes
    /// (Section 8, Fairness).
    pub fn downlink_fairness(&self) -> f64 {
        let alloc: Vec<f64> = self
            .per_sta_downlink
            .iter()
            .map(|m| m.delivered_bytes as f64)
            .collect();
        jain_fairness(&alloc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_accounting() {
        let mut m = FlowMetrics::default();
        m.record_delivery(1000, 0.010, None);
        m.record_delivery(500, 0.030, None);
        assert_eq!(m.delivered_bytes, 1500);
        assert_eq!(m.delivered_frames, 2);
        assert!((m.mean_delay() - 0.020).abs() < 1e-12);
        assert_eq!(m.max_delay, 0.030);
        assert!((m.goodput_bps(1.0) - 12_000.0).abs() < 1e-9);
    }

    #[test]
    fn negative_delay_clamps_to_zero() {
        let mut m = FlowMetrics::default();
        // Release-mode behaviour: clamp rather than corrupt the sums.
        // (Under debug assertions this would panic instead.)
        if cfg!(debug_assertions) {
            let r = std::panic::catch_unwind(|| {
                let mut m = FlowMetrics::default();
                m.record_delivery(100, -0.5, None);
            });
            assert!(r.is_err(), "debug build must assert on negative delay");
        } else {
            m.record_delivery(100, -0.5, None);
            assert_eq!(m.delivered_frames, 1);
            assert_eq!(m.total_delay, 0.0);
            assert_eq!(m.max_delay, 0.0);
        }
    }

    #[test]
    fn drops_update_max_delay() {
        let mut m = FlowMetrics::default();
        m.record_delivery(1000, 0.010, None);
        m.record_drop(0.250);
        assert_eq!(m.dropped_frames, 1);
        assert_eq!(m.delivered_frames, 1);
        // The abandoned frame's queueing time dominates the tail.
        assert_eq!(m.max_delay, 0.250);
        // Mean delay still only covers delivered frames.
        assert!((m.mean_delay() - 0.010).abs() < 1e-12);
    }

    #[test]
    fn deadline_bounded_goodput() {
        let mut m = FlowMetrics::default();
        m.record_delivery(1000, 0.005, Some(0.010));
        m.record_delivery(1000, 0.050, Some(0.010));
        assert_eq!(m.in_deadline_bytes, 1000);
        assert_eq!(m.delivered_bytes, 2000);
        assert!(m.in_deadline_goodput_bps(1.0) < m.goodput_bps(1.0));
    }

    #[test]
    fn empty_metrics_are_neutral() {
        let m = FlowMetrics::default();
        assert_eq!(m.mean_delay(), 0.0);
        assert_eq!(m.goodput_bps(10.0), 0.0);
        assert_eq!(m.goodput_bps(0.0), 0.0);
    }

    #[test]
    fn merge_combines() {
        let mut a = FlowMetrics::default();
        a.record_delivery(100, 0.1, None);
        let mut b = FlowMetrics::default();
        b.record_delivery(200, 0.3, None);
        b.dropped_frames = 2;
        a.merge(&b);
        assert_eq!(a.delivered_bytes, 300);
        assert_eq!(a.dropped_frames, 2);
        assert_eq!(a.max_delay, 0.3);
    }

    #[test]
    fn flow_collector_mirrors_metrics_into_recorder() {
        use carpool_obs::{MemoryRecorder, Obs};
        use std::sync::Arc;

        let recorder = Arc::new(MemoryRecorder::new());
        let mut c = FlowCollector::downlink(Obs::with_recorder(recorder.clone()));
        c.record_delivery(1500, 0.020, None);
        c.record_delivery(500, 0.040, None);
        c.record_drop(0.3);
        c.record_retransmission();

        // FlowMetrics view is intact.
        let m = c.metrics();
        assert_eq!(m.delivered_bytes, 2000);
        assert_eq!(m.delivered_frames, 2);
        assert_eq!(m.dropped_frames, 1);
        assert_eq!(m.retransmissions, 1);
        assert_eq!(m.max_delay, 0.3);

        // Recorder view agrees.
        let snap = recorder.snapshot();
        assert_eq!(snap.counter("mac.downlink.delivered_bytes"), 2000);
        assert_eq!(snap.counter("mac.downlink.delivered_frames"), 2);
        assert_eq!(snap.counter("mac.downlink.dropped_frames"), 1);
        assert_eq!(snap.counter("mac.downlink.retransmissions"), 1);
        let h = snap.histogram("mac.downlink.delay").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), 0.040);
    }

    #[test]
    fn flow_collector_with_noop_obs_still_accumulates() {
        let mut c = FlowCollector::uplink(Obs::noop());
        c.record_delivery(100, 0.001, None);
        assert_eq!(c.metrics().delivered_frames, 1);
        assert_eq!(c.into_metrics().delivered_bytes, 100);
    }

    #[test]
    fn channel_stats_ratios() {
        let c = ChannelStats {
            transmissions: 80,
            collisions: 20,
            hidden_collisions: 0,
            aggregated_frames: 400,
            aggregated_receivers: 240,
        };
        assert!((c.mean_aggregation() - 5.0).abs() < 1e-12);
        assert!((c.collision_ratio() - 0.2).abs() < 1e-12);
        assert_eq!(ChannelStats::default().collision_ratio(), 0.0);
    }

    #[test]
    fn jain_index_bounds() {
        assert_eq!(jain_fairness(&[]), 1.0);
        assert_eq!(jain_fairness(&[0.0, 0.0]), 1.0);
        assert!((jain_fairness(&[5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
        // One user takes everything: 1/n.
        assert!((jain_fairness(&[9.0, 0.0, 0.0]) - 1.0 / 3.0).abs() < 1e-12);
        let mid = jain_fairness(&[3.0, 1.0]);
        assert!(mid > 0.5 && mid < 1.0);
    }

    #[test]
    fn airtime_total() {
        let a = AirtimeShare {
            tx_s: 1.0,
            rx_s: 2.0,
            overhear_s: 3.0,
            idle_s: 4.0,
        };
        assert_eq!(a.total(), 10.0);
    }
}
