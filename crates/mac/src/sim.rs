//! Event-driven DCF simulator for a single collision domain.
//!
//! Follows the paper's methodology (Section 7.2.1): all nodes — two APs
//! and 10–30 STAs — are within carrier-sense range and contend with the
//! IEEE 802.11n parameters of Table 2 (slot 9 µs, SIFS 10 µs, DIFS
//! 28 µs, CW 15–1023, exponential backoff). Frame decoding is driven by
//! a [`FrameErrorModel`]-driven model calibrated
//! from `carpool-phy` runs, the software analogue of the paper's
//! USRP-trace-driven emulation.
//!
//! The engine uses the *virtual slot* technique, exact for a single
//! collision domain: whenever the medium goes idle, all backlogged
//! nodes count down together; the minimum-backoff node(s) transmit, and
//! simultaneous expiry is a collision.

use crate::error_model::FrameErrorModel;
use crate::metrics::{AirtimeShare, ChannelStats, FlowCollector, FlowMetrics, SimReport};
use crate::protocol::Protocol;
use carpool_frame::addr::MacAddress;
use carpool_frame::aggregation::{select, AggregationLimits, QueuedFrame};
use carpool_frame::airtime::{
    ack_airtime, ahdr_airtime, cts_airtime, data_frame_airtime, rts_airtime, CW_MAX, DIFS,
    PLCP_OVERHEAD, SIFS, SLOT_TIME,
};
use carpool_frame::mac_frame::{FCS_BYTES, MAC_HEADER_BYTES};
use carpool_obs::{Event, Obs, TraceKind};
use carpool_phy::mcs::{Mcs, SYMBOL_DURATION};
use carpool_traffic::background::{BackgroundSource, Transport};
use carpool_traffic::voip::VoipSource;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// Per-MPDU wire overhead: MAC header + FCS + A-MPDU delimiter.
pub(crate) const WIRE_OVERHEAD_BYTES: usize = MAC_HEADER_BYTES + FCS_BYTES + 2;

/// Extended interframe space after a collision (no ACK arrives).
fn eifs() -> f64 {
    SIFS + ack_airtime() + DIFS
}

/// Downlink traffic offered to each STA.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DownlinkTraffic {
    /// Brady ON/OFF VoIP (96 kbit/s peak, 120 B frames).
    Voip,
    /// Constant bit rate: one frame of `bytes` every `interval_s`.
    Cbr {
        /// Inter-frame interval in seconds.
        interval_s: f64,
        /// Frame size in bytes.
        bytes: usize,
    },
    /// No downlink traffic.
    None,
}

/// Uplink background traffic configuration (SIGCOMM'08 style).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UplinkTraffic {
    /// Fraction of STAs running a TCP-like source (rest are UDP-like).
    pub tcp_fraction: f64,
    /// Rate multiplier applied to every source (1.0 = trace level).
    pub rate_scale: f64,
}

impl Default for UplinkTraffic {
    fn default() -> Self {
        UplinkTraffic {
            tcp_fraction: 0.5,
            rate_scale: 1.0,
        }
    }
}

/// Downlink scheduling discipline at the AP (paper Section 8,
/// Fairness).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerPolicy {
    /// First in, first out — the paper's default for delay-insensitive
    /// traffic.
    #[default]
    Fifo,
    /// Time fairness: the AP keeps a time-occupancy table and serves the
    /// stations with the smallest cumulative airtime first.
    TimeFair,
}

/// Hidden-terminal topology: each unordered STA pair is mutually
/// hidden with probability `fraction` (drawn deterministically from the
/// simulation seed). Hidden stations cannot carrier-sense each other's
/// uplink transmissions and may fire into them — the situation the
/// multicast RTS/CTS of paper Fig. 7 mitigates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HiddenTerminals {
    /// Probability that a given STA pair is mutually hidden.
    pub fraction: f64,
}

/// Aggregation trigger (paper Section 7.2.2): the AP holds off until
/// the buffered bytes reach `max_bytes` or the oldest frame has waited
/// `max_latency_s`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AggregationWait {
    /// Maximum waiting time of the oldest frame.
    pub max_latency_s: f64,
    /// Byte threshold that releases the aggregate early.
    pub max_bytes: usize,
}

/// Full simulation configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Downlink MAC protocol under test.
    pub protocol: Protocol,
    /// Number of stations.
    pub num_stas: usize,
    /// Number of access points (the paper uses 2).
    pub num_aps: usize,
    /// Simulated seconds.
    pub duration_s: f64,
    /// RNG seed.
    pub seed: u64,
    /// Data MCS (the paper's 65 Mbit/s 802.11n rate maps to the closest
    /// 802.11a/g rate, 54 Mbit/s QAM64-3/4, in this PHY).
    pub data_mcs: Mcs,
    /// Downlink workload per STA.
    pub downlink: DownlinkTraffic,
    /// Optional uplink background workload.
    pub uplink: Option<UplinkTraffic>,
    /// Aggregation limits (size, receivers, frames per receiver).
    pub limits: AggregationLimits,
    /// Optional aggregation trigger.
    pub aggregation_wait: Option<AggregationWait>,
    /// Optional delivery deadline for deadline-bounded goodput.
    pub deadline: Option<f64>,
    /// Drop downlink frames older than this at the AP (delay-sensitive
    /// traffic discards expired frames instead of queueing them forever,
    /// as in the paper's Fig. 17 experiments).
    pub drop_expired_s: Option<f64>,
    /// Retry limit before a frame is dropped.
    pub retry_limit: u32,
    /// Whether VoIP calls are two-way (each STA also sends an uplink
    /// VoIP stream). Two-way calls create the uplink contention that
    /// starves the AP — the downlink/uplink asymmetry of Section 2.
    pub bidirectional_voip: bool,
    /// Per-STA link SNR in dB (index = STA id). When set, every
    /// station is served at the MCS its link supports
    /// ([`crate::rate::mcs_for_snr`]) — "different subframes can adopt
    /// different MCSs" (paper Section 4.1). `None` serves everyone at
    /// [`SimConfig::data_mcs`].
    pub per_sta_snr_db: Option<Vec<f64>>,
    /// Downlink scheduling discipline.
    pub scheduler: SchedulerPolicy,
    /// Fraction of STAs that support Carpool (Section 4.3, AP
    /// association): the AP aggregates across Carpool-capable clients
    /// and falls back to single-frame transmissions for legacy ones.
    /// Station ids `< fraction * num_stas` are capable.
    pub carpool_fraction: f64,
    /// Precede every data exchange with RTS/CTS signalling — Carpool
    /// uses one multicast RTS carrying the A-HDR followed by sequential
    /// CTSs (paper Fig. 7).
    pub use_rts_cts: bool,
    /// Optional hidden-terminal topology among STAs.
    pub hidden_terminals: Option<HiddenTerminals>,
    /// Fixed extra cost per contention round, seconds. Calibrates the
    /// engine's (optimistic) concurrent-countdown DCF to the per-access
    /// contention cost of the paper's MATLAB simulator, where deferral
    /// and backoff slots do not overlap with other nodes' countdowns.
    pub extra_round_overhead_s: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            protocol: Protocol::Carpool,
            num_stas: 20,
            num_aps: 2,
            duration_s: 10.0,
            seed: 1,
            data_mcs: Mcs::QAM64_3_4,
            downlink: DownlinkTraffic::Voip,
            uplink: None,
            // Per-receiver MPDU budget bounded by the block-ACK window
            // actually serviceable per TXOP with short VoIP frames.
            limits: AggregationLimits {
                max_frames_per_receiver: 4,
                ..AggregationLimits::default()
            },
            aggregation_wait: None,
            deadline: None,
            drop_expired_s: None,
            retry_limit: 7,
            bidirectional_voip: true,
            per_sta_snr_db: None,
            scheduler: SchedulerPolicy::Fifo,
            carpool_fraction: 1.0,
            use_rts_cts: false,
            hidden_terminals: None,
            extra_round_overhead_s: 80e-6,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct ArrivalEvent {
    time: f64,
    node: usize,
    dest: usize,
    bytes: usize,
}

#[derive(Debug, Clone, Copy)]
struct PendingFrame {
    /// Flight-recorder correlation id, assigned in arrival order at
    /// ingest — deterministic for a given seed, unique per frame.
    id: u64,
    bytes: usize,
    enqueue: f64,
    attempts: u32,
    dest: usize,
}

/// Trace-payload widening for station indices, byte counts, and symbol
/// counts.
fn trace_u64(v: usize) -> u64 {
    // lint:allow(as-cast): station/byte/symbol counts are far below 2^64
    v as u64
}

/// Time span of `symbols` OFDM symbols, for flight-recorder stamps.
fn symbol_span(symbols: usize) -> f64 {
    // lint:allow(as-cast): symbol counts are far below 2^52, conversion exact
    symbols as f64 * SYMBOL_DURATION
}

#[derive(Debug)]
struct Node {
    queue: VecDeque<PendingFrame>,
    backoff: u32,
    cw: u32,
    cw_min: u32,
    is_ap: bool,
}

impl Node {
    fn new(is_ap: bool, cw_min: u32) -> Node {
        Node {
            queue: VecDeque::new(),
            backoff: 0,
            cw: cw_min,
            cw_min,
            is_ap,
        }
    }

    fn draw_backoff(&mut self, rng: &mut StdRng) {
        self.backoff = rng.gen_range(0..=self.cw);
    }

    fn on_success(&mut self, rng: &mut StdRng) {
        self.cw = self.cw_min;
        if !self.queue.is_empty() {
            self.draw_backoff(rng);
        }
    }

    fn on_collision(&mut self, rng: &mut StdRng) {
        self.cw = (self.cw * 2 + 1).min(CW_MAX);
        self.draw_backoff(rng);
    }

    fn queued_bytes(&self) -> usize {
        self.queue.iter().map(|f| f.bytes).sum()
    }
}

/// A planned transmission: receivers with their frame batches.
struct TxopPlan {
    /// Queue indices selected, ascending (for removal).
    selected: Vec<usize>,
    /// Per-receiver groups: (destination node id, queue indices, MCS).
    groups: Vec<(usize, Vec<usize>, Mcs)>,
    /// Airtime of the data PPDU (PLCP + headers + payload).
    data_airtime: f64,
    /// Trailing ACK sequence time.
    ack_airtime_total: f64,
    /// Header length in OFDM symbols (payload error positions start here).
    header_symbols: usize,
}

impl TxopPlan {
    fn total_airtime(&self) -> f64 {
        self.data_airtime + self.ack_airtime_total
    }
}

/// The simulator.
pub struct Simulator {
    config: SimConfig,
    error_model: Box<dyn FrameErrorModel>,
    obs: Obs,
}

impl Simulator {
    /// Creates a simulator with the given config and error model.
    pub fn new(config: SimConfig, error_model: Box<dyn FrameErrorModel>) -> Simulator {
        Simulator {
            config,
            error_model,
            obs: Obs::noop(),
        }
    }

    /// Attaches an observability handle. During [`Simulator::run`] the
    /// simulator streams simulation-clock-stamped events (arrivals as the
    /// MAC ingests them, deliveries, drops, retransmissions, collisions,
    /// TXOPs, queue depths, backoff draws) and mirrors the per-direction
    /// [`FlowMetrics`] into the recorder's `mac.downlink.*` /
    /// `mac.uplink.*` counters and delay histograms. Event timestamps
    /// never decrease: every event is stamped with the current value of
    /// the simulation clock.
    pub fn with_obs(mut self, obs: Obs) -> Simulator {
        self.obs = obs;
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    fn generate_arrivals(&self, rng: &mut StdRng) -> Vec<ArrivalEvent> {
        let cfg = &self.config;
        let mut arrivals = Vec::new(); // lint:allow(hot-alloc): MAC event bookkeeping, per TXOP not per sample
        for sta in 0..cfg.num_stas {
            let node_id = cfg.num_aps + sta;
            let ap_id = sta % cfg.num_aps;
            match cfg.downlink {
                DownlinkTraffic::Voip => {
                    // ON/OFF means calibrated so the per-STA offered load
                    // matches the operating points of the paper's Fig. 15
                    // (~0.9 x 96 kbit/s per STA): talkspurts dominate.
                    let voip = VoipSource::with_means(5.0, 0.05);
                    for a in voip.generate(cfg.duration_s, rng) {
                        // lint:allow(hot-alloc): MAC event bookkeeping, per TXOP not per sample
                        arrivals.push(ArrivalEvent {
                            time: a.time,
                            node: ap_id,
                            dest: node_id,
                            bytes: a.bytes,
                        });
                    }
                    if cfg.bidirectional_voip {
                        for a in voip.generate(cfg.duration_s, rng) {
                            // lint:allow(hot-alloc): MAC event bookkeeping, per TXOP not per sample
                            arrivals.push(ArrivalEvent {
                                time: a.time,
                                node: node_id,
                                dest: ap_id,
                                bytes: a.bytes,
                            });
                        }
                    }
                }
                DownlinkTraffic::Cbr { interval_s, bytes } => {
                    // Random phase to avoid synchronised arrivals.
                    let mut t = rng.gen::<f64>() * interval_s;
                    while t < cfg.duration_s {
                        // lint:allow(hot-alloc): MAC event bookkeeping, per TXOP not per sample
                        arrivals.push(ArrivalEvent {
                            time: t,
                            node: ap_id,
                            dest: node_id,
                            bytes,
                        });
                        t += interval_s;
                    }
                }
                DownlinkTraffic::None => {}
            }
            if let Some(up) = cfg.uplink {
                let transport = if (sta as f64 + 0.5) / cfg.num_stas as f64 <= up.tcp_fraction {
                    Transport::Tcp
                } else {
                    Transport::Udp
                };
                let source = BackgroundSource::new(transport).with_rate_scale(up.rate_scale);
                for a in source.generate(cfg.duration_s, rng) {
                    // lint:allow(hot-alloc): MAC event bookkeeping, per TXOP not per sample
                    arrivals.push(ArrivalEvent {
                        time: a.time,
                        node: node_id,
                        dest: ap_id,
                        bytes: a.bytes,
                    });
                }
            }
        }
        arrivals.sort_by(|a, b| a.time.total_cmp(&b.time));
        arrivals
    }

    /// Whether station node id `sta_id` negotiated Carpool at
    /// association (Section 4.3).
    fn is_carpool_capable(&self, sta_id: usize) -> bool {
        let idx = sta_id.saturating_sub(self.config.num_aps);
        (idx as f64) < self.config.carpool_fraction * self.config.num_stas as f64
    }

    /// MCS used when transmitting to (or from) station node `sta_id`.
    fn mcs_for(&self, sta_id: usize) -> Mcs {
        match &self.config.per_sta_snr_db {
            Some(snrs) => {
                let idx = sta_id.saturating_sub(self.config.num_aps);
                snrs.get(idx)
                    .map(|&snr| crate::rate::mcs_for_snr(snr))
                    .unwrap_or(self.config.data_mcs)
            }
            None => self.config.data_mcs,
        }
    }

    fn ap_eligible(&self, node: &Node, now: f64) -> bool {
        let Some(head) = node.queue.front() else {
            return false;
        };
        match self.config.aggregation_wait {
            None => true,
            Some(w) => now - head.enqueue >= w.max_latency_s || node.queued_bytes() >= w.max_bytes,
        }
    }

    fn plan_txop(&self, node: &Node, node_id: usize, occupancy: &[f64]) -> TxopPlan {
        let cfg = &self.config;
        if node.is_ap {
            // Mixed deployments (Section 4.3): a multi-receiver AP
            // serves a legacy head-of-line client with a plain
            // single-frame transmission, and never aggregates legacy
            // clients into a Carpool frame.
            let multi_user = matches!(cfg.protocol, Protocol::Carpool | Protocol::MuAggregation);
            if multi_user {
                if let Some(head) = node.queue.front() {
                    if !self.is_carpool_capable(head.dest) {
                        let mcs = self.mcs_for(head.dest);
                        let wire_bits = (head.bytes + WIRE_OVERHEAD_BYTES) * 8;
                        return TxopPlan {
                            selected: vec![0],
                            groups: vec![(head.dest, vec![0], mcs)],
                            data_airtime: PLCP_OVERHEAD
                                + mcs.symbols_for_bits(wire_bits) as f64 * SYMBOL_DURATION,
                            ack_airtime_total: SIFS + ack_airtime(),
                            header_symbols: 0,
                        };
                    }
                }
            }

            // Under time fairness the AP presents its queue to the
            // selector ordered by the destinations' cumulative airtime,
            // so underserved stations aggregate (and transmit) first.
            let mut order: Vec<usize> = (0..node.queue.len()).collect(); // lint:allow(hot-alloc): MAC event bookkeeping, per TXOP not per sample
            if multi_user && cfg.carpool_fraction < 1.0 {
                // Only Carpool-capable destinations may ride this
                // aggregate; legacy frames wait for their own TXOPs.
                order.retain(|&k| self.is_carpool_capable(node.queue[k].dest));
            }
            if cfg.scheduler == SchedulerPolicy::TimeFair {
                order.sort_by(|&a, &b| {
                    let occ = |k: usize| {
                        let dest = node.queue[k].dest;
                        occupancy
                            .get(dest.saturating_sub(cfg.num_aps))
                            .copied()
                            .unwrap_or(0.0)
                    };
                    occ(a).total_cmp(&occ(b)).then(a.cmp(&b))
                });
            }
            let queue: Vec<QueuedFrame> = order
                .iter()
                .map(|&k| {
                    let f = node.queue[k];
                    QueuedFrame {
                        dest: MacAddress::station(f.dest as u16),
                        bytes: f.bytes,
                        enqueue_time: f.enqueue,
                    }
                })
                .collect(); // lint:allow(hot-alloc): MAC event bookkeeping, per TXOP not per sample
            let selection = select(cfg.protocol.aggregation_policy(), &queue, &cfg.limits);
            let receivers = selection.receiver_count().max(1);
            let header_airtime = cfg.protocol.aggregation_header_airtime(receivers);
            let header_symbols = (header_airtime / SYMBOL_DURATION).round() as usize;
            let mut groups = Vec::with_capacity(selection.groups.len()); // lint:allow(hot-alloc): MAC event bookkeeping, per TXOP not per sample
            let mut selected = Vec::new(); // lint:allow(hot-alloc): MAC event bookkeeping, per TXOP not per sample
            let mut payload_symbols = 0usize;
            for (_, view_indices) in &selection.groups {
                let indices: Vec<usize> = view_indices.iter().map(|&k| order[k]).collect(); // lint:allow(hot-alloc): MAC event bookkeeping, per TXOP not per sample
                let dest = node.queue[indices[0]].dest;
                let mcs = self.mcs_for(dest);
                for &k in &indices {
                    let wire_bits = (node.queue[k].bytes + WIRE_OVERHEAD_BYTES) * 8;
                    payload_symbols += mcs.symbols_for_bits(wire_bits);
                }
                selected.extend_from_slice(&indices);
                groups.push((dest, indices, mcs));
            }
            selected.sort_unstable();
            let data_airtime =
                PLCP_OVERHEAD + header_airtime + payload_symbols as f64 * SYMBOL_DURATION;
            let acks = cfg.protocol.acks_per_exchange(receivers);
            TxopPlan {
                selected,
                groups,
                data_airtime,
                ack_airtime_total: acks as f64 * (SIFS + ack_airtime()),
                header_symbols,
            }
        } else {
            // STA: single head frame to its AP at the STA's own rate. The
            // contention loop never selects an empty queue, so an empty
            // plan here is a graceful fallback rather than a reachable path.
            let Some(head) = node.queue.front() else {
                return TxopPlan {
                    selected: Vec::new(), // lint:allow(hot-alloc): MAC event bookkeeping, per TXOP not per sample
                    groups: Vec::new(), // lint:allow(hot-alloc): MAC event bookkeeping, per TXOP not per sample
                    data_airtime: 0.0,
                    ack_airtime_total: 0.0,
                    header_symbols: 0,
                };
            };
            let mcs = self.mcs_for(node_id);
            let wire = head.bytes + WIRE_OVERHEAD_BYTES - 2; // no delimiter
            TxopPlan {
                selected: vec![0],
                groups: vec![(head.dest, vec![0], mcs)],
                data_airtime: data_frame_airtime(wire, mcs),
                ack_airtime_total: SIFS + ack_airtime(),
                header_symbols: 0,
            }
        }
    }

    /// Deterministically decides whether two STA node ids are mutually
    /// hidden under the configured topology.
    fn is_hidden(&self, a: usize, b: usize) -> bool {
        let Some(h) = self.config.hidden_terminals else {
            return false;
        };
        if a == b {
            return false;
        }
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        // splitmix-style hash of (pair, seed) -> uniform in [0, 1).
        let mut x = (lo as u64) << 32 | hi as u64;
        x ^= self.config.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= x >> 31;
        (x as f64 / u64::MAX as f64) < h.fraction
    }

    /// RTS/CTS signalling time preceding a data PPDU addressed to
    /// `receivers` receivers (multicast RTS + sequential CTSs, Fig. 7).
    fn control_airtime(&self, receivers: usize) -> f64 {
        if !self.config.use_rts_cts {
            return 0.0;
        }
        let carpool_like = matches!(
            self.config.protocol,
            Protocol::Carpool | Protocol::MuAggregation
        );
        rts_airtime(carpool_like) + receivers as f64 * (SIFS + cts_airtime()) + SIFS
    }

    /// Runs the simulation to completion.
    pub fn run(&self) -> SimReport {
        let cfg = &self.config;
        assert!(cfg.num_aps >= 1, "need at least one AP");
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let arrivals = self.generate_arrivals(&mut rng);

        let total_nodes = cfg.num_aps + cfg.num_stas;
        let mut nodes: Vec<Node> = (0..total_nodes)
            .map(|k| {
                let is_ap = k < cfg.num_aps;
                let cw_min = if is_ap {
                    cfg.protocol.ap_cw_min()
                } else {
                    carpool_frame::airtime::CW_MIN
                };
                Node::new(is_ap, cw_min)
            })
            .collect(); // lint:allow(hot-alloc): MAC event bookkeeping, per TXOP not per sample

        let obs = self.obs.clone(); // lint:allow(hot-alloc): MAC event bookkeeping, per TXOP not per sample
        let _sim_span = obs.span("mac.sim_loop");
        let mut downlink = FlowCollector::downlink(obs.clone()); // lint:allow(hot-alloc): MAC event bookkeeping, per TXOP not per sample
        let mut uplink = FlowCollector::uplink(obs.clone()); // lint:allow(hot-alloc): MAC event bookkeeping, per TXOP not per sample
        let mut channel = ChannelStats::default();
        let mut sta_airtime = vec![AirtimeShare::default(); cfg.num_stas];
        // Time-occupancy table for the fairness scheduler (Section 8).
        let mut occupancy = vec![0.0f64; cfg.num_stas];
        let mut per_sta_downlink = vec![FlowMetrics::default(); cfg.num_stas];

        let mut now = 0.0f64;
        let mut arr_idx = 0usize;
        let mut next_frame_id = 0u64;
        let scheme = cfg.protocol.estimation();

        loop {
            // Ingest arrivals up to `now`.
            while arr_idx < arrivals.len() && arrivals[arr_idx].time <= now {
                let a = arrivals[arr_idx];
                let node = &mut nodes[a.node];
                let was_empty = node.queue.is_empty();
                next_frame_id += 1;
                node.queue.push_back(PendingFrame {
                    id: next_frame_id,
                    bytes: a.bytes,
                    enqueue: a.time,
                    attempts: 0,
                    dest: a.dest,
                });
                obs.trace_frame(
                    TraceKind::MacEnqueue,
                    next_frame_id,
                    now,
                    trace_u64(a.dest),
                    trace_u64(a.bytes),
                );
                if was_empty {
                    node.draw_backoff(&mut rng);
                }
                if obs.enabled() {
                    obs.counter("traffic.arrivals", 1);
                    // Stamped with the ingestion clock (the moment the MAC
                    // sees the frame), which keeps the stream monotone;
                    // the arrival's own timestamp survives as queueing
                    // delay in the eventual delivery/drop event.
                    obs.emit(
                        now,
                        Event::TrafficArrival {
                            dest: a.dest as u64,
                            bytes: a.bytes as u64,
                        },
                    );
                    if was_empty {
                        obs.emit(
                            now,
                            Event::Backoff {
                                station: a.node as u64,
                                slots: nodes[a.node].backoff as u64,
                            },
                        );
                    }
                }
                arr_idx += 1;
            }
            if now >= cfg.duration_s {
                break;
            }

            // Expired delay-sensitive downlink frames are discarded.
            if let Some(limit) = cfg.drop_expired_s {
                for node in nodes.iter_mut().filter(|n| n.is_ap) {
                    while let Some(f) = node
                        .queue
                        .front()
                        .filter(|f| now - f.enqueue > limit)
                        .copied()
                    {
                        node.queue.pop_front();
                        downlink.record_drop(now - f.enqueue);
                        obs.emit(
                            now,
                            Event::MacDrop {
                                dest: f.dest as u64,
                                delay: now - f.enqueue,
                            },
                        );
                        obs.trace_frame(
                            TraceKind::MacDrop,
                            f.id,
                            now,
                            trace_u64(f.dest),
                            (now - f.enqueue).to_bits(),
                        );
                    }
                }
            }

            // Who is contending?
            let eligible: Vec<usize> = (0..total_nodes)
                .filter(|&k| {
                    let n = &nodes[k];
                    if n.queue.is_empty() {
                        false
                    } else if n.is_ap {
                        self.ap_eligible(n, now)
                    } else {
                        true
                    }
                })
                .collect(); // lint:allow(hot-alloc): MAC event bookkeeping, per TXOP not per sample

            // WiFox: a backlogged AP preempts STA contention with
            // PIFS-like priority in about half of the rounds (adaptive
            // downlink prioritisation).
            let eligible = if cfg.protocol.has_downlink_priority() {
                let priority: Vec<usize> = eligible
                    .iter()
                    .copied()
                    .filter(|&k| nodes[k].is_ap && nodes[k].queue.len() >= 10)
                    .collect(); // lint:allow(hot-alloc): MAC event bookkeeping, per TXOP not per sample
                if !priority.is_empty() && rng.gen_bool(0.35) {
                    priority
                } else {
                    eligible
                }
            } else {
                eligible
            };

            if eligible.is_empty() {
                // Advance to the next event: arrival or AP release time.
                let mut next = cfg.duration_s;
                if arr_idx < arrivals.len() {
                    next = next.min(arrivals[arr_idx].time);
                }
                if let Some(w) = cfg.aggregation_wait {
                    for node in nodes.iter().filter(|n| n.is_ap) {
                        if let Some(head) = node.queue.front() {
                            next = next.min(head.enqueue + w.max_latency_s);
                        }
                    }
                }
                if next <= now {
                    next = now + SLOT_TIME;
                }
                now = next;
                continue;
            }

            // Joint countdown.
            let d = eligible
                .iter()
                .map(|&k| nodes[k].backoff)
                .min()
                .unwrap_or(0);
            now += DIFS + d as f64 * SLOT_TIME + cfg.extra_round_overhead_s;
            for &k in &eligible {
                nodes[k].backoff -= d;
            }
            let winners: Vec<usize> = eligible
                .iter()
                .copied()
                .filter(|&k| nodes[k].backoff == 0)
                .collect(); // lint:allow(hot-alloc): MAC event bookkeeping, per TXOP not per sample

            if winners.len() > 1 {
                // Collision: channel busy for the longest attempt. With
                // RTS/CTS the clash is detected after the short RTS.
                channel.collisions += 1;
                if obs.enabled() {
                    obs.counter("mac.collisions", 1);
                    obs.emit(
                        now,
                        Event::MacCollision {
                            contenders: winners.len() as u64,
                        },
                    );
                }
                let busy = if cfg.use_rts_cts {
                    rts_airtime(matches!(
                        cfg.protocol,
                        Protocol::Carpool | Protocol::MuAggregation
                    ))
                } else {
                    winners
                        .iter()
                        .map(|&k| self.plan_txop(&nodes[k], k, &occupancy).data_airtime)
                        .fold(0.0f64, f64::max)
                };
                now += busy + eifs();
                for &k in &winners {
                    // Head-frame retry accounting.
                    let drop = {
                        let node = &mut nodes[k];
                        if let Some(head) = node.queue.front_mut() {
                            head.attempts += 1;
                            head.attempts > cfg.retry_limit
                        } else {
                            false
                        }
                    };
                    if drop {
                        let node = &mut nodes[k];
                        let is_ap = node.is_ap;
                        if let Some(f) = node.queue.pop_front() {
                            let metrics = if is_ap { &mut downlink } else { &mut uplink };
                            metrics.record_drop(now - f.enqueue);
                            obs.emit(
                                now,
                                Event::MacDrop {
                                    dest: f.dest as u64,
                                    delay: now - f.enqueue,
                                },
                            );
                            obs.trace_frame(
                                TraceKind::MacDrop,
                                f.id,
                                now,
                                trace_u64(f.dest),
                                (now - f.enqueue).to_bits(),
                            );
                        }
                    }
                    nodes[k].on_collision(&mut rng);
                    if obs.enabled() {
                        obs.emit(
                            now,
                            Event::Backoff {
                                station: k as u64,
                                slots: nodes[k].backoff as u64,
                            },
                        );
                    }
                }
                // Everyone else overhears the garbled burst.
                for (sta, air) in sta_airtime.iter_mut().enumerate() {
                    let id = cfg.num_aps + sta;
                    if winners.contains(&id) {
                        air.tx_s += busy;
                    } else {
                        air.overhear_s += busy;
                    }
                }
                continue;
            }

            // Single winner transmits.
            let winner = winners[0];
            let plan = self.plan_txop(&nodes[winner], winner, &occupancy);
            let control = self.control_airtime(plan.groups.len());

            // Hidden-terminal interference: an uplink transmission is
            // vulnerable to hidden peers that cannot sense it. With
            // RTS/CTS, the AP's CTS silences them after the short RTS —
            // a hidden hit then costs only the aborted signalling;
            // without it, the whole data PPDU is exposed and lost.
            let mut hidden_loss = false;
            if cfg.hidden_terminals.is_some() && !nodes[winner].is_ap {
                let vulnerable = if cfg.use_rts_cts {
                    rts_airtime(false)
                } else {
                    plan.data_airtime
                };
                for (j, peer) in nodes.iter_mut().enumerate().skip(cfg.num_aps) {
                    if j == winner || peer.queue.is_empty() || !self.is_hidden(winner, j) {
                        continue;
                    }
                    // The hidden peer keeps counting down into the
                    // exposed window and fires if it expires inside it.
                    let expiry = peer.backoff as f64 * SLOT_TIME + DIFS;
                    if expiry < vulnerable {
                        hidden_loss = true;
                        let drop = {
                            if let Some(head) = peer.queue.front_mut() {
                                head.attempts += 1;
                                head.attempts > cfg.retry_limit
                            } else {
                                false
                            }
                        };
                        if drop {
                            if let Some(f) = peer.queue.pop_front() {
                                uplink.record_drop(now - f.enqueue);
                                obs.emit(
                                    now,
                                    Event::MacDrop {
                                        dest: f.dest as u64,
                                        delay: now - f.enqueue,
                                    },
                                );
                                obs.trace_frame(
                                    TraceKind::MacDrop,
                                    f.id,
                                    now,
                                    trace_u64(f.dest),
                                    (now - f.enqueue).to_bits(),
                                );
                            }
                        }
                        peer.on_collision(&mut rng);
                    }
                }
                if hidden_loss {
                    channel.hidden_collisions += 1;
                    obs.counter("mac.hidden_collisions", 1);
                }
            }

            if hidden_loss && cfg.use_rts_cts {
                // The missing CTS aborts the exchange after the RTS:
                // data frames stay queued and are retried cheaply.
                let busy = rts_airtime(true) + eifs();
                now += busy;
                {
                    let node = &mut nodes[winner];
                    if let Some(head) = node.queue.front_mut() {
                        head.attempts += 1;
                    }
                    node.on_collision(&mut rng);
                }
                for (sta, air) in sta_airtime.iter_mut().enumerate() {
                    let id = cfg.num_aps + sta;
                    if id == winner {
                        air.tx_s += busy;
                    } else {
                        air.overhear_s += busy;
                    }
                }
                continue;
            }

            let busy = plan.total_airtime() + control;
            now += busy;
            channel.transmissions += 1;
            channel.aggregated_frames += plan.selected.len() as u64;
            channel.aggregated_receivers += plan.groups.len() as u64;
            if obs.enabled() {
                obs.counter("mac.transmissions", 1);
                obs.counter("mac.aggregated_frames", plan.selected.len() as u64);
                obs.record("mac.txop_airtime", busy);
                obs.emit(
                    now,
                    Event::MacTx {
                        stas: plan.groups.len() as u64,
                        airtime: busy,
                    },
                );
            }

            // Evaluate per-frame success at its symbol position, and
            // charge each destination's time-occupancy account.
            let mut start_sym = plan.header_symbols;
            let mut outcomes: Vec<(usize, bool)> = Vec::with_capacity(plan.selected.len()); // lint:allow(hot-alloc): MAC event bookkeeping, per TXOP not per sample
            for (dest, indices, group_mcs) in &plan.groups {
                // The station whose link decides this subframe's fate:
                // the destination for downlink, the sender for uplink.
                let link_sta = if nodes[winner].is_ap {
                    dest.saturating_sub(cfg.num_aps)
                } else {
                    winner.saturating_sub(cfg.num_aps)
                };
                for &k in indices {
                    let frame = nodes[winner].queue[k];
                    let wire_bits = (frame.bytes + WIRE_OVERHEAD_BYTES) * 8;
                    let n_sym = group_mcs.symbols_for_bits(wire_bits);
                    let p = self
                        .error_model
                        .subframe_success_prob_for(link_sta, scheme, *group_mcs, start_sym, n_sym);
                    outcomes.push((k, !hidden_loss && rng.gen::<f64>() < p));
                    if obs.tracing() {
                        // Membership in this TXOP's aggregate, and the
                        // frame's symbol window on air (the data PPDU
                        // starts at `now - busy`).
                        let t_tx = now - busy;
                        obs.trace_frame(
                            TraceKind::AggDecision,
                            frame.id,
                            t_tx,
                            trace_u64(*dest),
                            trace_u64(start_sym),
                        );
                        obs.trace_frame(
                            TraceKind::AirtimeStart,
                            frame.id,
                            t_tx + symbol_span(start_sym),
                            trace_u64(*dest),
                            trace_u64(n_sym),
                        );
                        obs.trace_frame(
                            TraceKind::AirtimeEnd,
                            frame.id,
                            t_tx + symbol_span(start_sym + n_sym),
                            trace_u64(*dest),
                            trace_u64(n_sym),
                        );
                    }
                    start_sym += n_sym;
                    if nodes[winner].is_ap {
                        if let Some(slot) = occupancy.get_mut(dest.saturating_sub(cfg.num_aps)) {
                            *slot += n_sym as f64 * SYMBOL_DURATION;
                        }
                    }
                }
            }

            // Airtime accounting for STAs.
            let is_downlink = nodes[winner].is_ap;
            let carpool_like = matches!(cfg.protocol, Protocol::Carpool | Protocol::MuAggregation);
            for (sta, air) in sta_airtime.iter_mut().enumerate() {
                let id = cfg.num_aps + sta;
                if id == winner {
                    air.tx_s += plan.data_airtime;
                    air.rx_s += plan.ack_airtime_total;
                    continue;
                }
                let addressed = is_downlink && plan.groups.iter().any(|(dest, _, _)| *dest == id);
                if addressed {
                    if carpool_like {
                        // A-HDR plus (approximately) its own share.
                        let own: f64 = plan
                            .groups
                            .iter()
                            .filter(|(dest, _, _)| *dest == id)
                            .map(|(_, g, group_mcs)| {
                                g.iter()
                                    .map(|&k| {
                                        let bits = (nodes[winner].queue[k].bytes
                                            + WIRE_OVERHEAD_BYTES)
                                            * 8;
                                        group_mcs.airtime_for_bits(bits)
                                    })
                                    .sum::<f64>()
                            })
                            .sum();
                        air.rx_s += ahdr_airtime() + own;
                        air.idle_s += (busy - ahdr_airtime() - own).max(0.0);
                    } else {
                        air.rx_s += busy;
                    }
                } else if carpool_like && is_downlink {
                    // Checks the A-HDR, then idles.
                    air.overhear_s += PLCP_OVERHEAD + ahdr_airtime();
                    air.idle_s += (busy - PLCP_OVERHEAD - ahdr_airtime()).max(0.0);
                } else {
                    air.overhear_s += busy;
                }
            }

            // Deliver or requeue, removing selected entries.
            let node = &mut nodes[winner];
            let mut requeue: Vec<PendingFrame> = Vec::new(); // lint:allow(hot-alloc): MAC event bookkeeping, per TXOP not per sample
                                                             // Remove in descending index order to keep indices valid.
            let mut by_index: Vec<(usize, bool)> = outcomes;
            by_index.sort_by_key(|&(k, _)| std::cmp::Reverse(k));
            for (k, ok) in by_index {
                let Some(mut frame) = node.queue.remove(k) else {
                    continue;
                };
                let metrics = if node.is_ap {
                    &mut downlink
                } else {
                    &mut uplink
                };
                if ok {
                    metrics.record_delivery(frame.bytes, now - frame.enqueue, cfg.deadline);
                    obs.emit(
                        now,
                        Event::MacDelivery {
                            dest: frame.dest as u64,
                            bytes: frame.bytes as u64,
                            delay: now - frame.enqueue,
                        },
                    );
                    // b = enqueue→ACK delay as f64 bits.
                    obs.trace_frame(
                        TraceKind::MacAck,
                        frame.id,
                        now,
                        trace_u64(frame.dest),
                        (now - frame.enqueue).to_bits(),
                    );
                    if node.is_ap {
                        if let Some(sta) =
                            per_sta_downlink.get_mut(frame.dest.saturating_sub(cfg.num_aps))
                        {
                            sta.record_delivery(frame.bytes, now - frame.enqueue, cfg.deadline);
                        }
                    }
                } else {
                    metrics.record_retransmission();
                    obs.emit(
                        now,
                        Event::MacRetransmission {
                            dest: frame.dest as u64,
                        },
                    );
                    obs.trace_frame(
                        TraceKind::MacRetx,
                        frame.id,
                        now,
                        trace_u64(frame.dest),
                        u64::from(frame.attempts) + 1,
                    );
                    frame.attempts += 1;
                    if frame.attempts > cfg.retry_limit {
                        metrics.record_drop(now - frame.enqueue);
                        obs.emit(
                            now,
                            Event::MacDrop {
                                dest: frame.dest as u64,
                                delay: now - frame.enqueue,
                            },
                        );
                        obs.trace_frame(
                            TraceKind::MacDrop,
                            frame.id,
                            now,
                            trace_u64(frame.dest),
                            (now - frame.enqueue).to_bits(),
                        );
                    } else {
                        requeue.push(frame);
                    }
                }
            }
            // Failed frames return to the head, oldest first.
            requeue.sort_by(|a, b| b.enqueue.total_cmp(&a.enqueue));
            for f in requeue {
                node.queue.push_front(f);
            }
            node.on_success(&mut rng);
            if obs.enabled() {
                obs.gauge("mac.winner_queue_depth", node.queue.len() as f64);
                obs.emit(
                    now,
                    Event::QueueDepth {
                        dest: winner as u64,
                        depth: node.queue.len() as u64,
                    },
                );
                obs.emit(
                    now,
                    Event::Backoff {
                        station: winner as u64,
                        slots: node.backoff as u64,
                    },
                );
            }
        }

        // Idle fill-up.
        for share in &mut sta_airtime {
            let accounted = share.tx_s + share.rx_s + share.overhear_s + share.idle_s;
            share.idle_s += (cfg.duration_s - accounted).max(0.0);
        }

        if obs.enabled() {
            // Airtime-share distributions across STAs, for fairness views.
            for share in &sta_airtime {
                obs.record("mac.sta_airtime_tx_s", share.tx_s);
                obs.record("mac.sta_airtime_rx_s", share.rx_s);
                obs.record("mac.sta_airtime_overhear_s", share.overhear_s);
            }
            obs.gauge("mac.sim_duration_s", cfg.duration_s);
            obs.flush();
        }

        SimReport {
            duration_s: cfg.duration_s,
            downlink: downlink.into_metrics(),
            uplink: uplink.into_metrics(),
            channel,
            sta_airtime,
            per_sta_downlink,
        }
    }
}

/// Runs one independent simulation replication per seed across the
/// `carpool-par` worker pool and returns the reports in seed order.
///
/// Each replication builds its own [`Simulator`] from `config` (with
/// [`SimConfig::seed`] replaced by that replication's seed) and a fresh
/// error model from `make_model`, so no mutable state is shared between
/// workers. Because every replication derives its randomness solely from
/// its seed, the returned reports are identical whatever the thread
/// count — `CARPOOL_THREADS=1` and `CARPOOL_THREADS=8` produce the same
/// bytes. A panic inside any replication surfaces as
/// [`carpool_par::ParError::WorkerPanic`] instead of tearing down the
/// caller.
///
/// Replications run without observability ([`Obs::noop`]); attach a
/// recorder per [`Simulator`] instead when tracing a single run.
pub fn run_replications<F>(
    config: &SimConfig,
    seeds: &[u64],
    make_model: F,
) -> Result<Vec<SimReport>, carpool_par::ParError>
where
    F: Fn() -> Box<dyn FrameErrorModel> + Sync,
{
    carpool_par::par_map_indexed(seeds, |_idx, &seed| {
        let cfg = SimConfig {
            seed,
            ..config.clone() // lint:allow(hot-alloc): MAC event bookkeeping, per TXOP not per sample
        };
        Simulator::new(cfg, make_model()).run()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error_model::{BerBiasModel, PerfectChannel};

    fn base_config(protocol: Protocol, stas: usize) -> SimConfig {
        SimConfig {
            protocol,
            num_stas: stas,
            duration_s: 5.0,
            ..SimConfig::default()
        }
    }

    fn run(cfg: SimConfig) -> SimReport {
        Simulator::new(cfg, Box::new(BerBiasModel::calibrated())).run()
    }

    #[test]
    fn replications_match_serial_runs_in_seed_order() {
        let cfg = SimConfig {
            duration_s: 1.0,
            ..base_config(Protocol::Carpool, 6)
        };
        let seeds = [3u64, 7, 11];
        let parallel = run_replications(&cfg, &seeds, || {
            Box::new(BerBiasModel::calibrated()) as Box<dyn FrameErrorModel>
        })
        .expect("pool completes");
        let serial: Vec<SimReport> = seeds
            .iter()
            .map(|&seed| {
                let one = SimConfig {
                    seed,
                    ..cfg.clone()
                };
                Simulator::new(one, Box::new(BerBiasModel::calibrated())).run()
            })
            .collect();
        assert_eq!(parallel, serial);
    }

    #[test]
    fn light_load_delivers_everything() {
        let report = run(SimConfig {
            num_stas: 4,
            ..base_config(Protocol::Dot11, 4)
        });
        assert!(report.downlink.delivered_frames > 0);
        // Paper: "when the number of STAs is less than 10, delays of all
        // approaches are almost zero".
        assert!(
            report.downlink_delay_s() < 0.01,
            "{}",
            report.downlink_delay_s()
        );
    }

    #[test]
    fn carpool_beats_dot11_under_congestion() {
        let carpool = run(base_config(Protocol::Carpool, 30));
        let dot11 = run(base_config(Protocol::Dot11, 30));
        assert!(
            carpool.downlink_goodput_mbps() > dot11.downlink_goodput_mbps(),
            "carpool {} vs 802.11 {}",
            carpool.downlink_goodput_mbps(),
            dot11.downlink_goodput_mbps()
        );
    }

    #[test]
    fn carpool_beats_mu_aggregation_via_rte() {
        let mut carpool_cfg = base_config(Protocol::Carpool, 30);
        carpool_cfg.uplink = Some(UplinkTraffic::default());
        let mut mu_cfg = base_config(Protocol::MuAggregation, 30);
        mu_cfg.uplink = Some(UplinkTraffic::default());
        let carpool = run(carpool_cfg);
        let mu = run(mu_cfg);
        assert!(
            carpool.downlink.delivered_bytes >= mu.downlink.delivered_bytes,
            "carpool {} vs MU {}",
            carpool.downlink.delivered_bytes,
            mu.downlink.delivered_bytes
        );
    }

    #[test]
    fn aggregation_reduces_channel_acquisitions() {
        let carpool = run(base_config(Protocol::Carpool, 30));
        let dot11 = run(base_config(Protocol::Dot11, 30));
        assert!(carpool.channel.mean_aggregation() > dot11.channel.mean_aggregation());
        assert!((dot11.channel.mean_aggregation() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn perfect_channel_never_retransmits_without_collisions() {
        let cfg = SimConfig {
            num_stas: 1,
            num_aps: 1,
            ..base_config(Protocol::Dot11, 1)
        };
        let report = Simulator::new(cfg, Box::new(PerfectChannel)).run();
        // Channel-error retransmissions are impossible; collisions can
        // still happen between the AP and the STA's uplink VoIP.
        assert_eq!(report.downlink.retransmissions, 0);
        assert_eq!(report.uplink.retransmissions, 0);
    }

    #[test]
    fn collisions_occur_with_many_contenders() {
        let mut cfg = base_config(Protocol::Dot11, 30);
        cfg.uplink = Some(UplinkTraffic::default());
        let report = run(cfg);
        assert!(report.channel.collisions > 0);
    }

    #[test]
    fn deadline_bounds_goodput() {
        let mut cfg = base_config(Protocol::Dot11, 30);
        cfg.deadline = Some(0.01);
        let report = run(cfg);
        assert!(report.downlink.in_deadline_bytes <= report.downlink.delivered_bytes);
    }

    #[test]
    fn airtime_shares_sum_to_duration() {
        let report = run(base_config(Protocol::Carpool, 10));
        for (k, share) in report.sta_airtime.iter().enumerate() {
            assert!(
                (share.total() - report.duration_s).abs() < 1e-6,
                "sta {k}: {}",
                share.total()
            );
        }
    }

    #[test]
    fn carpool_receivers_idle_more_than_legacy() {
        let carpool = run(base_config(Protocol::Carpool, 20));
        let dot11 = run(base_config(Protocol::Dot11, 20));
        let carpool_idle: f64 = carpool.sta_airtime.iter().map(|s| s.idle_s).sum();
        let dot11_idle: f64 = dot11.sta_airtime.iter().map(|s| s.idle_s).sum();
        assert!(carpool_idle > dot11_idle);
    }

    #[test]
    fn reproducible_with_same_seed() {
        let a = run(base_config(Protocol::Carpool, 15));
        let b = run(base_config(Protocol::Carpool, 15));
        assert_eq!(a.downlink.delivered_bytes, b.downlink.delivered_bytes);
        assert_eq!(a.channel.collisions, b.channel.collisions);
    }

    #[test]
    fn different_seeds_differ() {
        let a = run(base_config(Protocol::Carpool, 15));
        let mut cfg = base_config(Protocol::Carpool, 15);
        cfg.seed = 2;
        let b = run(cfg);
        assert_ne!(a.downlink.delivered_bytes, b.downlink.delivered_bytes);
    }

    #[test]
    fn aggregation_wait_increases_batch_size() {
        let mut waiting = base_config(Protocol::Carpool, 20);
        waiting.aggregation_wait = Some(AggregationWait {
            max_latency_s: 0.05,
            max_bytes: 8000,
        });
        let eager = run(base_config(Protocol::Carpool, 20));
        let waited = run(waiting);
        assert!(
            waited.channel.mean_aggregation() >= eager.channel.mean_aggregation(),
            "waited {} vs eager {}",
            waited.channel.mean_aggregation(),
            eager.channel.mean_aggregation()
        );
    }

    #[test]
    fn hidden_terminals_cause_uplink_losses() {
        let mut cfg = base_config(Protocol::Dot11, 20);
        cfg.uplink = Some(UplinkTraffic::default());
        cfg.hidden_terminals = Some(HiddenTerminals { fraction: 0.5 });
        let with_hidden = run(cfg.clone());
        cfg.hidden_terminals = None;
        let without = run(cfg);
        assert!(with_hidden.channel.hidden_collisions > 0);
        assert!(
            with_hidden.uplink.delivered_bytes < without.uplink.delivered_bytes,
            "hidden {} vs clear {}",
            with_hidden.uplink.delivered_bytes,
            without.uplink.delivered_bytes
        );
    }

    #[test]
    fn rts_cts_mitigates_hidden_terminals() {
        let mut cfg = base_config(Protocol::Carpool, 20);
        cfg.uplink = Some(UplinkTraffic::default());
        cfg.hidden_terminals = Some(HiddenTerminals { fraction: 0.5 });
        let exposed = run(cfg.clone());
        cfg.use_rts_cts = true;
        let protected = run(cfg);
        assert!(
            protected.channel.hidden_collisions < exposed.channel.hidden_collisions,
            "protected {} vs exposed {}",
            protected.channel.hidden_collisions,
            exposed.channel.hidden_collisions
        );
    }

    #[test]
    fn rts_cts_costs_airtime_without_hidden_terminals() {
        let plain = run(base_config(Protocol::Carpool, 26));
        let mut cfg = base_config(Protocol::Carpool, 26);
        cfg.use_rts_cts = true;
        let with_rts = run(cfg);
        // Signalling overhead can only slow a clean, saturated cell.
        assert!(
            with_rts.downlink.delivered_bytes <= plain.downlink.delivered_bytes,
            "rts {} vs plain {}",
            with_rts.downlink.delivered_bytes,
            plain.downlink.delivered_bytes
        );
    }

    #[test]
    fn hidden_matrix_is_symmetric_and_seeded() {
        let cfg = SimConfig {
            hidden_terminals: Some(HiddenTerminals { fraction: 0.3 }),
            ..base_config(Protocol::Dot11, 10)
        };
        let sim = Simulator::new(cfg, Box::new(PerfectChannel));
        let mut hidden_pairs = 0;
        for a in 2..12 {
            for b in 2..12 {
                assert_eq!(sim.is_hidden(a, b), sim.is_hidden(b, a));
                if a < b && sim.is_hidden(a, b) {
                    hidden_pairs += 1;
                }
            }
        }
        // ~30% of 45 pairs, loosely.
        assert!(
            (4..=25).contains(&hidden_pairs),
            "{hidden_pairs} hidden pairs"
        );
        for a in 2..12 {
            assert!(!sim.is_hidden(a, a));
        }
    }

    #[test]
    fn rate_adaptation_serves_far_stations_slower() {
        // Half the stations are near (54 Mbit/s), half far (6 Mbit/s):
        // total goodput sits between the two uniform-rate extremes.
        let mut mixed = base_config(Protocol::Carpool, 20);
        mixed.per_sta_snr_db = Some(
            (0..20)
                .map(|k| if k % 2 == 0 { 30.0 } else { 6.0 })
                .collect(),
        );
        let mut all_fast = base_config(Protocol::Carpool, 20);
        all_fast.per_sta_snr_db = Some(vec![30.0; 20]);
        let mut all_slow = base_config(Protocol::Carpool, 20);
        all_slow.per_sta_snr_db = Some(vec![6.0; 20]);
        let fast = run(all_fast).downlink.delivered_bytes;
        let slow = run(all_slow).downlink.delivered_bytes;
        let mid = run(mixed).downlink.delivered_bytes;
        assert!(fast >= mid, "fast {fast} mid {mid}");
        assert!(mid >= slow, "mid {mid} slow {slow}");
        assert!(fast > slow, "rates must matter: fast {fast} slow {slow}");
    }

    #[test]
    fn per_sta_metrics_sum_to_aggregate() {
        let report = run(base_config(Protocol::Carpool, 12));
        let total: u64 = report
            .per_sta_downlink
            .iter()
            .map(|m| m.delivered_bytes)
            .sum();
        assert_eq!(total, report.downlink.delivered_bytes);
        let frames: u64 = report
            .per_sta_downlink
            .iter()
            .map(|m| m.delivered_frames)
            .sum();
        assert_eq!(frames, report.downlink.delivered_frames);
    }

    #[test]
    fn fairness_index_is_high_for_symmetric_load() {
        let report = run(base_config(Protocol::Carpool, 12));
        let f = report.downlink_fairness();
        assert!(f > 0.9, "fairness {f}");
    }

    #[test]
    fn time_fairness_narrows_service_spread() {
        // With one slow station, FIFO lets whoever queues first hog the
        // air; time fairness should not *increase* the spread of
        // per-station delivery and must still deliver traffic.
        let mut fifo_cfg = base_config(Protocol::Carpool, 16);
        fifo_cfg.uplink = Some(UplinkTraffic::default());
        let mut fair_cfg = fifo_cfg.clone();
        fair_cfg.scheduler = SchedulerPolicy::TimeFair;
        let fifo = run(fifo_cfg);
        let fair = run(fair_cfg);
        assert!(fair.downlink.delivered_frames > 0);
        // Both disciplines carry comparable totals.
        let ratio =
            fair.downlink.delivered_bytes as f64 / fifo.downlink.delivered_bytes.max(1) as f64;
        assert!((0.7..=1.3).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn mixed_population_still_serves_everyone() {
        let mut cfg = base_config(Protocol::Carpool, 20);
        cfg.carpool_fraction = 0.5;
        let report = run(cfg);
        // Legacy stations (ids >= 10) still receive traffic.
        let legacy_rx: f64 = report.sta_airtime[10..].iter().map(|s| s.rx_s).sum();
        assert!(legacy_rx > 0.0, "legacy stations starved");
        assert!(report.downlink.delivered_frames > 0);
    }

    #[test]
    fn goodput_grows_with_carpool_adoption() {
        let mut results = Vec::new();
        for fraction in [0.0, 0.5, 1.0] {
            let mut cfg = base_config(Protocol::Carpool, 30);
            cfg.carpool_fraction = fraction;
            results.push(run(cfg).downlink.delivered_bytes);
        }
        assert!(
            results[2] > results[0],
            "full adoption {} vs none {}",
            results[2],
            results[0]
        );
        assert!(results[1] >= results[0], "partial adoption should not hurt");
    }

    #[test]
    fn zero_adoption_equals_dot11_behaviour() {
        // With no capable stations, Carpool degenerates to single-frame
        // service — same goodput magnitude as 802.11.
        let mut cfg = base_config(Protocol::Carpool, 30);
        cfg.carpool_fraction = 0.0;
        let carpool0 = run(cfg);
        let dot11 = run(base_config(Protocol::Dot11, 30));
        let ratio =
            carpool0.downlink.delivered_bytes as f64 / dot11.downlink.delivered_bytes.max(1) as f64;
        assert!((0.5..=2.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn no_traffic_produces_empty_report() {
        let cfg = SimConfig {
            downlink: DownlinkTraffic::None,
            uplink: None,
            ..base_config(Protocol::Dot11, 5)
        };
        let report = run(cfg);
        assert_eq!(report.downlink.delivered_frames, 0);
        assert_eq!(report.channel.transmissions, 0);
    }
}
