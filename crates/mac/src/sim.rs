//! Event-driven DCF simulator for a single collision domain.
//!
//! Follows the paper's methodology (Section 7.2.1): all nodes — two APs
//! and 10–30 STAs — are within carrier-sense range and contend with the
//! IEEE 802.11n parameters of Table 2 (slot 9 µs, SIFS 10 µs, DIFS
//! 28 µs, CW 15–1023, exponential backoff). Frame decoding is driven by
//! a [`FrameErrorModel`]-driven model calibrated
//! from `carpool-phy` runs, the software analogue of the paper's
//! USRP-trace-driven emulation.
//!
//! The engine uses the *virtual slot* technique, exact for a single
//! collision domain: whenever the medium goes idle, all backlogged
//! nodes count down together; the minimum-backoff node(s) transmit, and
//! simultaneous expiry is a collision.
//!
//! This module holds the configuration surface and the single-domain
//! driver; the event loop itself lives in [`crate::engine`] as a
//! steppable [`Domain`](crate::engine) built on the calendar queue
//! ([`crate::calendar`]) and frame arena ([`crate::arena`]), which is
//! also what the sharded dense-scenario runner
//! ([`crate::engine::run_dense`]) drives in parallel.

use crate::engine::{Domain, ModelHandle};
use crate::error_model::FrameErrorModel;
use crate::metrics::SimReport;
use crate::protocol::Protocol;
use carpool_frame::aggregation::AggregationLimits;
use carpool_frame::mac_frame::{FCS_BYTES, MAC_HEADER_BYTES};
use carpool_obs::Obs;
use carpool_phy::mcs::Mcs;

/// Per-MPDU wire overhead: MAC header + FCS + A-MPDU delimiter.
pub(crate) const WIRE_OVERHEAD_BYTES: usize = MAC_HEADER_BYTES + FCS_BYTES + 2;

/// Downlink traffic offered to each STA.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DownlinkTraffic {
    /// Brady ON/OFF VoIP (96 kbit/s peak, 120 B frames).
    Voip,
    /// Constant bit rate: one frame of `bytes` every `interval_s`.
    Cbr {
        /// Inter-frame interval in seconds.
        interval_s: f64,
        /// Frame size in bytes.
        bytes: usize,
    },
    /// No downlink traffic.
    None,
}

/// Uplink background traffic configuration (SIGCOMM'08 style).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UplinkTraffic {
    /// Fraction of STAs running a TCP-like source (rest are UDP-like).
    pub tcp_fraction: f64,
    /// Rate multiplier applied to every source (1.0 = trace level).
    pub rate_scale: f64,
}

impl Default for UplinkTraffic {
    fn default() -> Self {
        UplinkTraffic {
            tcp_fraction: 0.5,
            rate_scale: 1.0,
        }
    }
}

/// Downlink scheduling discipline at the AP (paper Section 8,
/// Fairness).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerPolicy {
    /// First in, first out — the paper's default for delay-insensitive
    /// traffic.
    #[default]
    Fifo,
    /// Time fairness: the AP keeps a time-occupancy table and serves the
    /// stations with the smallest cumulative airtime first.
    TimeFair,
}

/// Hidden-terminal topology: each unordered STA pair is mutually
/// hidden with probability `fraction` (drawn deterministically from the
/// simulation seed). Hidden stations cannot carrier-sense each other's
/// uplink transmissions and may fire into them — the situation the
/// multicast RTS/CTS of paper Fig. 7 mitigates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HiddenTerminals {
    /// Probability that a given STA pair is mutually hidden.
    pub fraction: f64,
}

/// Aggregation trigger (paper Section 7.2.2): the AP holds off until
/// the buffered bytes reach `max_bytes` or the oldest frame has waited
/// `max_latency_s`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AggregationWait {
    /// Maximum waiting time of the oldest frame.
    pub max_latency_s: f64,
    /// Byte threshold that releases the aggregate early.
    pub max_bytes: usize,
}

/// Full simulation configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Downlink MAC protocol under test.
    pub protocol: Protocol,
    /// Number of stations.
    pub num_stas: usize,
    /// Number of access points (the paper uses 2).
    pub num_aps: usize,
    /// Simulated seconds.
    pub duration_s: f64,
    /// RNG seed.
    pub seed: u64,
    /// Data MCS (the paper's 65 Mbit/s 802.11n rate maps to the closest
    /// 802.11a/g rate, 54 Mbit/s QAM64-3/4, in this PHY).
    pub data_mcs: Mcs,
    /// Downlink workload per STA.
    pub downlink: DownlinkTraffic,
    /// Optional uplink background workload.
    pub uplink: Option<UplinkTraffic>,
    /// Aggregation limits (size, receivers, frames per receiver).
    pub limits: AggregationLimits,
    /// Optional aggregation trigger.
    pub aggregation_wait: Option<AggregationWait>,
    /// Optional delivery deadline for deadline-bounded goodput.
    pub deadline: Option<f64>,
    /// Drop downlink frames older than this at the AP (delay-sensitive
    /// traffic discards expired frames instead of queueing them forever,
    /// as in the paper's Fig. 17 experiments).
    pub drop_expired_s: Option<f64>,
    /// Retry limit before a frame is dropped.
    pub retry_limit: u32,
    /// Whether VoIP calls are two-way (each STA also sends an uplink
    /// VoIP stream). Two-way calls create the uplink contention that
    /// starves the AP — the downlink/uplink asymmetry of Section 2.
    pub bidirectional_voip: bool,
    /// Per-STA link SNR in dB (index = STA id). When set, every
    /// station is served at the MCS its link supports
    /// ([`crate::rate::mcs_for_snr`]) — "different subframes can adopt
    /// different MCSs" (paper Section 4.1). `None` serves everyone at
    /// [`SimConfig::data_mcs`].
    pub per_sta_snr_db: Option<Vec<f64>>,
    /// Downlink scheduling discipline.
    pub scheduler: SchedulerPolicy,
    /// Fraction of STAs that support Carpool (Section 4.3, AP
    /// association): the AP aggregates across Carpool-capable clients
    /// and falls back to single-frame transmissions for legacy ones.
    /// Station ids `< fraction * num_stas` are capable.
    pub carpool_fraction: f64,
    /// Precede every data exchange with RTS/CTS signalling — Carpool
    /// uses one multicast RTS carrying the A-HDR followed by sequential
    /// CTSs (paper Fig. 7).
    pub use_rts_cts: bool,
    /// Optional hidden-terminal topology among STAs.
    pub hidden_terminals: Option<HiddenTerminals>,
    /// Fixed extra cost per contention round, seconds. Calibrates the
    /// engine's (optimistic) concurrent-countdown DCF to the per-access
    /// contention cost of the paper's MATLAB simulator, where deferral
    /// and backoff slots do not overlap with other nodes' countdowns.
    pub extra_round_overhead_s: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            protocol: Protocol::Carpool,
            num_stas: 20,
            num_aps: 2,
            duration_s: 10.0,
            seed: 1,
            data_mcs: Mcs::QAM64_3_4,
            downlink: DownlinkTraffic::Voip,
            uplink: None,
            // Per-receiver MPDU budget bounded by the block-ACK window
            // actually serviceable per TXOP with short VoIP frames.
            limits: AggregationLimits {
                max_frames_per_receiver: 4,
                ..AggregationLimits::default()
            },
            aggregation_wait: None,
            deadline: None,
            drop_expired_s: None,
            retry_limit: 7,
            bidirectional_voip: true,
            per_sta_snr_db: None,
            scheduler: SchedulerPolicy::Fifo,
            carpool_fraction: 1.0,
            use_rts_cts: false,
            hidden_terminals: None,
            extra_round_overhead_s: 80e-6,
        }
    }
}

/// The simulator.
pub struct Simulator {
    config: SimConfig,
    error_model: Box<dyn FrameErrorModel>,
    obs: Obs,
}

impl Simulator {
    /// Creates a simulator with the given config and error model.
    pub fn new(config: SimConfig, error_model: Box<dyn FrameErrorModel>) -> Simulator {
        Simulator {
            config,
            error_model,
            obs: Obs::noop(),
        }
    }

    /// Attaches an observability handle. During [`Simulator::run`] the
    /// simulator streams simulation-clock-stamped events (arrivals as the
    /// MAC ingests them, deliveries, drops, retransmissions, collisions,
    /// TXOPs, queue depths, backoff draws) and mirrors the per-direction
    /// [`crate::metrics::FlowMetrics`] into the recorder's
    /// `mac.downlink.*` / `mac.uplink.*` counters and delay histograms.
    /// Event timestamps never decrease: every event is stamped with the
    /// current value of the simulation clock.
    pub fn with_obs(mut self, obs: Obs) -> Simulator {
        self.obs = obs;
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Deterministically decides whether two STA node ids are mutually
    /// hidden under the configured topology.
    #[cfg(test)]
    fn is_hidden(&self, a: usize, b: usize) -> bool {
        let Some(h) = self.config.hidden_terminals else {
            return false;
        };
        crate::engine::hidden_pair(self.config.seed, h.fraction, a, b)
    }

    /// Runs the simulation to completion.
    ///
    /// This drives a single [`crate::engine`] domain from 0 to
    /// `duration_s` in one stride — the event loop, calendar queue, and
    /// frame arena all live there. The emitted byte stream (metrics,
    /// events, traces) is identical to the pre-engine inline loop.
    pub fn run(&self) -> SimReport {
        assert!(self.config.num_aps >= 1, "need at least one AP");
        let _sim_span = self.obs.span("mac.sim_loop");
        let mut domain = Domain::new(
            self.config.clone(), // lint:allow(hot-alloc): one clone per run
            ModelHandle::Borrowed(self.error_model.as_ref()),
            self.obs.clone(), // lint:allow(hot-alloc): one handle clone per run
            0,
            0.0,
        );
        let duration = self.config.duration_s;
        while domain.step(duration) {}
        domain.finish()
    }
}

/// Runs one independent simulation replication per seed across the
/// `carpool-par` worker pool and returns the reports in seed order.
///
/// Each replication builds its own [`Simulator`] from `config` (with
/// [`SimConfig::seed`] replaced by that replication's seed) and a fresh
/// error model from `make_model`, so no mutable state is shared between
/// workers. Because every replication derives its randomness solely from
/// its seed, the returned reports are identical whatever the thread
/// count — `CARPOOL_THREADS=1` and `CARPOOL_THREADS=8` produce the same
/// bytes. A panic inside any replication surfaces as
/// [`carpool_par::ParError::WorkerPanic`] instead of tearing down the
/// caller.
///
/// Replications run without observability ([`Obs::noop`]); attach a
/// recorder per [`Simulator`] instead when tracing a single run.
pub fn run_replications<F>(
    config: &SimConfig,
    seeds: &[u64],
    make_model: F,
) -> Result<Vec<SimReport>, carpool_par::ParError>
where
    F: Fn() -> Box<dyn FrameErrorModel> + Sync,
{
    carpool_par::par_map_indexed(seeds, |_idx, &seed| {
        let cfg = SimConfig {
            seed,
            ..config.clone() // lint:allow(hot-alloc): MAC event bookkeeping, per TXOP not per sample
        };
        Simulator::new(cfg, make_model()).run()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error_model::{BerBiasModel, PerfectChannel};

    fn base_config(protocol: Protocol, stas: usize) -> SimConfig {
        SimConfig {
            protocol,
            num_stas: stas,
            duration_s: 5.0,
            ..SimConfig::default()
        }
    }

    fn run(cfg: SimConfig) -> SimReport {
        Simulator::new(cfg, Box::new(BerBiasModel::calibrated())).run()
    }

    #[test]
    fn replications_match_serial_runs_in_seed_order() {
        let cfg = SimConfig {
            duration_s: 1.0,
            ..base_config(Protocol::Carpool, 6)
        };
        let seeds = [3u64, 7, 11];
        let parallel = run_replications(&cfg, &seeds, || {
            Box::new(BerBiasModel::calibrated()) as Box<dyn FrameErrorModel>
        })
        .expect("pool completes");
        let serial: Vec<SimReport> = seeds
            .iter()
            .map(|&seed| {
                let one = SimConfig {
                    seed,
                    ..cfg.clone()
                };
                Simulator::new(one, Box::new(BerBiasModel::calibrated())).run()
            })
            .collect();
        assert_eq!(parallel, serial);
    }

    #[test]
    fn light_load_delivers_everything() {
        let report = run(SimConfig {
            num_stas: 4,
            ..base_config(Protocol::Dot11, 4)
        });
        assert!(report.downlink.delivered_frames > 0);
        // Paper: "when the number of STAs is less than 10, delays of all
        // approaches are almost zero".
        assert!(
            report.downlink_delay_s() < 0.01,
            "{}",
            report.downlink_delay_s()
        );
    }

    #[test]
    fn carpool_beats_dot11_under_congestion() {
        let carpool = run(base_config(Protocol::Carpool, 30));
        let dot11 = run(base_config(Protocol::Dot11, 30));
        assert!(
            carpool.downlink_goodput_mbps() > dot11.downlink_goodput_mbps(),
            "carpool {} vs 802.11 {}",
            carpool.downlink_goodput_mbps(),
            dot11.downlink_goodput_mbps()
        );
    }

    #[test]
    fn carpool_beats_mu_aggregation_via_rte() {
        let mut carpool_cfg = base_config(Protocol::Carpool, 30);
        carpool_cfg.uplink = Some(UplinkTraffic::default());
        let mut mu_cfg = base_config(Protocol::MuAggregation, 30);
        mu_cfg.uplink = Some(UplinkTraffic::default());
        let carpool = run(carpool_cfg);
        let mu = run(mu_cfg);
        assert!(
            carpool.downlink.delivered_bytes >= mu.downlink.delivered_bytes,
            "carpool {} vs MU {}",
            carpool.downlink.delivered_bytes,
            mu.downlink.delivered_bytes
        );
    }

    #[test]
    fn aggregation_reduces_channel_acquisitions() {
        let carpool = run(base_config(Protocol::Carpool, 30));
        let dot11 = run(base_config(Protocol::Dot11, 30));
        assert!(carpool.channel.mean_aggregation() > dot11.channel.mean_aggregation());
        assert!((dot11.channel.mean_aggregation() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn perfect_channel_never_retransmits_without_collisions() {
        let cfg = SimConfig {
            num_stas: 1,
            num_aps: 1,
            ..base_config(Protocol::Dot11, 1)
        };
        let report = Simulator::new(cfg, Box::new(PerfectChannel)).run();
        // Channel-error retransmissions are impossible; collisions can
        // still happen between the AP and the STA's uplink VoIP.
        assert_eq!(report.downlink.retransmissions, 0);
        assert_eq!(report.uplink.retransmissions, 0);
    }

    #[test]
    fn collisions_occur_with_many_contenders() {
        let mut cfg = base_config(Protocol::Dot11, 30);
        cfg.uplink = Some(UplinkTraffic::default());
        let report = run(cfg);
        assert!(report.channel.collisions > 0);
    }

    #[test]
    fn deadline_bounds_goodput() {
        let mut cfg = base_config(Protocol::Dot11, 30);
        cfg.deadline = Some(0.01);
        let report = run(cfg);
        assert!(report.downlink.in_deadline_bytes <= report.downlink.delivered_bytes);
    }

    #[test]
    fn airtime_shares_sum_to_duration() {
        let report = run(base_config(Protocol::Carpool, 10));
        for (k, share) in report.sta_airtime.iter().enumerate() {
            assert!(
                (share.total() - report.duration_s).abs() < 1e-6,
                "sta {k}: {}",
                share.total()
            );
        }
    }

    #[test]
    fn carpool_receivers_idle_more_than_legacy() {
        let carpool = run(base_config(Protocol::Carpool, 20));
        let dot11 = run(base_config(Protocol::Dot11, 20));
        let carpool_idle: f64 = carpool.sta_airtime.iter().map(|s| s.idle_s).sum();
        let dot11_idle: f64 = dot11.sta_airtime.iter().map(|s| s.idle_s).sum();
        assert!(carpool_idle > dot11_idle);
    }

    #[test]
    fn reproducible_with_same_seed() {
        let a = run(base_config(Protocol::Carpool, 15));
        let b = run(base_config(Protocol::Carpool, 15));
        assert_eq!(a.downlink.delivered_bytes, b.downlink.delivered_bytes);
        assert_eq!(a.channel.collisions, b.channel.collisions);
    }

    #[test]
    fn different_seeds_differ() {
        let a = run(base_config(Protocol::Carpool, 15));
        let mut cfg = base_config(Protocol::Carpool, 15);
        cfg.seed = 2;
        let b = run(cfg);
        assert_ne!(a.downlink.delivered_bytes, b.downlink.delivered_bytes);
    }

    #[test]
    fn aggregation_wait_increases_batch_size() {
        let mut waiting = base_config(Protocol::Carpool, 20);
        waiting.aggregation_wait = Some(AggregationWait {
            max_latency_s: 0.05,
            max_bytes: 8000,
        });
        let eager = run(base_config(Protocol::Carpool, 20));
        let waited = run(waiting);
        assert!(
            waited.channel.mean_aggregation() >= eager.channel.mean_aggregation(),
            "waited {} vs eager {}",
            waited.channel.mean_aggregation(),
            eager.channel.mean_aggregation()
        );
    }

    #[test]
    fn hidden_terminals_cause_uplink_losses() {
        let mut cfg = base_config(Protocol::Dot11, 20);
        cfg.uplink = Some(UplinkTraffic::default());
        cfg.hidden_terminals = Some(HiddenTerminals { fraction: 0.5 });
        let with_hidden = run(cfg.clone());
        cfg.hidden_terminals = None;
        let without = run(cfg);
        assert!(with_hidden.channel.hidden_collisions > 0);
        assert!(
            with_hidden.uplink.delivered_bytes < without.uplink.delivered_bytes,
            "hidden {} vs clear {}",
            with_hidden.uplink.delivered_bytes,
            without.uplink.delivered_bytes
        );
    }

    #[test]
    fn rts_cts_mitigates_hidden_terminals() {
        let mut cfg = base_config(Protocol::Carpool, 20);
        cfg.uplink = Some(UplinkTraffic::default());
        cfg.hidden_terminals = Some(HiddenTerminals { fraction: 0.5 });
        let exposed = run(cfg.clone());
        cfg.use_rts_cts = true;
        let protected = run(cfg);
        assert!(
            protected.channel.hidden_collisions < exposed.channel.hidden_collisions,
            "protected {} vs exposed {}",
            protected.channel.hidden_collisions,
            exposed.channel.hidden_collisions
        );
    }

    #[test]
    fn rts_cts_costs_airtime_without_hidden_terminals() {
        let plain = run(base_config(Protocol::Carpool, 26));
        let mut cfg = base_config(Protocol::Carpool, 26);
        cfg.use_rts_cts = true;
        let with_rts = run(cfg);
        // Signalling overhead can only slow a clean, saturated cell.
        assert!(
            with_rts.downlink.delivered_bytes <= plain.downlink.delivered_bytes,
            "rts {} vs plain {}",
            with_rts.downlink.delivered_bytes,
            plain.downlink.delivered_bytes
        );
    }

    #[test]
    fn hidden_matrix_is_symmetric_and_seeded() {
        let cfg = SimConfig {
            hidden_terminals: Some(HiddenTerminals { fraction: 0.3 }),
            ..base_config(Protocol::Dot11, 10)
        };
        let sim = Simulator::new(cfg, Box::new(PerfectChannel));
        let mut hidden_pairs = 0;
        for a in 2..12 {
            for b in 2..12 {
                assert_eq!(sim.is_hidden(a, b), sim.is_hidden(b, a));
                if a < b && sim.is_hidden(a, b) {
                    hidden_pairs += 1;
                }
            }
        }
        // ~30% of 45 pairs, loosely.
        assert!(
            (4..=25).contains(&hidden_pairs),
            "{hidden_pairs} hidden pairs"
        );
        for a in 2..12 {
            assert!(!sim.is_hidden(a, a));
        }
    }

    #[test]
    fn rate_adaptation_serves_far_stations_slower() {
        // Half the stations are near (54 Mbit/s), half far (6 Mbit/s):
        // total goodput sits between the two uniform-rate extremes.
        let mut mixed = base_config(Protocol::Carpool, 20);
        mixed.per_sta_snr_db = Some(
            (0..20)
                .map(|k| if k % 2 == 0 { 30.0 } else { 6.0 })
                .collect(),
        );
        let mut all_fast = base_config(Protocol::Carpool, 20);
        all_fast.per_sta_snr_db = Some(vec![30.0; 20]);
        let mut all_slow = base_config(Protocol::Carpool, 20);
        all_slow.per_sta_snr_db = Some(vec![6.0; 20]);
        let fast = run(all_fast).downlink.delivered_bytes;
        let slow = run(all_slow).downlink.delivered_bytes;
        let mid = run(mixed).downlink.delivered_bytes;
        assert!(fast >= mid, "fast {fast} mid {mid}");
        assert!(mid >= slow, "mid {mid} slow {slow}");
        assert!(fast > slow, "rates must matter: fast {fast} slow {slow}");
    }

    #[test]
    fn per_sta_metrics_sum_to_aggregate() {
        let report = run(base_config(Protocol::Carpool, 12));
        let total: u64 = report
            .per_sta_downlink
            .iter()
            .map(|m| m.delivered_bytes)
            .sum();
        assert_eq!(total, report.downlink.delivered_bytes);
        let frames: u64 = report
            .per_sta_downlink
            .iter()
            .map(|m| m.delivered_frames)
            .sum();
        assert_eq!(frames, report.downlink.delivered_frames);
    }

    #[test]
    fn fairness_index_is_high_for_symmetric_load() {
        let report = run(base_config(Protocol::Carpool, 12));
        let f = report.downlink_fairness();
        assert!(f > 0.9, "fairness {f}");
    }

    #[test]
    fn time_fairness_narrows_service_spread() {
        // With one slow station, FIFO lets whoever queues first hog the
        // air; time fairness should not *increase* the spread of
        // per-station delivery and must still deliver traffic.
        let mut fifo_cfg = base_config(Protocol::Carpool, 16);
        fifo_cfg.uplink = Some(UplinkTraffic::default());
        let mut fair_cfg = fifo_cfg.clone();
        fair_cfg.scheduler = SchedulerPolicy::TimeFair;
        let fifo = run(fifo_cfg);
        let fair = run(fair_cfg);
        assert!(fair.downlink.delivered_frames > 0);
        // Both disciplines carry comparable totals.
        let ratio =
            fair.downlink.delivered_bytes as f64 / fifo.downlink.delivered_bytes.max(1) as f64;
        assert!((0.7..=1.3).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn mixed_population_still_serves_everyone() {
        let mut cfg = base_config(Protocol::Carpool, 20);
        cfg.carpool_fraction = 0.5;
        let report = run(cfg);
        // Legacy stations (ids >= 10) still receive traffic.
        let legacy_rx: f64 = report.sta_airtime[10..].iter().map(|s| s.rx_s).sum();
        assert!(legacy_rx > 0.0, "legacy stations starved");
        assert!(report.downlink.delivered_frames > 0);
    }

    #[test]
    fn goodput_grows_with_carpool_adoption() {
        let mut results = Vec::new();
        for fraction in [0.0, 0.5, 1.0] {
            let mut cfg = base_config(Protocol::Carpool, 30);
            cfg.carpool_fraction = fraction;
            results.push(run(cfg).downlink.delivered_bytes);
        }
        assert!(
            results[2] > results[0],
            "full adoption {} vs none {}",
            results[2],
            results[0]
        );
        assert!(results[1] >= results[0], "partial adoption should not hurt");
    }

    #[test]
    fn zero_adoption_equals_dot11_behaviour() {
        // With no capable stations, Carpool degenerates to single-frame
        // service — same goodput magnitude as 802.11.
        let mut cfg = base_config(Protocol::Carpool, 30);
        cfg.carpool_fraction = 0.0;
        let carpool0 = run(cfg);
        let dot11 = run(base_config(Protocol::Dot11, 30));
        let ratio =
            carpool0.downlink.delivered_bytes as f64 / dot11.downlink.delivered_bytes.max(1) as f64;
        assert!((0.5..=2.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn no_traffic_produces_empty_report() {
        let cfg = SimConfig {
            downlink: DownlinkTraffic::None,
            uplink: None,
            ..base_config(Protocol::Dot11, 5)
        };
        let report = run(cfg);
        assert_eq!(report.downlink.delivered_frames, 0);
        assert_eq!(report.channel.transmissions, 0);
    }
}
