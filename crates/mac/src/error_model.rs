//! Frame-decoding error models for the trace-driven MAC simulation.
//!
//! The paper's MAC evaluation "emulates the frame decoding performance
//! based on the traces collected from USRP nodes" (Section 7.2.1) —
//! frames are marked decodable or not according to measured PHY
//! behaviour. Here the same role is played by a [`FrameErrorModel`]:
//! the simulator asks for the success probability of a subframe given
//! its *position inside the PPDU* (in OFDM symbols), its MCS, and the
//! channel-estimation scheme in use.
//!
//! The default [`BerBiasModel`] captures the paper's central PHY
//! finding: under standard (preamble-only) estimation, the residual
//! post-FEC symbol failure probability grows with the symbol index (BER
//! bias, Fig. 3), while RTE keeps it nearly flat (Fig. 13). The model's
//! coefficients were calibrated against `carpool-phy` Monte-Carlo runs;
//! [`SymbolErrorCurve`] lets callers plug in measured curves directly
//! (the software analogue of feeding USRP traces into the simulator).

use carpool_phy::mcs::Mcs;
use carpool_phy::modulation::Modulation;

/// Channel-estimation scheme used by a receiver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EstimationScheme {
    /// IEEE 802.11 preamble-only estimation.
    #[default]
    Standard,
    /// Carpool real-time estimation.
    Rte,
}

/// Decides whether (sub)frames survive the channel.
pub trait FrameErrorModel: Send + Sync {
    /// Probability that a subframe occupying `num_symbols` OFDM symbols
    /// starting at symbol `start_symbol` (counted from the PHY header)
    /// decodes correctly.
    fn subframe_success_prob(
        &self,
        scheme: EstimationScheme,
        mcs: Mcs,
        start_symbol: usize,
        num_symbols: usize,
    ) -> f64;

    /// Station-aware variant: the paper feeds "the traces at each
    /// location ... into one STA", so models may differ per station.
    /// Defaults to the station-agnostic probability.
    fn subframe_success_prob_for(
        &self,
        sta: usize,
        scheme: EstimationScheme,
        mcs: Mcs,
        start_symbol: usize,
        num_symbols: usize,
    ) -> f64 {
        let _ = sta;
        self.subframe_success_prob(scheme, mcs, start_symbol, num_symbols)
    }
}

/// Per-station error traces: station `k` uses `models[k % models.len()]`
/// — the software analogue of assigning each simulated STA the USRP
/// capture of one measurement location (paper Section 7.2.1).
pub struct PerStaErrorModel<M> {
    models: Vec<M>,
}

impl<M: FrameErrorModel> PerStaErrorModel<M> {
    /// Creates a per-station model from one model per location.
    ///
    /// # Panics
    ///
    /// Panics if `models` is empty.
    pub fn new(models: Vec<M>) -> PerStaErrorModel<M> {
        assert!(!models.is_empty(), "need at least one location model");
        PerStaErrorModel { models }
    }

    /// Number of distinct location models.
    pub fn locations(&self) -> usize {
        self.models.len()
    }
}

impl<M: FrameErrorModel> FrameErrorModel for PerStaErrorModel<M> {
    fn subframe_success_prob(
        &self,
        scheme: EstimationScheme,
        mcs: Mcs,
        start_symbol: usize,
        num_symbols: usize,
    ) -> f64 {
        self.models[0].subframe_success_prob(scheme, mcs, start_symbol, num_symbols)
    }

    fn subframe_success_prob_for(
        &self,
        sta: usize,
        scheme: EstimationScheme,
        mcs: Mcs,
        start_symbol: usize,
        num_symbols: usize,
    ) -> f64 {
        self.models[sta % self.models.len()].subframe_success_prob(
            scheme,
            mcs,
            start_symbol,
            num_symbols,
        )
    }
}

/// An error-free channel (useful for isolating MAC effects).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PerfectChannel;

impl FrameErrorModel for PerfectChannel {
    fn subframe_success_prob(&self, _: EstimationScheme, _: Mcs, _: usize, _: usize) -> f64 {
        1.0
    }
}

/// Parametric BER-bias model.
///
/// The per-symbol residual failure probability after FEC is modelled as
/// `p(k) = base(modulation) x (1 + slope x k)` where `k` is the symbol
/// index; `slope` depends on the estimation scheme. Subframe success is
/// `prod_k (1 - p(k))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BerBiasModel {
    /// Per-symbol failure floor for BPSK (scaled up per modulation).
    pub base_bpsk: f64,
    /// Relative per-symbol growth under standard estimation.
    pub slope_standard: f64,
    /// Relative per-symbol growth under RTE.
    pub slope_rte: f64,
}

impl BerBiasModel {
    /// Coefficients calibrated against the `carpool-phy` Monte-Carlo
    /// experiments at the paper's office SNR operating point.
    pub fn calibrated() -> BerBiasModel {
        BerBiasModel {
            base_bpsk: 2e-5,
            slope_standard: 0.5,
            slope_rte: 0.004,
        }
    }

    fn modulation_scale(m: Modulation) -> f64 {
        // Higher-order constellations are more fragile; ratios follow the
        // relative BER ordering observed in the PHY experiments.
        match m {
            Modulation::Bpsk => 1.0,
            Modulation::Qpsk => 2.5,
            Modulation::Qam16 => 12.0,
            Modulation::Qam64 => 60.0,
        }
    }

    fn symbol_failure(&self, scheme: EstimationScheme, mcs: Mcs, k: usize) -> f64 {
        let slope = match scheme {
            EstimationScheme::Standard => self.slope_standard,
            EstimationScheme::Rte => self.slope_rte,
        };
        let base = self.base_bpsk * Self::modulation_scale(mcs.modulation);
        (base * (1.0 + slope * k as f64)).min(0.5)
    }
}

impl Default for BerBiasModel {
    fn default() -> Self {
        BerBiasModel::calibrated()
    }
}

impl FrameErrorModel for BerBiasModel {
    fn subframe_success_prob(
        &self,
        scheme: EstimationScheme,
        mcs: Mcs,
        start_symbol: usize,
        num_symbols: usize,
    ) -> f64 {
        // log-sum for numerical stability on long frames.
        let mut log_p = 0.0f64;
        for k in start_symbol..start_symbol + num_symbols {
            log_p += (1.0 - self.symbol_failure(scheme, mcs, k)).ln();
        }
        log_p.exp()
    }
}

/// A measured per-symbol failure curve (per scheme), indexed by symbol
/// position; positions beyond the curve reuse the last value.
#[derive(Debug, Clone, PartialEq)]
pub struct SymbolErrorCurve {
    standard: Vec<f64>,
    rte: Vec<f64>,
}

impl SymbolErrorCurve {
    /// Creates a curve from measured per-symbol failure probabilities.
    ///
    /// # Panics
    ///
    /// Panics if either curve is empty or contains values outside [0, 1].
    pub fn new(standard: Vec<f64>, rte: Vec<f64>) -> SymbolErrorCurve {
        assert!(
            !standard.is_empty() && !rte.is_empty(),
            "curves must be non-empty"
        );
        for v in standard.iter().chain(rte.iter()) {
            assert!((0.0..=1.0).contains(v), "probability {v} out of range");
        }
        SymbolErrorCurve { standard, rte }
    }

    fn at(&self, scheme: EstimationScheme, k: usize) -> f64 {
        let curve = match scheme {
            EstimationScheme::Standard => &self.standard,
            EstimationScheme::Rte => &self.rte,
        };
        // Positions past the measured range clamp to the last entry; the
        // constructor guarantees non-emptiness, so the 0.0 default is for
        // the type system only.
        let clamped = k.min(curve.len().saturating_sub(1));
        curve.get(clamped).copied().unwrap_or(0.0)
    }
}

impl FrameErrorModel for SymbolErrorCurve {
    fn subframe_success_prob(
        &self,
        scheme: EstimationScheme,
        _mcs: Mcs,
        start_symbol: usize,
        num_symbols: usize,
    ) -> f64 {
        let mut log_p = 0.0f64;
        for k in start_symbol..start_symbol + num_symbols {
            log_p += (1.0 - self.at(scheme, k)).ln();
        }
        log_p.exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_channel_always_succeeds() {
        let m = PerfectChannel;
        assert_eq!(
            m.subframe_success_prob(EstimationScheme::Standard, Mcs::QAM64_3_4, 0, 10_000),
            1.0
        );
    }

    #[test]
    fn longer_frames_fail_more() {
        let m = BerBiasModel::calibrated();
        let short = m.subframe_success_prob(EstimationScheme::Standard, Mcs::QAM64_3_4, 0, 20);
        let long = m.subframe_success_prob(EstimationScheme::Standard, Mcs::QAM64_3_4, 0, 500);
        assert!(short > long, "{short} vs {long}");
    }

    #[test]
    fn tail_positions_fail_more_under_standard() {
        let m = BerBiasModel::calibrated();
        let head = m.subframe_success_prob(EstimationScheme::Standard, Mcs::QAM64_3_4, 0, 50);
        let tail = m.subframe_success_prob(EstimationScheme::Standard, Mcs::QAM64_3_4, 400, 50);
        assert!(head > tail, "{head} vs {tail}");
    }

    #[test]
    fn rte_beats_standard_on_long_frames() {
        let m = BerBiasModel::calibrated();
        let std = m.subframe_success_prob(EstimationScheme::Standard, Mcs::QAM64_3_4, 0, 400);
        let rte = m.subframe_success_prob(EstimationScheme::Rte, Mcs::QAM64_3_4, 0, 400);
        assert!(rte > std, "rte {rte} vs std {std}");
        // And the gap is substantial, echoing Fig. 13/14.
        assert!(rte > std * 1.5);
    }

    #[test]
    fn rte_and_standard_similar_on_short_frames() {
        let m = BerBiasModel::calibrated();
        let std = m.subframe_success_prob(EstimationScheme::Standard, Mcs::QPSK_1_2, 0, 10);
        let rte = m.subframe_success_prob(EstimationScheme::Rte, Mcs::QPSK_1_2, 0, 10);
        assert!((std - rte).abs() < 0.01, "{std} vs {rte}");
    }

    #[test]
    fn lower_order_modulations_are_more_robust() {
        let m = BerBiasModel::calibrated();
        let bpsk = m.subframe_success_prob(EstimationScheme::Standard, Mcs::BPSK_1_2, 0, 200);
        let qam64 = m.subframe_success_prob(EstimationScheme::Standard, Mcs::QAM64_3_4, 0, 200);
        assert!(bpsk > qam64);
    }

    #[test]
    fn probabilities_stay_in_unit_interval() {
        let m = BerBiasModel::calibrated();
        for scheme in [EstimationScheme::Standard, EstimationScheme::Rte] {
            for n in [1usize, 10, 100, 1000, 10_000] {
                let p = m.subframe_success_prob(scheme, Mcs::QAM64_3_4, 0, n);
                assert!((0.0..=1.0).contains(&p), "n={n}: {p}");
            }
        }
    }

    #[test]
    fn curve_model_uses_measured_points() {
        let curve = SymbolErrorCurve::new(vec![0.0, 0.5], vec![0.0, 0.0]);
        let p = curve.subframe_success_prob(EstimationScheme::Standard, Mcs::BPSK_1_2, 0, 2);
        assert!((p - 0.5).abs() < 1e-12);
        // Beyond the curve, the last value persists.
        let p3 = curve.subframe_success_prob(EstimationScheme::Standard, Mcs::BPSK_1_2, 0, 3);
        assert!((p3 - 0.25).abs() < 1e-12);
        assert_eq!(
            curve.subframe_success_prob(EstimationScheme::Rte, Mcs::BPSK_1_2, 0, 3),
            1.0
        );
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_curve_rejected() {
        SymbolErrorCurve::new(vec![], vec![0.1]);
    }

    #[test]
    fn per_sta_model_dispatches_by_station() {
        let good = SymbolErrorCurve::new(vec![0.0], vec![0.0]);
        let bad = SymbolErrorCurve::new(vec![0.5], vec![0.5]);
        let model = PerStaErrorModel::new(vec![good, bad]);
        assert_eq!(model.locations(), 2);
        let p0 =
            model.subframe_success_prob_for(0, EstimationScheme::Standard, Mcs::QPSK_1_2, 0, 4);
        let p1 =
            model.subframe_success_prob_for(1, EstimationScheme::Standard, Mcs::QPSK_1_2, 0, 4);
        assert_eq!(p0, 1.0);
        assert!((p1 - 0.5f64.powi(4)).abs() < 1e-12);
        // Station 2 wraps back to location 0.
        let p2 =
            model.subframe_success_prob_for(2, EstimationScheme::Standard, Mcs::QPSK_1_2, 0, 4);
        assert_eq!(p2, 1.0);
    }

    #[test]
    fn default_for_variant_matches_agnostic() {
        let m = BerBiasModel::calibrated();
        let a = m.subframe_success_prob(EstimationScheme::Rte, Mcs::QAM16_1_2, 5, 20);
        let b = m.subframe_success_prob_for(7, EstimationScheme::Rte, Mcs::QAM16_1_2, 5, 20);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one location")]
    fn empty_per_sta_model_rejected() {
        let _ = PerStaErrorModel::<PerfectChannel>::new(vec![]);
    }
}
