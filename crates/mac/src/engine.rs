//! Sharded, allocation-free MAC event engine.
//!
//! The virtual-slot DCF loop that used to live inline in
//! [`Simulator::run`](crate::sim::Simulator::run) is extracted here as
//! [`Domain`]: one collision domain that can be stepped to an arbitrary
//! time bound. Three structural changes make the stepper fast without
//! changing a single emitted byte:
//!
//! * arrivals sit in an indexed [`CalendarQueue`] (slot-tick buckets,
//!   intrusive chains, free-listed slab) instead of a sorted `Vec`
//!   scanned by index — dequeue order `(tick, insertion seq)` is
//!   provably the old scan order (see `calendar_proptests.rs`);
//! * pending frames live in a generational-index [`Arena`]; node queues
//!   hold [`Handle`]s, delivered/dropped frames drain back into the
//!   free list, and retransmissions keep their slot — no per-frame heap
//!   traffic and no per-TXOP `requeue` rebuilds;
//! * every per-round temporary (eligible set, winners, TXOP plan,
//!   outcomes) is a scratch buffer reused across rounds, mirroring the
//!   PR 8 scratch discipline.
//!
//! On top of single-domain stepping, [`run_dense`] runs many
//! co-channel AP domains as one scenario: domains are partitioned into
//! shards, each shard steps its domains through fixed *epochs*, and at
//! every epoch barrier the shards exchange OBSS busy-time messages with
//! their ring neighbours through the deterministic
//! [`carpool_par::run_sharded`] primitive. All cross-shard state is
//! keyed by domain index and merged in domain order, so the report is
//! byte-identical at any thread count *and* any shard count.

use crate::arena::{Arena, Handle};
use crate::calendar::CalendarQueue;
use crate::error_model::{EstimationScheme, FrameErrorModel};
use crate::metrics::{AirtimeShare, ChannelStats, FlowCollector, FlowMetrics, SimReport};
use crate::protocol::Protocol;
use crate::sim::{DownlinkTraffic, SchedulerPolicy, SimConfig, WIRE_OVERHEAD_BYTES};
use carpool_frame::addr::MacAddress;
use carpool_frame::aggregation::{QueuedFrame, SelectionScratch};
use carpool_frame::airtime::{
    ack_airtime, ahdr_airtime, cts_airtime, data_frame_airtime, rts_airtime, CW_MAX, DIFS,
    PLCP_OVERHEAD, SIFS, SLOT_TIME,
};
use carpool_obs::{Event, FlightRecorder, Obs, TraceKind};
use carpool_phy::mcs::{Mcs, SYMBOL_DURATION};
use carpool_traffic::background::{BackgroundSource, Transport};
use carpool_traffic::voip::VoipSource;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::sync::Arc;

/// Extended interframe space after a collision (no ACK arrives).
fn eifs() -> f64 {
    SIFS + ack_airtime() + DIFS
}

/// Trace-payload widening for station indices, byte counts, and symbol
/// counts.
fn trace_u64(v: usize) -> u64 {
    // lint:allow(as-cast): station/byte/symbol counts are far below 2^64
    v as u64
}

/// Time span of `symbols` OFDM symbols, for flight-recorder stamps.
fn symbol_span(symbols: usize) -> f64 {
    // lint:allow(as-cast): symbol counts are far below 2^52, conversion exact
    symbols as f64 * SYMBOL_DURATION
}

/// A traffic arrival scheduled in the calendar queue.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct ArrivalEvent {
    pub(crate) time: f64,
    pub(crate) node: usize,
    pub(crate) dest: usize,
    pub(crate) bytes: usize,
}

/// A frame waiting in a node queue, stored in the frame arena.
#[derive(Debug, Clone, Copy, Default)]
struct PendingFrame {
    /// Flight-recorder correlation id, assigned in arrival order at
    /// ingest — deterministic for a given seed, unique per frame (and
    /// across domains via the per-domain id base).
    id: u64,
    bytes: usize,
    enqueue: f64,
    attempts: u32,
    dest: usize,
}

#[derive(Debug)]
struct Node {
    queue: VecDeque<Handle>,
    backoff: u32,
    cw: u32,
    cw_min: u32,
    is_ap: bool,
}

impl Node {
    fn new(is_ap: bool, cw_min: u32) -> Node {
        Node {
            queue: VecDeque::new(),
            backoff: 0,
            cw: cw_min,
            cw_min,
            is_ap,
        }
    }

    fn draw_backoff(&mut self, rng: &mut StdRng) {
        self.backoff = rng.gen_range(0..=self.cw);
    }

    fn on_success(&mut self, rng: &mut StdRng) {
        self.cw = self.cw_min;
        if !self.queue.is_empty() {
            self.draw_backoff(rng);
        }
    }

    fn on_collision(&mut self, rng: &mut StdRng) {
        self.cw = (self.cw * 2 + 1).min(CW_MAX);
        self.draw_backoff(rng);
    }
}

/// Total bytes queued at `node` (frames resolved through the arena).
fn queued_bytes(node: &Node, frames: &Arena<PendingFrame>) -> usize {
    node.queue
        .iter()
        .filter_map(|&h| frames.get(h))
        .map(|f| f.bytes)
        .sum()
}

/// Deterministically decides whether two STA node ids are mutually
/// hidden: splitmix-style hash of (pair, seed) -> uniform in [0, 1).
pub(crate) fn hidden_pair(seed: u64, fraction: f64, a: usize, b: usize) -> bool {
    if a == b {
        return false;
    }
    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
    let mut x = (lo as u64) << 32 | hi as u64; // lint:allow(as-cast): two u32 halves packed into u64
    x ^= seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    (x as f64 / u64::MAX as f64) < fraction // lint:allow(as-cast): u64-to-f64 rounding is harmless for a uniform draw
}

/// Traffic-model sampling for one domain, identical to the pre-engine
/// `Simulator::generate_arrivals`: same sources, same RNG draw order,
/// stable-sorted by arrival time.
pub(crate) fn generate_arrivals(cfg: &SimConfig, rng: &mut StdRng) -> Vec<ArrivalEvent> {
    let mut arrivals = Vec::new(); // lint:allow(hot-alloc): one-time per-run arrival table
    for sta in 0..cfg.num_stas {
        let node_id = cfg.num_aps + sta;
        let ap_id = sta % cfg.num_aps;
        match cfg.downlink {
            DownlinkTraffic::Voip => {
                // ON/OFF means calibrated so the per-STA offered load
                // matches the operating points of the paper's Fig. 15
                // (~0.9 x 96 kbit/s per STA): talkspurts dominate.
                let voip = VoipSource::with_means(5.0, 0.05);
                for a in voip.generate(cfg.duration_s, rng) {
                    // lint:allow(hot-alloc): one-time per-run arrival table
                    arrivals.push(ArrivalEvent {
                        time: a.time,
                        node: ap_id,
                        dest: node_id,
                        bytes: a.bytes,
                    });
                }
                if cfg.bidirectional_voip {
                    for a in voip.generate(cfg.duration_s, rng) {
                        // lint:allow(hot-alloc): one-time per-run arrival table
                        arrivals.push(ArrivalEvent {
                            time: a.time,
                            node: node_id,
                            dest: ap_id,
                            bytes: a.bytes,
                        });
                    }
                }
            }
            DownlinkTraffic::Cbr { interval_s, bytes } => {
                // Random phase to avoid synchronised arrivals.
                let mut t = rng.gen::<f64>() * interval_s;
                while t < cfg.duration_s {
                    // lint:allow(hot-alloc): one-time per-run arrival table
                    arrivals.push(ArrivalEvent {
                        time: t,
                        node: ap_id,
                        dest: node_id,
                        bytes,
                    });
                    t += interval_s;
                }
            }
            DownlinkTraffic::None => {}
        }
        if let Some(up) = cfg.uplink {
            // lint:allow(as-cast): small station count to f64, exact below 2^53
            let transport = if (sta as f64 + 0.5) / cfg.num_stas as f64 <= up.tcp_fraction {
                Transport::Tcp
            } else {
                Transport::Udp
            };
            let source = BackgroundSource::new(transport).with_rate_scale(up.rate_scale);
            for a in source.generate(cfg.duration_s, rng) {
                // lint:allow(hot-alloc): one-time per-run arrival table
                arrivals.push(ArrivalEvent {
                    time: a.time,
                    node: node_id,
                    dest: ap_id,
                    bytes: a.bytes,
                });
            }
        }
    }
    arrivals.sort_by(|a, b| a.time.total_cmp(&b.time));
    arrivals
}

/// Whether station node id `sta_id` negotiated Carpool at association.
fn is_carpool_capable(cfg: &SimConfig, sta_id: usize) -> bool {
    let idx = sta_id.saturating_sub(cfg.num_aps);
    (idx as f64) < cfg.carpool_fraction * cfg.num_stas as f64 // lint:allow(as-cast): small station count to f64, exact below 2^53
}

/// MCS used when transmitting to (or from) station node `sta_id`.
fn mcs_for(cfg: &SimConfig, sta_id: usize) -> Mcs {
    match &cfg.per_sta_snr_db {
        Some(snrs) => {
            let idx = sta_id.saturating_sub(cfg.num_aps);
            snrs.get(idx)
                .map(|&snr| crate::rate::mcs_for_snr(snr))
                .unwrap_or(cfg.data_mcs)
        }
        None => cfg.data_mcs,
    }
}

/// Whether a backlogged AP may contend now (aggregation-wait trigger).
fn ap_eligible(cfg: &SimConfig, node: &Node, frames: &Arena<PendingFrame>, now: f64) -> bool {
    let Some(&h) = node.queue.front() else {
        return false;
    };
    let Some(head) = frames.get(h) else {
        return false;
    };
    match cfg.aggregation_wait {
        None => true,
        Some(w) => {
            now - head.enqueue >= w.max_latency_s || queued_bytes(node, frames) >= w.max_bytes
        }
    }
}

/// RTS/CTS signalling time preceding a data PPDU addressed to
/// `receivers` receivers (multicast RTS + sequential CTSs, Fig. 7).
fn control_airtime(cfg: &SimConfig, receivers: usize) -> f64 {
    if !cfg.use_rts_cts {
        return 0.0;
    }
    let carpool_like = matches!(cfg.protocol, Protocol::Carpool | Protocol::MuAggregation);
    // lint:allow(as-cast): receiver count to f64, exact below 2^53
    rts_airtime(carpool_like) + receivers as f64 * (SIFS + cts_airtime()) + SIFS
}

/// One per-receiver subframe group of the planned TXOP. Indices live in
/// [`PlanBuf::indices`] at `[start, start + len)`.
#[derive(Debug, Clone, Copy)]
struct GroupMeta {
    dest: usize,
    mcs: Mcs,
    start: usize,
    len: usize,
}

/// Reusable TXOP-planning buffers: the flattened equivalent of the old
/// per-round `TxopPlan` allocation, refilled in place every round.
#[derive(Debug, Default)]
struct PlanBuf {
    /// Scratch: candidate queue positions in selector presentation order.
    order: Vec<usize>,
    /// Scratch: the selector's view of the queue.
    view: Vec<QueuedFrame>,
    /// Selector scratch (recycled per-receiver index buffers).
    sel: SelectionScratch,
    /// Queue indices selected, ascending (for removal).
    selected: Vec<usize>,
    /// Per-receiver groups in subframe order.
    groups: Vec<GroupMeta>,
    /// Flat queue-index storage backing `groups`.
    indices: Vec<usize>,
    /// Airtime of the data PPDU (PLCP + headers + payload).
    data_airtime: f64,
    /// Trailing ACK sequence time.
    ack_airtime_total: f64,
    /// Header length in OFDM symbols (payload error positions start here).
    header_symbols: usize,
}

impl PlanBuf {
    fn total_airtime(&self) -> f64 {
        self.data_airtime + self.ack_airtime_total
    }

    fn clear(&mut self) {
        self.order.clear();
        self.view.clear();
        self.selected.clear();
        self.groups.clear();
        self.indices.clear();
        self.data_airtime = 0.0;
        self.ack_airtime_total = 0.0;
        self.header_symbols = 0;
    }

    fn push_single(&mut self, queue_index: usize, dest: usize, mcs: Mcs) {
        self.selected.push(queue_index); // lint:allow(hot-alloc): reused scratch, bounded by queue depth
        self.indices.push(queue_index); // lint:allow(hot-alloc): reused scratch, bounded by queue depth
        self.groups.push(GroupMeta {
            dest,
            mcs,
            start: 0,
            len: 1,
        }); // lint:allow(hot-alloc): reused scratch, bounded by max receivers
    }
}

/// Plans the winner's TXOP into `plan`, reusing its buffers. Identical
/// decisions (and f64 arithmetic) to the old `Simulator::plan_txop`.
fn plan_into(
    cfg: &SimConfig,
    node: &Node,
    node_id: usize,
    occupancy: &[f64],
    frames: &Arena<PendingFrame>,
    plan: &mut PlanBuf,
) {
    plan.clear();
    if node.is_ap {
        // Mixed deployments (Section 4.3): a multi-receiver AP serves a
        // legacy head-of-line client with a plain single-frame
        // transmission, and never aggregates legacy clients into a
        // Carpool frame.
        let multi_user = matches!(cfg.protocol, Protocol::Carpool | Protocol::MuAggregation);
        if multi_user {
            if let Some(head) = node.queue.front().and_then(|&h| frames.get(h)) {
                if !is_carpool_capable(cfg, head.dest) {
                    let mcs = mcs_for(cfg, head.dest);
                    let wire_bits = (head.bytes + WIRE_OVERHEAD_BYTES) * 8;
                    plan.push_single(0, head.dest, mcs);
                    plan.data_airtime =
                        PLCP_OVERHEAD + mcs.symbols_for_bits(wire_bits) as f64 * SYMBOL_DURATION; // lint:allow(as-cast): symbol count to f64, exact below 2^53
                    plan.ack_airtime_total = SIFS + ack_airtime();
                    return;
                }
            }
        }

        // Under time fairness the AP presents its queue to the selector
        // ordered by the destinations' cumulative airtime, so
        // underserved stations aggregate (and transmit) first.
        plan.order.extend(0..node.queue.len()); // lint:allow(hot-alloc): reused scratch, bounded by queue depth
        if multi_user && cfg.carpool_fraction < 1.0 {
            // Only Carpool-capable destinations may ride this aggregate;
            // legacy frames wait for their own TXOPs.
            plan.order.retain(|&k| {
                node.queue
                    .get(k)
                    .and_then(|&h| frames.get(h))
                    .is_some_and(|f| is_carpool_capable(cfg, f.dest))
            });
        }
        if cfg.scheduler == SchedulerPolicy::TimeFair {
            plan.order.sort_by(|&a, &b| {
                let occ = |k: usize| {
                    let dest = node
                        .queue
                        .get(k)
                        .and_then(|&h| frames.get(h))
                        .map(|f| f.dest)
                        .unwrap_or(0);
                    occupancy
                        .get(dest.saturating_sub(cfg.num_aps))
                        .copied()
                        .unwrap_or(0.0)
                };
                occ(a).total_cmp(&occ(b)).then(a.cmp(&b))
            });
        }
        for &k in &plan.order {
            let Some(f) = node.queue.get(k).and_then(|&h| frames.get(h)) else {
                continue;
            };
            // lint:allow(hot-alloc): reused scratch plan, bounded by queue depth
            plan.view.push(QueuedFrame {
                dest: MacAddress::station(f.dest as u16), // lint:allow(as-cast): station index bounded by num_stas < 2^16
                bytes: f.bytes,
                enqueue_time: f.enqueue,
            }); // lint:allow(hot-alloc): reused scratch, bounded by queue depth
        }
        let selection = plan
            .sel
            .select(cfg.protocol.aggregation_policy(), &plan.view, &cfg.limits);
        let receivers = selection.receiver_count().max(1);
        let header_airtime = cfg.protocol.aggregation_header_airtime(receivers);
        // lint:allow(as-cast): header symbol counts are tiny and rounded
        let header_symbols = (header_airtime / SYMBOL_DURATION).round() as usize;
        let mut payload_symbols = 0usize;
        for (_, view_indices) in &selection.groups {
            let start = plan.indices.len();
            for &v in view_indices {
                let Some(&k) = plan.order.get(v) else {
                    continue;
                };
                plan.indices.push(k); // lint:allow(hot-alloc): reused scratch, bounded by queue depth
            }
            let len = plan.indices.len() - start;
            if len == 0 {
                continue;
            }
            let dest = node
                .queue
                .get(plan.indices[start])
                .and_then(|&h| frames.get(h))
                .map(|f| f.dest)
                .unwrap_or(0);
            let mcs = mcs_for(cfg, dest);
            for &k in &plan.indices[start..start + len] {
                let bytes = node
                    .queue
                    .get(k)
                    .and_then(|&h| frames.get(h))
                    .map(|f| f.bytes)
                    .unwrap_or(0);
                let wire_bits = (bytes + WIRE_OVERHEAD_BYTES) * 8;
                payload_symbols += mcs.symbols_for_bits(wire_bits);
            }
            // lint:allow(hot-alloc): reused scratch plan, bounded by receiver count
            plan.groups.push(GroupMeta {
                dest,
                mcs,
                start,
                len,
            }); // lint:allow(hot-alloc): reused scratch, bounded by max receivers
        }
        plan.selected.extend_from_slice(&plan.indices); // lint:allow(hot-alloc): reused scratch, bounded by queue depth
        plan.selected.sort_unstable();
        plan.data_airtime =
            PLCP_OVERHEAD + header_airtime + payload_symbols as f64 * SYMBOL_DURATION; // lint:allow(as-cast): symbol count to f64, exact below 2^53
        let acks = cfg.protocol.acks_per_exchange(receivers);
        plan.ack_airtime_total = acks as f64 * (SIFS + ack_airtime()); // lint:allow(as-cast): ACK count to f64, exact below 2^53
        plan.header_symbols = header_symbols;
    } else {
        // STA: single head frame to its AP at the STA's own rate. The
        // contention loop never selects an empty queue, so an empty
        // plan here is a graceful fallback rather than a reachable path.
        let Some(head) = node.queue.front().and_then(|&h| frames.get(h)) else {
            return;
        };
        let mcs = mcs_for(cfg, node_id);
        let wire = head.bytes + WIRE_OVERHEAD_BYTES - 2; // no delimiter
        plan.push_single(0, head.dest, mcs);
        plan.data_airtime = data_frame_airtime(wire, mcs);
        plan.ack_airtime_total = SIFS + ack_airtime();
    }
}

/// Per-round scratch buffers, reused for the life of the domain.
#[derive(Debug, Default)]
struct RoundScratch {
    eligible: Vec<usize>,
    priority: Vec<usize>,
    winners: Vec<usize>,
    outcomes: Vec<(usize, bool)>,
    requeue: Vec<Handle>,
    plan: PlanBuf,
}

/// The error model, either borrowed from a [`Simulator`] or owned by a
/// dense-scenario domain.
pub(crate) enum ModelHandle<'m> {
    /// Borrowed from the owning simulator.
    Borrowed(&'m dyn FrameErrorModel),
    /// Owned (dense scenario: one model per domain).
    Owned(Box<dyn FrameErrorModel>),
}

impl ModelHandle<'_> {
    fn get(&self) -> &dyn FrameErrorModel {
        match self {
            ModelHandle::Borrowed(m) => *m,
            ModelHandle::Owned(b) => b.as_ref(),
        }
    }
}

/// One collision domain steppable to a time bound.
///
/// `step(limit)` performs one engine event — an arrival-driven idle
/// hop, a collision round, an aborted RTS exchange, or a data TXOP —
/// and returns `false` once the clock has reached `limit`. Stepping to
/// intermediate limits and then continuing is *trajectory-invariant*:
/// the sequence of RNG draws and emitted events depends only on the
/// configuration, never on where the limits fell (arrival ingest is
/// idempotent and the idle hop clamps to the active limit).
pub(crate) struct Domain<'m> {
    cfg: SimConfig,
    model: ModelHandle<'m>,
    obs: Obs,
    rng: StdRng,
    nodes: Vec<Node>,
    frames: Arena<PendingFrame>,
    calendar: CalendarQueue<ArrivalEvent>,
    downlink: FlowCollector,
    uplink: FlowCollector,
    channel: ChannelStats,
    sta_airtime: Vec<AirtimeShare>,
    /// Time-occupancy table for the fairness scheduler (Section 8).
    occupancy: Vec<f64>,
    per_sta_downlink: Vec<FlowMetrics>,
    now: f64,
    next_frame_id: u64,
    /// Added to every frame id, so per-domain ids stay unique when
    /// dense-scenario traces merge into one recorder.
    id_base: u64,
    scheme: EstimationScheme,
    scratch: RoundScratch,
    /// Engine events processed: arrival ingests plus contention rounds
    /// plus idle hops (the unit of the `mac_dense` events/s benchmark).
    events: u64,
    /// OBSS coupling strength; 0 disables the extra per-subframe draw
    /// (single-domain runs keep the exact legacy RNG stream).
    obss_coupling: f64,
    /// Fraction of the current epoch the neighbouring domains spent
    /// transmitting (input, set at each epoch boundary).
    obss_busy_frac: f64,
    /// Seconds this domain kept the channel busy in the current epoch
    /// (output, drained at each epoch boundary).
    epoch_busy_s: f64,
}

impl<'m> Domain<'m> {
    /// Builds a domain: seeds the RNG, samples the arrival table
    /// (identical draw order to the legacy path), loads the calendar
    /// queue, and sizes every arena and scratch buffer.
    pub(crate) fn new(
        cfg: SimConfig,
        model: ModelHandle<'m>,
        obs: Obs,
        id_base: u64,
        obss_coupling: f64,
    ) -> Domain<'m> {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let arrivals = generate_arrivals(&cfg, &mut rng);
        let mut calendar = CalendarQueue::with_capacity(arrivals.len());
        for a in &arrivals {
            // lint:allow(as-cast): nonnegative finite time over a 9 µs slot
            calendar.push((a.time / SLOT_TIME) as u64, *a);
        }
        let total_nodes = cfg.num_aps + cfg.num_stas;
        let nodes: Vec<Node> = (0..total_nodes)
            .map(|k| {
                let is_ap = k < cfg.num_aps;
                let cw_min = if is_ap {
                    cfg.protocol.ap_cw_min()
                } else {
                    carpool_frame::airtime::CW_MIN
                };
                Node::new(is_ap, cw_min)
            })
            .collect();
        let downlink = FlowCollector::downlink(obs.clone());
        let uplink = FlowCollector::uplink(obs.clone());
        let sta_airtime = vec![AirtimeShare::default(); cfg.num_stas];
        let occupancy = vec![0.0f64; cfg.num_stas];
        let per_sta_downlink = vec![FlowMetrics::default(); cfg.num_stas];
        let scheme = cfg.protocol.estimation();
        Domain {
            frames: Arena::with_capacity(64),
            cfg,
            model,
            obs,
            rng,
            nodes,
            calendar,
            downlink,
            uplink,
            channel: ChannelStats::default(),
            sta_airtime,
            occupancy,
            per_sta_downlink,
            now: 0.0,
            next_frame_id: 0,
            id_base,
            scheme,
            scratch: RoundScratch::default(),
            events: 0,
            obss_coupling,
            obss_busy_frac: 0.0,
            epoch_busy_s: 0.0,
        }
    }

    /// Engine events processed so far (arrivals + rounds + idle hops).
    pub(crate) fn events(&self) -> u64 {
        self.events
    }

    /// Sets the OBSS busy fraction neighbours imposed for the epoch now
    /// starting.
    pub(crate) fn set_obss_busy_frac(&mut self, frac: f64) {
        self.obss_busy_frac = frac;
    }

    /// Drains the channel-busy seconds this domain accumulated since
    /// the previous drain (one epoch's OBSS contribution).
    pub(crate) fn take_epoch_busy(&mut self) -> f64 {
        std::mem::take(&mut self.epoch_busy_s)
    }

    /// Performs one engine event; returns `false` once `now >= limit`
    /// (after ingesting any arrivals due at `now`).
    pub(crate) fn step(&mut self, limit: f64) -> bool {
        let total_nodes = self.cfg.num_aps + self.cfg.num_stas;

        // Ingest arrivals up to `now`.
        loop {
            let due = matches!(self.calendar.peek(), Some((_, a)) if a.time <= self.now);
            if !due {
                break;
            }
            let Some((_, _, a)) = self.calendar.pop() else {
                break;
            };
            self.events += 1;
            let was_empty = self.nodes[a.node].queue.is_empty();
            self.next_frame_id += 1;
            let id = self.id_base + self.next_frame_id;
            let handle = self.frames.alloc(PendingFrame {
                id,
                bytes: a.bytes,
                enqueue: a.time,
                attempts: 0,
                dest: a.dest,
            });
            // lint:allow(hot-alloc): amortized deque growth, bounded by backlog
            self.nodes[a.node].queue.push_back(handle);
            self.obs.trace_frame(
                TraceKind::MacEnqueue,
                id,
                self.now,
                trace_u64(a.dest),
                trace_u64(a.bytes),
            );
            if was_empty {
                self.nodes[a.node].draw_backoff(&mut self.rng);
            }
            if self.obs.enabled() {
                self.obs.counter("traffic.arrivals", 1);
                // Stamped with the ingestion clock (the moment the MAC
                // sees the frame), which keeps the stream monotone; the
                // arrival's own timestamp survives as queueing delay in
                // the eventual delivery/drop event.
                self.obs.emit(
                    self.now,
                    Event::TrafficArrival {
                        dest: a.dest as u64,   // lint:allow(as-cast): small index/count widens to u64
                        bytes: a.bytes as u64, // lint:allow(as-cast): small index/count widens to u64
                    },
                );
                if was_empty {
                    self.obs.emit(
                        self.now,
                        Event::Backoff {
                            station: a.node as u64, // lint:allow(as-cast): small index/count widens to u64
                            slots: self.nodes[a.node].backoff as u64, // lint:allow(as-cast): small index/count widens to u64
                        },
                    );
                }
            }
        }
        if self.now >= limit {
            return false;
        }

        // Expired delay-sensitive downlink frames are discarded.
        if let Some(expiry) = self.cfg.drop_expired_s {
            for k in 0..self.cfg.num_aps {
                while let Some(&h) = self.nodes[k].queue.front() {
                    let Some(f) = self.frames.get(h).copied() else {
                        break;
                    };
                    if self.now - f.enqueue <= expiry {
                        break;
                    }
                    self.nodes[k].queue.pop_front();
                    self.frames.free(h);
                    self.downlink.record_drop(self.now - f.enqueue);
                    self.obs.emit(
                        self.now,
                        Event::MacDrop {
                            dest: f.dest as u64, // lint:allow(as-cast): small index/count widens to u64
                            delay: self.now - f.enqueue,
                        },
                    );
                    self.obs.trace_frame(
                        TraceKind::MacDrop,
                        f.id,
                        self.now,
                        trace_u64(f.dest),
                        (self.now - f.enqueue).to_bits(),
                    );
                }
            }
        }

        // Who is contending?
        self.scratch.eligible.clear();
        for k in 0..total_nodes {
            let n = &self.nodes[k];
            let contending = if n.queue.is_empty() {
                false
            } else if n.is_ap {
                ap_eligible(&self.cfg, n, &self.frames, self.now)
            } else {
                true
            };
            if contending {
                self.scratch.eligible.push(k); // lint:allow(hot-alloc): reused scratch, bounded by node count
            }
        }

        // WiFox: a backlogged AP preempts STA contention with PIFS-like
        // priority in about half of the rounds (adaptive downlink
        // prioritisation).
        if self.cfg.protocol.has_downlink_priority() {
            {
                let RoundScratch {
                    eligible, priority, ..
                } = &mut self.scratch;
                priority.clear();
                for &k in eligible.iter() {
                    if self.nodes[k].is_ap && self.nodes[k].queue.len() >= 10 {
                        priority.push(k); // lint:allow(hot-alloc): reused scratch, bounded by node count
                    }
                }
            }
            if !self.scratch.priority.is_empty() && self.rng.gen_bool(0.35) {
                std::mem::swap(&mut self.scratch.eligible, &mut self.scratch.priority);
            }
        }

        if self.scratch.eligible.is_empty() {
            // Advance to the next event: arrival, AP release time, or
            // the step limit (epoch boundary), whichever comes first.
            let mut next = limit.min(self.cfg.duration_s);
            if let Some((_, a)) = self.calendar.peek() {
                next = next.min(a.time);
            }
            if let Some(w) = self.cfg.aggregation_wait {
                for k in 0..self.cfg.num_aps {
                    if let Some(head) = self.nodes[k]
                        .queue
                        .front()
                        .and_then(|&h| self.frames.get(h))
                    {
                        next = next.min(head.enqueue + w.max_latency_s);
                    }
                }
            }
            if next <= self.now {
                next = self.now + SLOT_TIME;
            }
            self.now = next;
            self.events += 1;
            return true;
        }

        // Joint countdown.
        let d = self
            .scratch
            .eligible
            .iter()
            .map(|&k| self.nodes[k].backoff)
            .min()
            .unwrap_or(0);
        self.now += DIFS + d as f64 * SLOT_TIME + self.cfg.extra_round_overhead_s; // lint:allow(as-cast): backoff slot count to f64, exact below 2^53
        {
            let RoundScratch {
                eligible, winners, ..
            } = &mut self.scratch;
            winners.clear();
            for &k in eligible.iter() {
                self.nodes[k].backoff -= d;
                if self.nodes[k].backoff == 0 {
                    winners.push(k); // lint:allow(hot-alloc): reused scratch, bounded by node count
                }
            }
        }

        if self.scratch.winners.len() > 1 {
            self.collision_round();
            self.events += 1;
            return true;
        }

        // Single winner transmits.
        let winner = self.scratch.winners[0];
        self.transmission_round(winner);
        self.events += 1;
        true
    }

    /// Two or more simultaneous winners: channel busy for the longest
    /// attempt, retry accounting, exponential backoff.
    fn collision_round(&mut self) {
        self.channel.collisions += 1;
        if self.obs.enabled() {
            self.obs.counter("mac.collisions", 1);
            self.obs.emit(
                self.now,
                Event::MacCollision {
                    contenders: self.scratch.winners.len() as u64, // lint:allow(as-cast): usize len widens to u64
                },
            );
        }
        // Collision: channel busy for the longest attempt. With RTS/CTS
        // the clash is detected after the short RTS.
        let busy = if self.cfg.use_rts_cts {
            rts_airtime(matches!(
                self.cfg.protocol,
                Protocol::Carpool | Protocol::MuAggregation
            ))
        } else {
            let mut longest = 0.0f64;
            for i in 0..self.scratch.winners.len() {
                let k = self.scratch.winners[i];
                plan_into(
                    &self.cfg,
                    &self.nodes[k],
                    k,
                    &self.occupancy,
                    &self.frames,
                    &mut self.scratch.plan,
                );
                longest = longest.max(self.scratch.plan.data_airtime);
            }
            longest
        };
        self.now += busy + eifs();
        self.epoch_busy_s += busy;
        for i in 0..self.scratch.winners.len() {
            let k = self.scratch.winners[i];
            // Head-frame retry accounting.
            let head = self.nodes[k].queue.front().copied();
            let drop = match head.and_then(|h| self.frames.get_mut(h)) {
                Some(frame) => {
                    frame.attempts += 1;
                    frame.attempts > self.cfg.retry_limit
                }
                None => false,
            };
            if drop {
                let is_ap = self.nodes[k].is_ap;
                if let Some(f) = self.nodes[k]
                    .queue
                    .pop_front()
                    .and_then(|h| self.frames.free(h))
                {
                    let metrics = if is_ap {
                        &mut self.downlink
                    } else {
                        &mut self.uplink
                    };
                    metrics.record_drop(self.now - f.enqueue);
                    self.obs.emit(
                        self.now,
                        Event::MacDrop {
                            dest: f.dest as u64, // lint:allow(as-cast): small index/count widens to u64
                            delay: self.now - f.enqueue,
                        },
                    );
                    self.obs.trace_frame(
                        TraceKind::MacDrop,
                        f.id,
                        self.now,
                        trace_u64(f.dest),
                        (self.now - f.enqueue).to_bits(),
                    );
                }
            }
            self.nodes[k].on_collision(&mut self.rng);
            if self.obs.enabled() {
                self.obs.emit(
                    self.now,
                    Event::Backoff {
                        station: k as u64, // lint:allow(as-cast): small index/count widens to u64
                        slots: self.nodes[k].backoff as u64, // lint:allow(as-cast): small index/count widens to u64
                    },
                );
            }
        }
        // Everyone else overhears the garbled burst.
        for (sta, air) in self.sta_airtime.iter_mut().enumerate() {
            let id = self.cfg.num_aps + sta;
            if self.scratch.winners.contains(&id) {
                air.tx_s += busy;
            } else {
                air.overhear_s += busy;
            }
        }
    }

    /// Single winner: plan the TXOP, resolve hidden-terminal exposure,
    /// evaluate per-subframe outcomes, account airtime, deliver/requeue.
    fn transmission_round(&mut self, winner: usize) {
        plan_into(
            &self.cfg,
            &self.nodes[winner],
            winner,
            &self.occupancy,
            &self.frames,
            &mut self.scratch.plan,
        );
        let control = control_airtime(&self.cfg, self.scratch.plan.groups.len());

        // Hidden-terminal interference: an uplink transmission is
        // vulnerable to hidden peers that cannot sense it. With
        // RTS/CTS, the AP's CTS silences them after the short RTS — a
        // hidden hit then costs only the aborted signalling; without
        // it, the whole data PPDU is exposed and lost.
        let mut hidden_loss = false;
        if let Some(h) = self.cfg.hidden_terminals {
            if !self.nodes[winner].is_ap {
                let vulnerable = if self.cfg.use_rts_cts {
                    rts_airtime(false)
                } else {
                    self.scratch.plan.data_airtime
                };
                let total_nodes = self.cfg.num_aps + self.cfg.num_stas;
                for j in self.cfg.num_aps..total_nodes {
                    if j == winner
                        || self.nodes[j].queue.is_empty()
                        || !hidden_pair(self.cfg.seed, h.fraction, winner, j)
                    {
                        continue;
                    }
                    // The hidden peer keeps counting down into the
                    // exposed window and fires if it expires inside it.
                    let expiry = self.nodes[j].backoff as f64 * SLOT_TIME + DIFS; // lint:allow(as-cast): backoff slot count to f64, exact below 2^53
                    if expiry < vulnerable {
                        hidden_loss = true;
                        let head = self.nodes[j].queue.front().copied();
                        let drop = match head.and_then(|hh| self.frames.get_mut(hh)) {
                            Some(frame) => {
                                frame.attempts += 1;
                                frame.attempts > self.cfg.retry_limit
                            }
                            None => false,
                        };
                        if drop {
                            if let Some(f) = self.nodes[j]
                                .queue
                                .pop_front()
                                .and_then(|hh| self.frames.free(hh))
                            {
                                self.uplink.record_drop(self.now - f.enqueue);
                                self.obs.emit(
                                    self.now,
                                    Event::MacDrop {
                                        dest: f.dest as u64, // lint:allow(as-cast): small index/count widens to u64
                                        delay: self.now - f.enqueue,
                                    },
                                );
                                self.obs.trace_frame(
                                    TraceKind::MacDrop,
                                    f.id,
                                    self.now,
                                    trace_u64(f.dest),
                                    (self.now - f.enqueue).to_bits(),
                                );
                            }
                        }
                        self.nodes[j].on_collision(&mut self.rng);
                    }
                }
                if hidden_loss {
                    self.channel.hidden_collisions += 1;
                    self.obs.counter("mac.hidden_collisions", 1);
                }
            }
        }

        if hidden_loss && self.cfg.use_rts_cts {
            // The missing CTS aborts the exchange after the RTS: data
            // frames stay queued and are retried cheaply.
            let busy = rts_airtime(true) + eifs();
            self.now += busy;
            self.epoch_busy_s += busy;
            {
                let head = self.nodes[winner].queue.front().copied();
                if let Some(frame) = head.and_then(|h| self.frames.get_mut(h)) {
                    frame.attempts += 1;
                }
                self.nodes[winner].on_collision(&mut self.rng);
            }
            for (sta, air) in self.sta_airtime.iter_mut().enumerate() {
                let id = self.cfg.num_aps + sta;
                if id == winner {
                    air.tx_s += busy;
                } else {
                    air.overhear_s += busy;
                }
            }
            return;
        }

        let busy = self.scratch.plan.total_airtime() + control;
        self.now += busy;
        self.epoch_busy_s += busy;
        self.channel.transmissions += 1;
        self.channel.aggregated_frames += self.scratch.plan.selected.len() as u64; // lint:allow(as-cast): usize len widens to u64
        self.channel.aggregated_receivers += self.scratch.plan.groups.len() as u64; // lint:allow(as-cast): usize len widens to u64
        if self.obs.enabled() {
            self.obs.counter("mac.transmissions", 1);
            self.obs.counter(
                "mac.aggregated_frames",
                self.scratch.plan.selected.len() as u64, // lint:allow(as-cast): usize len widens to u64
            );
            self.obs.record("mac.txop_airtime", busy);
            self.obs.emit(
                self.now,
                Event::MacTx {
                    stas: self.scratch.plan.groups.len() as u64, // lint:allow(as-cast): usize len widens to u64
                    airtime: busy,
                },
            );
        }

        // Evaluate per-frame success at its symbol position, and charge
        // each destination's time-occupancy account.
        let winner_is_ap = self.nodes[winner].is_ap;
        let mut start_sym = self.scratch.plan.header_symbols;
        self.scratch.outcomes.clear();
        for gi in 0..self.scratch.plan.groups.len() {
            let g = self.scratch.plan.groups[gi];
            // The station whose link decides this subframe's fate: the
            // destination for downlink, the sender for uplink.
            let link_sta = if winner_is_ap {
                g.dest.saturating_sub(self.cfg.num_aps)
            } else {
                winner.saturating_sub(self.cfg.num_aps)
            };
            for fi in g.start..g.start + g.len {
                let k = self.scratch.plan.indices[fi];
                let Some(frame) = self.nodes[winner]
                    .queue
                    .get(k)
                    .and_then(|&h| self.frames.get(h))
                    .copied()
                else {
                    continue;
                };
                let wire_bits = (frame.bytes + WIRE_OVERHEAD_BYTES) * 8;
                let n_sym = g.mcs.symbols_for_bits(wire_bits);
                let p = self.model.get().subframe_success_prob_for(
                    link_sta,
                    self.scheme,
                    g.mcs,
                    start_sym,
                    n_sym,
                );
                let mut ok = !hidden_loss && self.rng.gen::<f64>() < p;
                if self.obss_coupling > 0.0 {
                    // The draw happens whenever coupling is configured —
                    // even at zero busy fraction — so the RNG stream
                    // depends only on the (static) configuration, never
                    // on neighbour activity.
                    let p_obss = (self.obss_busy_frac * self.obss_coupling).min(1.0);
                    let obss_hit = self.rng.gen::<f64>() < p_obss;
                    ok = ok && !obss_hit;
                }
                self.scratch.outcomes.push((k, ok)); // lint:allow(hot-alloc): reused scratch, bounded by queue depth
                if self.obs.tracing() {
                    // Membership in this TXOP's aggregate, and the
                    // frame's symbol window on air (the data PPDU starts
                    // at `now - busy`).
                    let t_tx = self.now - busy;
                    self.obs.trace_frame(
                        TraceKind::AggDecision,
                        frame.id,
                        t_tx,
                        trace_u64(g.dest),
                        trace_u64(start_sym),
                    );
                    self.obs.trace_frame(
                        TraceKind::AirtimeStart,
                        frame.id,
                        t_tx + symbol_span(start_sym),
                        trace_u64(g.dest),
                        trace_u64(n_sym),
                    );
                    self.obs.trace_frame(
                        TraceKind::AirtimeEnd,
                        frame.id,
                        t_tx + symbol_span(start_sym + n_sym),
                        trace_u64(g.dest),
                        trace_u64(n_sym),
                    );
                }
                start_sym += n_sym;
                if winner_is_ap {
                    if let Some(slot) = self
                        .occupancy
                        .get_mut(g.dest.saturating_sub(self.cfg.num_aps))
                    {
                        *slot += n_sym as f64 * SYMBOL_DURATION; // lint:allow(as-cast): symbol count to f64, exact below 2^53
                    }
                }
            }
        }

        // Airtime accounting for STAs.
        let is_downlink = winner_is_ap;
        let carpool_like = matches!(
            self.cfg.protocol,
            Protocol::Carpool | Protocol::MuAggregation
        );
        for (sta, air) in self.sta_airtime.iter_mut().enumerate() {
            let id = self.cfg.num_aps + sta;
            if id == winner {
                air.tx_s += self.scratch.plan.data_airtime;
                air.rx_s += self.scratch.plan.ack_airtime_total;
                continue;
            }
            let addressed = is_downlink && self.scratch.plan.groups.iter().any(|g| g.dest == id);
            if addressed {
                if carpool_like {
                    // A-HDR plus (approximately) its own share.
                    let own: f64 = self
                        .scratch
                        .plan
                        .groups
                        .iter()
                        .filter(|g| g.dest == id)
                        .map(|g| {
                            self.scratch.plan.indices[g.start..g.start + g.len]
                                .iter()
                                .map(|&k| {
                                    let bytes = self.nodes[winner]
                                        .queue
                                        .get(k)
                                        .and_then(|&h| self.frames.get(h))
                                        .map(|f| f.bytes)
                                        .unwrap_or(0);
                                    let bits = (bytes + WIRE_OVERHEAD_BYTES) * 8;
                                    g.mcs.airtime_for_bits(bits)
                                })
                                .sum::<f64>()
                        })
                        .sum();
                    air.rx_s += ahdr_airtime() + own;
                    air.idle_s += (busy - ahdr_airtime() - own).max(0.0);
                } else {
                    air.rx_s += busy;
                }
            } else if carpool_like && is_downlink {
                // Checks the A-HDR, then idles.
                air.overhear_s += PLCP_OVERHEAD + ahdr_airtime();
                air.idle_s += (busy - PLCP_OVERHEAD - ahdr_airtime()).max(0.0);
            } else {
                air.overhear_s += busy;
            }
        }

        // Deliver or requeue, removing selected entries in descending
        // index order to keep indices valid. Delivered and dropped
        // frames drain straight back into the arena free list;
        // retransmissions keep their slot and only requeue the handle.
        self.scratch
            .outcomes
            .sort_by_key(|&(k, _)| std::cmp::Reverse(k));
        self.scratch.requeue.clear();
        for oi in 0..self.scratch.outcomes.len() {
            let (k, ok) = self.scratch.outcomes[oi];
            let Some(h) = self.nodes[winner].queue.remove(k) else {
                continue;
            };
            if ok {
                let Some(frame) = self.frames.free(h) else {
                    continue;
                };
                let metrics = if winner_is_ap {
                    &mut self.downlink
                } else {
                    &mut self.uplink
                };
                metrics.record_delivery(frame.bytes, self.now - frame.enqueue, self.cfg.deadline);
                self.obs.emit(
                    self.now,
                    Event::MacDelivery {
                        dest: frame.dest as u64, // lint:allow(as-cast): small index/count widens to u64
                        bytes: frame.bytes as u64, // lint:allow(as-cast): small index/count widens to u64
                        delay: self.now - frame.enqueue,
                    },
                );
                // b = enqueue→ACK delay as f64 bits.
                self.obs.trace_frame(
                    TraceKind::MacAck,
                    frame.id,
                    self.now,
                    trace_u64(frame.dest),
                    (self.now - frame.enqueue).to_bits(),
                );
                if winner_is_ap {
                    if let Some(sta) = self
                        .per_sta_downlink
                        .get_mut(frame.dest.saturating_sub(self.cfg.num_aps))
                    {
                        sta.record_delivery(
                            frame.bytes,
                            self.now - frame.enqueue,
                            self.cfg.deadline,
                        );
                    }
                }
            } else {
                let Some(frame) = self.frames.get(h).copied() else {
                    continue;
                };
                {
                    let metrics = if winner_is_ap {
                        &mut self.downlink
                    } else {
                        &mut self.uplink
                    };
                    metrics.record_retransmission();
                }
                self.obs.emit(
                    self.now,
                    Event::MacRetransmission {
                        dest: frame.dest as u64, // lint:allow(as-cast): small index/count widens to u64
                    },
                );
                self.obs.trace_frame(
                    TraceKind::MacRetx,
                    frame.id,
                    self.now,
                    trace_u64(frame.dest),
                    u64::from(frame.attempts) + 1,
                );
                let attempts = frame.attempts + 1;
                if attempts > self.cfg.retry_limit {
                    self.frames.free(h);
                    let metrics = if winner_is_ap {
                        &mut self.downlink
                    } else {
                        &mut self.uplink
                    };
                    metrics.record_drop(self.now - frame.enqueue);
                    self.obs.emit(
                        self.now,
                        Event::MacDrop {
                            dest: frame.dest as u64, // lint:allow(as-cast): small index/count widens to u64
                            delay: self.now - frame.enqueue,
                        },
                    );
                    self.obs.trace_frame(
                        TraceKind::MacDrop,
                        frame.id,
                        self.now,
                        trace_u64(frame.dest),
                        (self.now - frame.enqueue).to_bits(),
                    );
                } else {
                    if let Some(f) = self.frames.get_mut(h) {
                        f.attempts = attempts;
                    }
                    self.scratch.requeue.push(h); // lint:allow(hot-alloc): reused scratch, bounded by TXOP size
                }
            }
        }
        // Failed frames return to the head, oldest first.
        {
            let RoundScratch { requeue, .. } = &mut self.scratch;
            let frames = &self.frames;
            requeue.sort_by(|&a, &b| {
                let ea = frames.get(a).map(|f| f.enqueue).unwrap_or(0.0);
                let eb = frames.get(b).map(|f| f.enqueue).unwrap_or(0.0);
                eb.total_cmp(&ea)
            });
        }
        for ri in 0..self.scratch.requeue.len() {
            // lint:allow(hot-alloc): amortized deque growth, bounded by backlog
            let h = self.scratch.requeue[ri];
            self.nodes[winner].queue.push_front(h);
        }
        self.nodes[winner].on_success(&mut self.rng);
        if self.obs.enabled() {
            self.obs.gauge(
                "mac.winner_queue_depth",
                self.nodes[winner].queue.len() as f64, // lint:allow(as-cast): queue depth to f64, exact below 2^53
            );
            self.obs.emit(
                self.now,
                Event::QueueDepth {
                    dest: winner as u64, // lint:allow(as-cast): small index/count widens to u64
                    depth: self.nodes[winner].queue.len() as u64, // lint:allow(as-cast): usize len widens to u64
                },
            );
            self.obs.emit(
                self.now,
                Event::Backoff {
                    station: winner as u64, // lint:allow(as-cast): small index/count widens to u64
                    slots: self.nodes[winner].backoff as u64, // lint:allow(as-cast): small index/count widens to u64
                },
            );
        }
    }

    /// Finalizes the run: idle fill-up, observability flush, report.
    pub(crate) fn finish(self) -> SimReport {
        let mut sta_airtime = self.sta_airtime;
        for share in &mut sta_airtime {
            let accounted = share.tx_s + share.rx_s + share.overhear_s + share.idle_s;
            share.idle_s += (self.cfg.duration_s - accounted).max(0.0);
        }

        if self.obs.enabled() {
            // Airtime-share distributions across STAs, for fairness views.
            for share in &sta_airtime {
                self.obs.record("mac.sta_airtime_tx_s", share.tx_s);
                self.obs.record("mac.sta_airtime_rx_s", share.rx_s);
                self.obs
                    .record("mac.sta_airtime_overhear_s", share.overhear_s);
            }
            self.obs.gauge("mac.sim_duration_s", self.cfg.duration_s);
            self.obs.flush();
        }

        SimReport {
            duration_s: self.cfg.duration_s,
            downlink: self.downlink.into_metrics(),
            uplink: self.uplink.into_metrics(),
            channel: self.channel,
            sta_airtime,
            per_sta_downlink: self.per_sta_downlink,
        }
    }
}

/// OBSS busy-time message exchanged between neighbouring domains at
/// epoch barriers.
#[derive(Debug, Clone, Copy)]
struct ObssMsg {
    to_domain: usize,
    busy_s: f64,
}

/// Configuration of a dense multi-AP scenario: `domains` co-channel
/// cells, each an independent collision domain built from the `cell`
/// template (per-domain seeds are `cell.seed + domain index`).
#[derive(Debug, Clone, PartialEq)]
pub struct DenseConfig {
    /// Template for one cell (its `num_aps`/`num_stas` are per cell).
    pub cell: SimConfig,
    /// Number of co-channel AP contention domains.
    pub domains: usize,
    /// Epoch length for the sharded barrier, seconds. Domains exchange
    /// OBSS busy time at every epoch boundary.
    pub epoch_s: f64,
    /// Strength of inter-domain interference: a subframe is lost with
    /// extra probability `min(1, neighbour_busy_fraction * coupling)`.
    /// Zero decouples the domains entirely.
    pub obss_coupling: f64,
    /// Shard count for the parallel engine; 0 means one shard per
    /// domain. The report is identical for every value.
    pub shards: usize,
}

impl Default for DenseConfig {
    fn default() -> Self {
        DenseConfig {
            cell: SimConfig {
                num_aps: 1,
                num_stas: 64,
                duration_s: 1.0,
                ..SimConfig::default()
            },
            domains: 16,
            epoch_s: 5e-3,
            obss_coupling: 0.25,
            shards: 0,
        }
    }
}

/// Aggregated result of a dense scenario run.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseReport {
    /// Per-domain reports, in domain order.
    pub per_domain: Vec<SimReport>,
    /// Downlink metrics merged across domains.
    pub downlink: FlowMetrics,
    /// Uplink metrics merged across domains.
    pub uplink: FlowMetrics,
    /// Channel counters merged across domains.
    pub channel: ChannelStats,
    /// Total engine events processed (arrivals + rounds + idle hops).
    pub events: u64,
    /// Simulated seconds.
    pub duration_s: f64,
}

impl DenseReport {
    /// Downlink goodput summed over all domains, Mbit/s.
    pub fn downlink_goodput_mbps(&self) -> f64 {
        self.downlink.goodput_bps(self.duration_s) / 1e6
    }
}

/// Balanced contiguous partition: domains `[lo, hi)` of shard `s`.
fn shard_bounds(domains: usize, shards: usize, s: usize) -> (usize, usize) {
    let base = domains / shards;
    let extra = domains % shards;
    let lo = s * base + s.min(extra);
    let hi = lo + base + usize::from(s < extra);
    (lo, hi)
}

/// The shard owning `domain` under [`shard_bounds`].
fn shard_of(domains: usize, shards: usize, domain: usize) -> usize {
    let base = domains / shards;
    let extra = domains % shards;
    let split = extra * (base + 1);
    if domain < split {
        domain / (base + 1)
    } else {
        // base == 0 only when shards > domains; every domain then falls
        // in the `split` range above, but saturate defensively.
        match (domain - split).checked_div(base) {
            Some(q) => extra + q,
            None => shards.saturating_sub(1),
        }
    }
}

/// Per-domain flight-trace capacity when the caller's recorder traces.
const DOMAIN_RING_CAPACITY: usize = 1 << 15;

/// One shard's state while stepping: its first domain index and the
/// domains it owns, each with an optional private trace ring.
struct Shard<'m> {
    lo: usize,
    domains: Vec<(Domain<'m>, Option<Arc<FlightRecorder>>)>,
}

/// Runs a dense multi-AP scenario on the sharded engine.
///
/// `make_model(d)` builds the error model for domain `d`. Domains are
/// partitioned into shards ([`DenseConfig::shards`]); each shard steps
/// its domains epoch by epoch, exchanging OBSS busy-time messages with
/// ring neighbours at every barrier through
/// [`carpool_par::run_sharded`]. All cross-shard aggregation is keyed
/// by domain index, so the returned report is byte-identical for every
/// thread count and every shard count.
///
/// If `obs` traces (has a flight recorder), each domain records into a
/// private ring; the rings are absorbed into `obs`'s recorder in
/// domain order after the run — same discipline as the PR 6
/// per-station merge. A worker panic surfaces as
/// [`carpool_par::ParError::WorkerPanic`].
pub fn run_dense<F>(
    cfg: &DenseConfig,
    make_model: F,
    obs: &Obs,
) -> Result<DenseReport, carpool_par::ParError>
where
    F: Fn(usize) -> Box<dyn FrameErrorModel> + Sync,
{
    assert!(cfg.domains >= 1, "need at least one domain");
    let num_shards = if cfg.shards == 0 {
        cfg.domains
    } else {
        cfg.shards.clamp(1, cfg.domains)
    };
    let duration = cfg.cell.duration_s;
    let epoch_s = if cfg.epoch_s > 0.0 {
        cfg.epoch_s
    } else {
        duration
    };
    // lint:allow(as-cast): epoch count is a small positive integer
    let epochs = ((duration / epoch_s).ceil() as usize).max(1);
    let tracing = obs.tracing();

    let shard_results = carpool_par::run_sharded(
        num_shards,
        epochs,
        |s| {
            let (lo, hi) = shard_bounds(cfg.domains, num_shards, s);
            let domains = (lo..hi)
                .map(|d| {
                    let cell = SimConfig {
                        seed: cfg.cell.seed.wrapping_add(d as u64), // lint:allow(as-cast): domain index widens to u64
                        ..cfg.cell.clone()
                    };
                    let ring = tracing.then(|| Arc::new(FlightRecorder::new(DOMAIN_RING_CAPACITY)));
                    let dobs = match &ring {
                        Some(r) => Obs::noop().with_flight(Arc::clone(r)),
                        None => Obs::noop(),
                    };
                    let domain = Domain::new(
                        cell,
                        ModelHandle::Owned(make_model(d)),
                        dobs,
                        (d as u64) << 40, // lint:allow(as-cast): domain index < 2^24 shifted into the id-space
                        cfg.obss_coupling,
                    );
                    (domain, ring)
                })
                .collect();
            Shard { lo, domains }
        },
        |shard: &mut Shard<'_>, epoch, inbox: &[ObssMsg], outbox: &mut Vec<ObssMsg>| {
            let epoch_end = (((epoch + 1) as f64) * epoch_s).min(duration); // lint:allow(as-cast): epoch index to f64, exact below 2^53
            for (i, (domain, _)) in shard.domains.iter_mut().enumerate() {
                let d = shard.lo + i;
                // Neighbour busy time for this epoch: messages arrive
                // ordered by source domain, so the (two-term) sum is
                // the same for every shard/thread layout.
                let busy_in: f64 = inbox
                    .iter()
                    .filter(|m| m.to_domain == d)
                    .map(|m| m.busy_s)
                    .sum();
                domain.set_obss_busy_frac(busy_in / epoch_s);
                while domain.step(epoch_end) {}
                let busy_out = domain.take_epoch_busy();
                if d > 0 {
                    outbox.push(ObssMsg {
                        to_domain: d - 1,
                        busy_s: busy_out,
                    });
                }
                if d + 1 < cfg.domains {
                    outbox.push(ObssMsg {
                        to_domain: d + 1,
                        busy_s: busy_out,
                    });
                }
            }
        },
        |m: &ObssMsg| shard_of(cfg.domains, num_shards, m.to_domain),
        |shard: Shard<'_>| {
            shard
                .domains
                .into_iter()
                .map(|(domain, ring)| {
                    let events = domain.events();
                    let trace = ring.map(|r| (r.records(), r.dropped()));
                    (domain.finish(), events, trace)
                })
                .collect::<Vec<_>>()
        },
    )?;

    let mut per_domain = Vec::with_capacity(cfg.domains);
    let mut downlink = FlowMetrics::default();
    let mut uplink = FlowMetrics::default();
    let mut channel = ChannelStats::default();
    let mut events = 0u64;
    for shard in shard_results {
        for (report, domain_events, trace) in shard {
            downlink.merge(&report.downlink);
            uplink.merge(&report.uplink);
            channel.merge(&report.channel);
            events += domain_events;
            if let (Some(flight), Some((records, dropped))) = (obs.flight(), trace) {
                // Rings merge in domain order: deterministic transcript.
                flight.absorb(&records, dropped);
            }
            per_domain.push(report);
        }
    }
    Ok(DenseReport {
        per_domain,
        downlink,
        uplink,
        channel,
        events,
        duration_s: duration,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error_model::BerBiasModel;

    fn dense_cfg(domains: usize, stas: usize, shards: usize) -> DenseConfig {
        DenseConfig {
            cell: SimConfig {
                num_aps: 1,
                num_stas: stas,
                duration_s: 0.2,
                ..SimConfig::default()
            },
            domains,
            epoch_s: 2e-3,
            obss_coupling: 0.25,
            shards,
        }
    }

    fn run(cfg: &DenseConfig) -> DenseReport {
        run_dense(cfg, |_| Box::new(BerBiasModel::calibrated()), &Obs::noop())
            .expect("dense run completes")
    }

    #[test]
    fn shard_bounds_partition_all_domains() {
        for domains in [1, 5, 16, 17] {
            for shards in 1..=domains {
                let mut covered = 0;
                for s in 0..shards {
                    let (lo, hi) = shard_bounds(domains, shards, s);
                    assert_eq!(lo, covered, "gap at shard {s}");
                    covered = hi;
                    for d in lo..hi {
                        assert_eq!(shard_of(domains, shards, d), s);
                    }
                }
                assert_eq!(covered, domains);
            }
        }
    }

    #[test]
    fn dense_report_is_shard_count_invariant() {
        let one = run(&dense_cfg(4, 6, 1));
        let two = run(&dense_cfg(4, 6, 2));
        let four = run(&dense_cfg(4, 6, 4));
        assert_eq!(one, two);
        assert_eq!(one, four);
    }

    #[test]
    fn dense_domains_deliver_traffic() {
        let report = run(&dense_cfg(3, 8, 0));
        assert_eq!(report.per_domain.len(), 3);
        assert!(report.downlink.delivered_frames > 0);
        assert!(report.events > 0);
        for d in &report.per_domain {
            assert!(d.downlink.delivered_frames > 0);
        }
    }

    #[test]
    fn obss_coupling_costs_throughput() {
        let mut decoupled_cfg = dense_cfg(4, 10, 0);
        decoupled_cfg.obss_coupling = 0.0;
        let mut coupled_cfg = dense_cfg(4, 10, 0);
        coupled_cfg.obss_coupling = 8.0;
        let decoupled = run(&decoupled_cfg);
        let coupled = run(&coupled_cfg);
        assert!(
            coupled.downlink.delivered_bytes < decoupled.downlink.delivered_bytes,
            "coupled {} vs decoupled {}",
            coupled.downlink.delivered_bytes,
            decoupled.downlink.delivered_bytes
        );
    }

    #[test]
    fn decoupled_domain_matches_standalone_simulator() {
        // With zero coupling, each dense domain must reproduce the
        // single-domain simulator byte for byte: the engine extraction
        // preserves the exact legacy RNG stream.
        let mut cfg = dense_cfg(3, 6, 0);
        cfg.obss_coupling = 0.0;
        let dense = run(&cfg);
        for d in 0..cfg.domains {
            let cell = SimConfig {
                seed: cfg.cell.seed.wrapping_add(d as u64),
                ..cfg.cell.clone()
            };
            let standalone =
                crate::sim::Simulator::new(cell, Box::new(BerBiasModel::calibrated())).run();
            assert_eq!(dense.per_domain[d], standalone, "domain {d}");
        }
    }
}
