#![warn(missing_docs)]
//! # carpool-mac — event-driven IEEE 802.11 DCF simulator
//!
//! Reimplements the paper's trace-driven MAC evaluation (Section 7.2):
//! a single collision domain with two APs and 10–30 STAs contending via
//! DCF with the Table 2 parameters, running one of five downlink
//! protocols ([`protocol::Protocol`]): IEEE 802.11, A-MPDU,
//! MU-Aggregation, WiFox and Carpool. Frame decoding outcomes come from
//! a pluggable [`error_model::FrameErrorModel`], calibrated against the
//! `carpool-phy` Monte-Carlo experiments (the stand-in for the paper's
//! USRP traces).
//!
//! # Examples
//!
//! ```
//! use carpool_mac::error_model::BerBiasModel;
//! use carpool_mac::protocol::Protocol;
//! use carpool_mac::sim::{SimConfig, Simulator};
//!
//! let config = SimConfig {
//!     protocol: Protocol::Carpool,
//!     num_stas: 12,
//!     duration_s: 2.0,
//!     ..SimConfig::default()
//! };
//! let report = Simulator::new(config, Box::new(BerBiasModel::calibrated())).run();
//! assert!(report.downlink.delivered_frames > 0);
//! ```

/// Generational arena for pending frames (allocation-free steady state).
pub mod arena;
/// Indexed calendar queue keyed by 9 µs slot ticks.
pub mod calendar;
/// Sharded, allocation-free MAC event engine and dense-scenario driver.
pub mod engine;
/// Pluggable frame-decoding outcome models.
pub mod error_model;
/// Flow/channel metrics and the per-run report types.
pub mod metrics;
/// The five downlink protocols under evaluation.
pub mod protocol;
/// SNR-driven MCS selection.
pub mod rate;
/// Single-cell simulator facade over the event engine.
pub mod sim;

pub use engine::{run_dense, DenseConfig, DenseReport};
pub use error_model::{
    BerBiasModel, EstimationScheme, FrameErrorModel, PerStaErrorModel, PerfectChannel,
};
pub use metrics::{AirtimeShare, ChannelStats, FlowMetrics, SimReport};
pub use protocol::Protocol;
pub use rate::mcs_for_snr;
pub use sim::{
    AggregationWait, DownlinkTraffic, HiddenTerminals, SchedulerPolicy, SimConfig, Simulator,
    UplinkTraffic,
};
