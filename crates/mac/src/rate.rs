//! Per-station rate adaptation.
//!
//! The paper's frame format lets "different subframes adopt different
//! MCSs" (Section 4.1) — each receiver is served at the rate its link
//! supports. This module provides the standard SNR-threshold rate table
//! used by the simulator when per-station link qualities are configured.

use carpool_phy::mcs::Mcs;

/// SNR thresholds (dB) above which each 802.11a/g rate is reliable,
/// ordered like [`Mcs::ALL`]. Derived from the standard's receiver
/// sensitivity ladder shifted to post-equalisation SNR.
pub(crate) const SNR_THRESHOLDS_DB: [f64; 8] = [5.0, 7.0, 9.5, 12.5, 16.0, 19.5, 23.5, 25.5];

/// Picks the fastest MCS whose threshold the link clears; links below
/// every threshold fall back to the base rate.
///
/// # Examples
///
/// ```
/// use carpool_mac::rate::mcs_for_snr;
/// use carpool_phy::mcs::Mcs;
///
/// assert_eq!(mcs_for_snr(3.0), Mcs::BPSK_1_2);
/// assert_eq!(mcs_for_snr(30.0), Mcs::QAM64_3_4);
/// assert_eq!(mcs_for_snr(17.0), Mcs::QAM16_1_2);
/// ```
pub fn mcs_for_snr(snr_db: f64) -> Mcs {
    let mut chosen = Mcs::BPSK_1_2;
    for (mcs, &threshold) in Mcs::ALL.iter().zip(SNR_THRESHOLDS_DB.iter()) {
        if snr_db >= threshold {
            chosen = *mcs;
        }
    }
    chosen
}

/// Maps a distance-flavoured path loss to SNR: `snr_ref` at 1 m with
/// log-distance decay of `exponent x 10 dB` per decade. Handy for
/// placing simulated stations around the AP.
#[cfg(test)]
fn snr_at_distance(snr_ref_db: f64, distance_m: f64, exponent: f64) -> f64 {
    assert!(distance_m > 0.0, "distance must be positive");
    snr_ref_db - 10.0 * exponent * distance_m.log10()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thresholds_are_increasing() {
        for w in SNR_THRESHOLDS_DB.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn rate_is_monotone_in_snr() {
        let mut prev = 0.0;
        for snr in [0.0, 6.0, 8.0, 10.0, 14.0, 18.0, 21.0, 24.0, 28.0] {
            let rate = mcs_for_snr(snr).data_rate_bps();
            assert!(rate >= prev, "snr {snr}");
            prev = rate;
        }
    }

    #[test]
    fn extremes() {
        assert_eq!(mcs_for_snr(f64::NEG_INFINITY), Mcs::BPSK_1_2);
        assert_eq!(mcs_for_snr(100.0), Mcs::QAM64_3_4);
    }

    #[test]
    fn each_threshold_activates_its_rate() {
        for (mcs, &t) in Mcs::ALL.iter().zip(SNR_THRESHOLDS_DB.iter()) {
            assert_eq!(mcs_for_snr(t + 0.01), *mcs);
        }
    }

    #[test]
    fn path_loss_model() {
        let near = snr_at_distance(40.0, 1.0, 3.0);
        let far = snr_at_distance(40.0, 10.0, 3.0);
        assert_eq!(near, 40.0);
        assert!((near - far - 30.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_distance_rejected() {
        snr_at_distance(40.0, 0.0, 3.0);
    }
}
