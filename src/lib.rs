//! Workspace umbrella for the Carpool reproduction.
//!
//! This crate exists so that repository-level `tests/` and `examples/`
//! can span every crate in the workspace. The real functionality lives in
//! the member crates; see [`carpool`] for the public facade.

pub use carpool;
pub use carpool_bloom;
pub use carpool_channel;
pub use carpool_frame;
pub use carpool_mac;
pub use carpool_phy;
pub use carpool_traffic;
