//! The large-audience scenario of the paper's Section 2: a campus
//! library cell where two APs serve a crowd of stations with two-way
//! VoIP plus uplink background traffic, under all five MAC protocols.
//!
//! Run with `cargo run --release --example library_wlan [num_stas]`.

use carpool_mac::error_model::BerBiasModel;
use carpool_mac::protocol::Protocol;
use carpool_mac::sim::{SimConfig, Simulator, UplinkTraffic};
use carpool_traffic::activity::ActivityProcess;
use carpool_traffic::stats::Trace;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let num_stas: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(24);

    // The measured context: how busy is a library cell?
    let mut rng = StdRng::seed_from_u64(7);
    let activity = ActivityProcess::library().sample_series(60, &mut rng);
    let mean = activity.iter().sum::<usize>() as f64 / activity.len() as f64;
    println!("library trace context:");
    println!(
        "  active STAs per AP over a minute: min {}, mean {mean:.1}, max {}",
        activity.iter().min().expect("non-empty"),
        activity.iter().max().expect("non-empty"),
    );
    println!(
        "  downlink share of traffic volume: {:.1}%",
        Trace::Library.downlink_ratio() * 100.0
    );
    println!();

    println!("simulating {num_stas} STAs, 2 APs, two-way VoIP + SIGCOMM background, 8 s:");
    println!(
        "{:<16} {:>10} {:>10} {:>12} {:>11}",
        "protocol", "goodput", "delay", "aggregation", "collisions"
    );
    for protocol in Protocol::ALL {
        let config = SimConfig {
            protocol,
            num_stas,
            duration_s: 8.0,
            seed: 42,
            uplink: Some(UplinkTraffic::default()),
            ..SimConfig::default()
        };
        let report = Simulator::new(config, Box::new(BerBiasModel::calibrated())).run();
        println!(
            "{:<16} {:>7.2} Mb {:>8.3} s {:>10.1} f {:>11}",
            protocol.name(),
            report.downlink_goodput_mbps(),
            report.downlink_delay_s(),
            report.channel.mean_aggregation(),
            report.channel.collisions
        );
    }
    println!();
    println!("(goodput = downlink MAC payload delivered; aggregation = frames per TXOP)");
}
