//! Planning a Carpool TXOP: frame selection from a mixed downlink
//! queue, A-HDR construction, airtime budget and the sequential-ACK
//! NAV schedule — the MAC-side anatomy of one transmission.
//!
//! Run with `cargo run --release --example aggregation_planner`.

use carpool_bloom::analysis::{false_positive_ratio, optimal_hash_count};
use carpool_bloom::AggregationHeader;
use carpool_frame::addr::MacAddress;
use carpool_frame::aggregation::{select, AggregationLimits, AggregationPolicy, QueuedFrame};
use carpool_frame::airtime::{ack_airtime, carpool_frame_airtime, SIFS};
use carpool_frame::nav::{ack_start_offset, nav_ack, nav_data, nav_receiver};
use carpool_phy::mcs::Mcs;

fn main() {
    // A backlogged AP queue: interleaved frames for five stations.
    let queue: Vec<QueuedFrame> = [
        (1u16, 300),
        (2, 1200),
        (1, 300),
        (3, 90),
        (4, 700),
        (2, 1200),
        (5, 150),
        (3, 90),
        (1, 300),
        (5, 150),
    ]
    .iter()
    .enumerate()
    .map(|(k, &(sta, bytes))| QueuedFrame {
        dest: MacAddress::station(sta),
        bytes,
        enqueue_time: k as f64 * 1e-3,
    })
    .collect();

    println!("queue: {} frames for 5 stations", queue.len());
    for policy in [
        AggregationPolicy::None,
        AggregationPolicy::Ampdu,
        AggregationPolicy::MultiUser,
    ] {
        let sel = select(policy, &queue, &AggregationLimits::default());
        println!(
            "  {policy:?}: {} frames across {} receivers",
            sel.frame_count(),
            sel.receiver_count()
        );
    }
    println!();

    // Carpool takes the multi-user selection; build its A-HDR.
    let selection = select(
        AggregationPolicy::MultiUser,
        &queue,
        &AggregationLimits::default(),
    );
    let receivers: Vec<MacAddress> = selection.groups.iter().map(|(d, _)| *d).collect();
    let header = AggregationHeader::for_receivers(&receivers, 4).expect("<=8 receivers");
    println!("A-HDR: {header} ({} bits set)", header.popcount());
    println!(
        "  optimal h for {} receivers: {:.2}; false positive ratio at h=4: {:.2}%",
        receivers.len(),
        optimal_hash_count(receivers.len()),
        false_positive_ratio(4, receivers.len()) * 100.0
    );
    for (i, r) in receivers.iter().enumerate() {
        assert!(header.query(r.as_bytes(), i), "no false negatives ever");
    }
    println!("  every receiver matches its own subframe (no false negatives)");
    println!();

    // Airtime and the sequential-ACK schedule.
    let subframes: Vec<(usize, Mcs)> = selection
        .groups
        .iter()
        .map(|(_, idxs)| {
            let bytes: usize = idxs.iter().map(|&k| queue[k].bytes).sum();
            (bytes, Mcs::QAM64_3_4)
        })
        .collect();
    let data_airtime = carpool_frame_airtime(&subframes);
    let n = subframes.len();
    println!("data PPDU airtime: {:.1} µs", data_airtime * 1e6);
    println!(
        "NAV_data (Eq. 1): {:.1} µs reserves the medium through all {} ACKs",
        nav_data(n, data_airtime) * 1e6,
        n
    );
    println!(
        "{:>10} {:>14} {:>14} {:>14}",
        "subframe", "NAV_i (Eq. 2)", "ACK starts at", "ACK's own NAV"
    );
    for i in 1..=n {
        println!(
            "{i:>10} {:>11.1} µs {:>11.1} µs {:>11.1} µs",
            nav_receiver(i) * 1e6,
            ack_start_offset(i) * 1e6,
            nav_ack(i, n) * 1e6
        );
    }
    println!(
        "(ACKs are spaced SIFS={} µs apart, each {:.1} µs long; the last NAV is 0 \
         like a legacy ACK)",
        SIFS * 1e6,
        ack_airtime() * 1e6
    );
}
