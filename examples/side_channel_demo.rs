//! The phase offset side channel and real-time channel estimation,
//! end to end: send a long frame through a drifting channel and watch
//! the per-symbol CRCs gate data-pilot calibration.
//!
//! Run with `cargo run --release --example side_channel_demo`.

use carpool_channel::link::LinkChannel;
use carpool_phy::bits::{bit_error_rate, hamming_distance};
use carpool_phy::mcs::Mcs;
use carpool_phy::rte::CalibrationRule;
use carpool_phy::rx::{receive, Estimation, SectionLayout};
use carpool_phy::tx::{transmit, SectionSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An 8 KB QAM64 frame — long enough for the channel to drift.
    let payload: Vec<u8> = (0..8 * 1024 * 8)
        .map(|k| ((k * 31 + 7) % 5 < 2) as u8)
        .collect();
    let spec = SectionSpec::payload(payload.clone(), Mcs::QAM64_3_4);
    let tx = transmit(std::slice::from_ref(&spec))?;
    let n_sym = tx.sections[0].num_symbols;
    println!(
        "frame: {} OFDM symbols; side channel carries {} CRC bits total",
        n_sym,
        2 * n_sym
    );

    let channel = |seed: u64| {
        LinkChannel::builder()
            .snr_db(27.0)
            .coherence_time(4e-3)
            .rician_k(15.0)
            .cfo_hz(120.0)
            .seed(seed)
            .build()
    };

    // Same waveform, two receivers: standard estimation vs RTE.
    let rx_samples = channel(99).transmit(&tx.samples);
    let layouts = [SectionLayout::of(&spec)];
    let standard = receive(&rx_samples, &layouts, Estimation::Standard)?;
    let rte = receive(
        &rx_samples,
        &layouts,
        Estimation::Rte(CalibrationRule::Average),
    )?;

    // Side channel diagnostics (from the RTE receiver).
    let side_tx = &tx.sections[0].side_values;
    let side_rx = &rte.sections[0].side_values;
    let side_errs = hamming_distance(side_tx, side_rx);
    let crc_pass = rte.sections[0].crc_ok.iter().filter(|&&ok| ok).count();
    println!(
        "side channel: {side_errs}/{} symbol values wrong; CRC passed on {crc_pass}/{n_sym} symbols",
        side_tx.len()
    );

    // BER by frame region, standard vs RTE.
    println!("{:>14} {:>12} {:>12}", "frame region", "standard", "RTE");
    let region = n_sym / 4;
    for (name, range) in [
        ("first 25%", 0..region),
        ("second 25%", region..2 * region),
        ("third 25%", 2 * region..3 * region),
        ("last 25%", 3 * region..n_sym),
    ] {
        let ber = |rx: &carpool_phy::rx::RxFrame| {
            let mut errs = 0usize;
            let mut total = 0usize;
            for k in range.clone() {
                errs += hamming_distance(
                    &tx.sections[0].symbol_bits[k],
                    &rx.sections[0].raw_symbol_bits[k],
                );
                total += tx.sections[0].symbol_bits[k].len();
            }
            errs as f64 / total as f64
        };
        println!("{name:>14} {:>12.2e} {:>12.2e}", ber(&standard), ber(&rte));
    }

    let std_ber = bit_error_rate(&payload, &standard.sections[0].bits);
    let rte_ber = bit_error_rate(&payload, &rte.sections[0].bits);
    println!("post-FEC payload BER: standard {std_ber:.2e}, RTE {rte_ber:.2e}");
    println!("(standard estimation goes stale over the frame; RTE keeps calibrating)");
    Ok(())
}
