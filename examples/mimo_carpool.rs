//! Carpool over MU-MIMO (paper Section 8, Fig. 18): pack more
//! receivers than the AP has antennas into one transmission.
//!
//! Run with `cargo run --release --example mimo_carpool`.

use carpool_frame::addr::MacAddress;
use carpool_frame::mimo::{MimoCarpoolFrame, MimoSubframe};
use carpool_phy::math::Complex64;
use carpool_phy::mcs::Mcs;
use carpool_phy::mimo::{decode_stream, observe, Matrix2, ZfPrecoder};
use carpool_phy::modulation::Modulation;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's example: a two-antenna AP with data for four stations.
    let subframes = vec![
        MimoSubframe::new(MacAddress::station(0), 800, Mcs::QAM16_1_2), // A
        MimoSubframe::new(MacAddress::station(1), 600, Mcs::QAM16_1_2), // B
        MimoSubframe::new(MacAddress::station(2), 700, Mcs::QAM64_2_3), // C
        MimoSubframe::new(MacAddress::station(3), 900, Mcs::QPSK_1_2),  // D
    ];
    let frame = MimoCarpoolFrame::pack(2, subframes)?;

    println!(
        "two-antenna AP, {} receivers -> {} precoding groups in ONE transmission:",
        frame.receiver_count(),
        frame.groups().len()
    );
    for (g, group) in frame.groups().iter().enumerate() {
        let members: Vec<String> = group.iter().map(|s| s.receiver.to_string()).collect();
        println!(
            "  group {g}: [{}]  ({:.1} µs incl. its VHT preamble)",
            members.join(", "),
            frame.group_airtime(g) * 1e6
        );
    }

    // Every station finds its group through the shared A-HDR.
    let hdr = frame.header();
    println!("shared A-HDR: {hdr}");
    for (g, group) in frame.groups().iter().enumerate() {
        for s in group {
            assert!(hdr.query(s.receiver.as_bytes(), g));
        }
    }
    println!("every receiver matches its group index in the Bloom filter");

    println!();
    println!(
        "airtime: Carpool MU-MIMO {:.1} µs vs plain 802.11ac MU-MIMO {:.1} µs ({} channel access(es) saved)",
        frame.exchange_airtime() * 1e6,
        frame.plain_mu_mimo_airtime() * 1e6,
        frame.accesses_saved()
    );

    // And the signal level: zero-forcing precoding for group 0's two
    // receivers over a random-ish 2x2 downlink channel.
    println!();
    let channel = Matrix2::from_rows(
        [Complex64::new(0.9, 0.2), Complex64::new(-0.4, 0.6)],
        [Complex64::new(0.1, -0.7), Complex64::new(0.8, 0.3)],
    );
    let precoder = ZfPrecoder::new(&channel)?;
    let m = Modulation::Qpsk;
    let bits_a: Vec<u8> = (0..96).map(|k| (k % 3 == 0) as u8).collect();
    let bits_b: Vec<u8> = (0..96).map(|k| (k % 5 < 2) as u8).collect();
    let group0 = precoder.precode(&m.map_all(&bits_a), &m.map_all(&bits_b), 4)?;
    for (r, (name, expect)) in [("A", &bits_a), ("B", &bits_b)].iter().enumerate() {
        let row = if r == 0 {
            [channel.a, channel.b]
        } else {
            [channel.c, channel.d]
        };
        let (bits, isr) = decode_stream(&observe(&group0, row), r, 4, m);
        println!(
            "  receiver {name}: stream decoded {} (residual interference {:.1e})",
            if &bits == *expect {
                "intact"
            } else {
                "CORRUPT"
            },
            isr
        );
    }
    println!("zero-forcing gives each receiver an interference-free scalar channel");
    Ok(())
}
