//! Quickstart: one Carpool frame, three receivers, a noisy fading
//! channel — the core idea of the paper in ~40 lines.
//!
//! Run with `cargo run --release --example quickstart`.

use carpool::link::CarpoolLink;
use carpool_frame::addr::MacAddress;
use carpool_frame::carpool::{CarpoolFrame, Subframe};
use carpool_phy::mcs::Mcs;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Three stations with pending downlink data; the AP carpools them
    // into a single PHY transmission, each at its own MCS.
    let stations = [
        MacAddress::station(1),
        MacAddress::station(2),
        MacAddress::station(3),
    ];
    let frame = CarpoolFrame::new(vec![
        Subframe::new(stations[0], Mcs::QPSK_1_2, b"weather for sta 1".to_vec()),
        Subframe::new(stations[1], Mcs::QAM16_3_4, vec![0x42; 600]),
        Subframe::new(stations[2], Mcs::QAM64_3_4, vec![0x17; 1200]),
    ])?;
    println!(
        "Carpool frame: {} subframes, {} payload bytes, A-HDR {}",
        frame.subframes().len(),
        frame.payload_bytes(),
        frame.header()
    );

    // An indoor link: 32 dB SNR, slow Rician fading, 100 Hz residual CFO.
    let mut link = CarpoolLink::builder()
        .snr_db(32.0)
        .coherence_time(5e-3)
        .cfo_hz(100.0)
        .seed(2026)
        .build();

    // Every station hears the same transmission; each decodes only its
    // own subframe (skipping the others after reading their SIG).
    for (k, sta) in stations.iter().enumerate() {
        let rx = link.deliver(&frame, *sta)?;
        let payload = rx.payload_at(k).ok_or("subframe not matched")?;
        let ok = payload == frame.subframes()[k].payload;
        println!(
            "station {sta}: matched {:?}, decoded {} B ({}), \
             decoded {} / skipped {} symbols",
            rx.matched_indices,
            payload.len(),
            if ok { "intact" } else { "CORRUPTED" },
            rx.symbols_decoded,
            rx.symbols_skipped,
        );
    }

    // A bystander checks the 2-symbol A-HDR and (almost always) drops
    // the frame without decoding any payload.
    let outsider = MacAddress::station(999);
    let rx = link.deliver(&frame, outsider)?;
    println!(
        "outsider {outsider}: matched {:?} — decoded only {} symbols",
        rx.matched_indices, rx.symbols_decoded
    );
    Ok(())
}
