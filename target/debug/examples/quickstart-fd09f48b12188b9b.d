/root/repo/target/debug/examples/quickstart-fd09f48b12188b9b.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-fd09f48b12188b9b: examples/quickstart.rs

examples/quickstart.rs:
