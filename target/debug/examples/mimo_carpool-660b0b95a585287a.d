/root/repo/target/debug/examples/mimo_carpool-660b0b95a585287a.d: examples/mimo_carpool.rs Cargo.toml

/root/repo/target/debug/examples/libmimo_carpool-660b0b95a585287a.rmeta: examples/mimo_carpool.rs Cargo.toml

examples/mimo_carpool.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
