/root/repo/target/debug/examples/library_wlan-fc7f2b70c2f27285.d: examples/library_wlan.rs Cargo.toml

/root/repo/target/debug/examples/liblibrary_wlan-fc7f2b70c2f27285.rmeta: examples/library_wlan.rs Cargo.toml

examples/library_wlan.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
