/root/repo/target/debug/examples/side_channel_demo-e923ed44ab51df29.d: examples/side_channel_demo.rs

/root/repo/target/debug/examples/side_channel_demo-e923ed44ab51df29: examples/side_channel_demo.rs

examples/side_channel_demo.rs:
