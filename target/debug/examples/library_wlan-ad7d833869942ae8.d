/root/repo/target/debug/examples/library_wlan-ad7d833869942ae8.d: examples/library_wlan.rs

/root/repo/target/debug/examples/library_wlan-ad7d833869942ae8: examples/library_wlan.rs

examples/library_wlan.rs:
