/root/repo/target/debug/examples/aggregation_planner-dd4796d26d7d2912.d: examples/aggregation_planner.rs Cargo.toml

/root/repo/target/debug/examples/libaggregation_planner-dd4796d26d7d2912.rmeta: examples/aggregation_planner.rs Cargo.toml

examples/aggregation_planner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
