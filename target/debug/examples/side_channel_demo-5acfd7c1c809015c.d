/root/repo/target/debug/examples/side_channel_demo-5acfd7c1c809015c.d: examples/side_channel_demo.rs

/root/repo/target/debug/examples/side_channel_demo-5acfd7c1c809015c: examples/side_channel_demo.rs

examples/side_channel_demo.rs:
