/root/repo/target/debug/examples/mimo_carpool-396f0df4c032a7f2.d: examples/mimo_carpool.rs

/root/repo/target/debug/examples/mimo_carpool-396f0df4c032a7f2: examples/mimo_carpool.rs

examples/mimo_carpool.rs:
