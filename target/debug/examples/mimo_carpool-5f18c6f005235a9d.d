/root/repo/target/debug/examples/mimo_carpool-5f18c6f005235a9d.d: examples/mimo_carpool.rs

/root/repo/target/debug/examples/mimo_carpool-5f18c6f005235a9d: examples/mimo_carpool.rs

examples/mimo_carpool.rs:
