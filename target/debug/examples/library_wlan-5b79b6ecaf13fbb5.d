/root/repo/target/debug/examples/library_wlan-5b79b6ecaf13fbb5.d: examples/library_wlan.rs

/root/repo/target/debug/examples/library_wlan-5b79b6ecaf13fbb5: examples/library_wlan.rs

examples/library_wlan.rs:
