/root/repo/target/debug/examples/side_channel_demo-4964306a222bdb44.d: examples/side_channel_demo.rs Cargo.toml

/root/repo/target/debug/examples/libside_channel_demo-4964306a222bdb44.rmeta: examples/side_channel_demo.rs Cargo.toml

examples/side_channel_demo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
