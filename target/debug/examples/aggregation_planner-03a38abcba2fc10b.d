/root/repo/target/debug/examples/aggregation_planner-03a38abcba2fc10b.d: examples/aggregation_planner.rs

/root/repo/target/debug/examples/aggregation_planner-03a38abcba2fc10b: examples/aggregation_planner.rs

examples/aggregation_planner.rs:
