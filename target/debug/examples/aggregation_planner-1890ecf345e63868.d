/root/repo/target/debug/examples/aggregation_planner-1890ecf345e63868.d: examples/aggregation_planner.rs

/root/repo/target/debug/examples/aggregation_planner-1890ecf345e63868: examples/aggregation_planner.rs

examples/aggregation_planner.rs:
