/root/repo/target/debug/examples/quickstart-6ef64ddbba615110.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-6ef64ddbba615110: examples/quickstart.rs

examples/quickstart.rs:
