/root/repo/target/debug/deps/proptests-cae072cf4986aa89.d: crates/mac/tests/proptests.rs

/root/repo/target/debug/deps/proptests-cae072cf4986aa89: crates/mac/tests/proptests.rs

crates/mac/tests/proptests.rs:
