/root/repo/target/debug/deps/carpool_traffic-bc01580b4cd3c674.d: crates/traffic/src/lib.rs crates/traffic/src/activity.rs crates/traffic/src/background.rs crates/traffic/src/framesize.rs crates/traffic/src/stats.rs crates/traffic/src/trace.rs crates/traffic/src/voip.rs

/root/repo/target/debug/deps/carpool_traffic-bc01580b4cd3c674: crates/traffic/src/lib.rs crates/traffic/src/activity.rs crates/traffic/src/background.rs crates/traffic/src/framesize.rs crates/traffic/src/stats.rs crates/traffic/src/trace.rs crates/traffic/src/voip.rs

crates/traffic/src/lib.rs:
crates/traffic/src/activity.rs:
crates/traffic/src/background.rs:
crates/traffic/src/framesize.rs:
crates/traffic/src/stats.rs:
crates/traffic/src/trace.rs:
crates/traffic/src/voip.rs:
