/root/repo/target/debug/deps/rand-595f346ebcb4cfac.d: .offline-stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-595f346ebcb4cfac.rmeta: .offline-stubs/rand/src/lib.rs

.offline-stubs/rand/src/lib.rs:
