/root/repo/target/debug/deps/carpool_repro-5a55ea88f9d442cc.d: src/lib.rs

/root/repo/target/debug/deps/carpool_repro-5a55ea88f9d442cc: src/lib.rs

src/lib.rs:
