/root/repo/target/debug/deps/cli-a47a70799cc1f325.d: crates/cli/tests/cli.rs Cargo.toml

/root/repo/target/debug/deps/libcli-a47a70799cc1f325.rmeta: crates/cli/tests/cli.rs Cargo.toml

crates/cli/tests/cli.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_carpool=placeholder:carpool
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
