/root/repo/target/debug/deps/fig17_latency_framesize-90ec6e0a36dce4c2.d: crates/bench/benches/fig17_latency_framesize.rs Cargo.toml

/root/repo/target/debug/deps/libfig17_latency_framesize-90ec6e0a36dce4c2.rmeta: crates/bench/benches/fig17_latency_framesize.rs Cargo.toml

crates/bench/benches/fig17_latency_framesize.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
