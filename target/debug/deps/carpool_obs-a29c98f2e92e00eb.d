/root/repo/target/debug/deps/carpool_obs-a29c98f2e92e00eb.d: crates/obs/src/lib.rs crates/obs/src/event.rs crates/obs/src/histogram.rs crates/obs/src/json.rs crates/obs/src/recorder.rs crates/obs/src/sink.rs crates/obs/src/span.rs

/root/repo/target/debug/deps/libcarpool_obs-a29c98f2e92e00eb.rlib: crates/obs/src/lib.rs crates/obs/src/event.rs crates/obs/src/histogram.rs crates/obs/src/json.rs crates/obs/src/recorder.rs crates/obs/src/sink.rs crates/obs/src/span.rs

/root/repo/target/debug/deps/libcarpool_obs-a29c98f2e92e00eb.rmeta: crates/obs/src/lib.rs crates/obs/src/event.rs crates/obs/src/histogram.rs crates/obs/src/json.rs crates/obs/src/recorder.rs crates/obs/src/sink.rs crates/obs/src/span.rs

crates/obs/src/lib.rs:
crates/obs/src/event.rs:
crates/obs/src/histogram.rs:
crates/obs/src/json.rs:
crates/obs/src/recorder.rs:
crates/obs/src/sink.rs:
crates/obs/src/span.rs:
