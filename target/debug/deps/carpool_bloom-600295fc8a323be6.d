/root/repo/target/debug/deps/carpool_bloom-600295fc8a323be6.d: crates/bloom/src/lib.rs crates/bloom/src/analysis.rs

/root/repo/target/debug/deps/carpool_bloom-600295fc8a323be6: crates/bloom/src/lib.rs crates/bloom/src/analysis.rs

crates/bloom/src/lib.rs:
crates/bloom/src/analysis.rs:
