/root/repo/target/debug/deps/carpool_bloom-74a00276a9ff0776.d: crates/bloom/src/lib.rs crates/bloom/src/analysis.rs

/root/repo/target/debug/deps/libcarpool_bloom-74a00276a9ff0776.rlib: crates/bloom/src/lib.rs crates/bloom/src/analysis.rs

/root/repo/target/debug/deps/libcarpool_bloom-74a00276a9ff0776.rmeta: crates/bloom/src/lib.rs crates/bloom/src/analysis.rs

crates/bloom/src/lib.rs:
crates/bloom/src/analysis.rs:
