/root/repo/target/debug/deps/proptests-5aa5c170da8edded.d: crates/traffic/tests/proptests.rs

/root/repo/target/debug/deps/proptests-5aa5c170da8edded: crates/traffic/tests/proptests.rs

crates/traffic/tests/proptests.rs:
