/root/repo/target/debug/deps/proptests-0a9fafecd076e39c.d: crates/phy/tests/proptests.rs

/root/repo/target/debug/deps/proptests-0a9fafecd076e39c: crates/phy/tests/proptests.rs

crates/phy/tests/proptests.rs:
