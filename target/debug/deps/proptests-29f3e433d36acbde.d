/root/repo/target/debug/deps/proptests-29f3e433d36acbde.d: crates/traffic/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-29f3e433d36acbde.rmeta: crates/traffic/tests/proptests.rs Cargo.toml

crates/traffic/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
