/root/repo/target/debug/deps/cli-e5034d5b5fcde1b9.d: crates/cli/tests/cli.rs

/root/repo/target/debug/deps/cli-e5034d5b5fcde1b9: crates/cli/tests/cli.rs

crates/cli/tests/cli.rs:

# env-dep:CARGO_BIN_EXE_carpool=/root/repo/target/debug/carpool
