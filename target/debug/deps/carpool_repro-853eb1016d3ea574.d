/root/repo/target/debug/deps/carpool_repro-853eb1016d3ea574.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcarpool_repro-853eb1016d3ea574.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
