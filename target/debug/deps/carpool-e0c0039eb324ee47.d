/root/repo/target/debug/deps/carpool-e0c0039eb324ee47.d: crates/carpool/src/lib.rs crates/carpool/src/calibrate.rs crates/carpool/src/energy.rs crates/carpool/src/link.rs crates/carpool/src/scenario.rs

/root/repo/target/debug/deps/libcarpool-e0c0039eb324ee47.rlib: crates/carpool/src/lib.rs crates/carpool/src/calibrate.rs crates/carpool/src/energy.rs crates/carpool/src/link.rs crates/carpool/src/scenario.rs

/root/repo/target/debug/deps/libcarpool-e0c0039eb324ee47.rmeta: crates/carpool/src/lib.rs crates/carpool/src/calibrate.rs crates/carpool/src/energy.rs crates/carpool/src/link.rs crates/carpool/src/scenario.rs

crates/carpool/src/lib.rs:
crates/carpool/src/calibrate.rs:
crates/carpool/src/energy.rs:
crates/carpool/src/link.rs:
crates/carpool/src/scenario.rs:
