/root/repo/target/debug/deps/carpool_bench-b66ac4108153e874.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/carpool_bench-b66ac4108153e874: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
