/root/repo/target/debug/deps/carpool-edfc58f300416509.d: crates/carpool/src/lib.rs crates/carpool/src/calibrate.rs crates/carpool/src/energy.rs crates/carpool/src/link.rs crates/carpool/src/scenario.rs

/root/repo/target/debug/deps/libcarpool-edfc58f300416509.rlib: crates/carpool/src/lib.rs crates/carpool/src/calibrate.rs crates/carpool/src/energy.rs crates/carpool/src/link.rs crates/carpool/src/scenario.rs

/root/repo/target/debug/deps/libcarpool-edfc58f300416509.rmeta: crates/carpool/src/lib.rs crates/carpool/src/calibrate.rs crates/carpool/src/energy.rs crates/carpool/src/link.rs crates/carpool/src/scenario.rs

crates/carpool/src/lib.rs:
crates/carpool/src/calibrate.rs:
crates/carpool/src/energy.rs:
crates/carpool/src/link.rs:
crates/carpool/src/scenario.rs:
