/root/repo/target/debug/deps/carpool_bench-8a7e52a91f5c665f.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/carpool_bench-8a7e52a91f5c665f: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
