/root/repo/target/debug/deps/criterion-0409a471bbe8d921.d: .offline-stubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-0409a471bbe8d921.rmeta: .offline-stubs/criterion/src/lib.rs

.offline-stubs/criterion/src/lib.rs:
