/root/repo/target/debug/deps/ablation_coexistence-c080210a25588f00.d: crates/bench/benches/ablation_coexistence.rs Cargo.toml

/root/repo/target/debug/deps/libablation_coexistence-c080210a25588f00.rmeta: crates/bench/benches/ablation_coexistence.rs Cargo.toml

crates/bench/benches/ablation_coexistence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
