/root/repo/target/debug/deps/carpool-a00017aafc36ae9b.d: crates/carpool/src/lib.rs crates/carpool/src/calibrate.rs crates/carpool/src/energy.rs crates/carpool/src/link.rs crates/carpool/src/scenario.rs

/root/repo/target/debug/deps/carpool-a00017aafc36ae9b: crates/carpool/src/lib.rs crates/carpool/src/calibrate.rs crates/carpool/src/energy.rs crates/carpool/src/link.rs crates/carpool/src/scenario.rs

crates/carpool/src/lib.rs:
crates/carpool/src/calibrate.rs:
crates/carpool/src/energy.rs:
crates/carpool/src/link.rs:
crates/carpool/src/scenario.rs:
