/root/repo/target/debug/deps/proptests-4712ce08c8684e98.d: crates/mac/tests/proptests.rs

/root/repo/target/debug/deps/proptests-4712ce08c8684e98: crates/mac/tests/proptests.rs

crates/mac/tests/proptests.rs:
