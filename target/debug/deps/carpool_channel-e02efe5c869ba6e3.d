/root/repo/target/debug/deps/carpool_channel-e02efe5c869ba6e3.d: crates/channel/src/lib.rs crates/channel/src/cfo.rs crates/channel/src/fading.rs crates/channel/src/jakes.rs crates/channel/src/link.rs crates/channel/src/noise.rs

/root/repo/target/debug/deps/carpool_channel-e02efe5c869ba6e3: crates/channel/src/lib.rs crates/channel/src/cfo.rs crates/channel/src/fading.rs crates/channel/src/jakes.rs crates/channel/src/link.rs crates/channel/src/noise.rs

crates/channel/src/lib.rs:
crates/channel/src/cfo.rs:
crates/channel/src/fading.rs:
crates/channel/src/jakes.rs:
crates/channel/src/link.rs:
crates/channel/src/noise.rs:
