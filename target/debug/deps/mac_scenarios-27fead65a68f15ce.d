/root/repo/target/debug/deps/mac_scenarios-27fead65a68f15ce.d: tests/mac_scenarios.rs Cargo.toml

/root/repo/target/debug/deps/libmac_scenarios-27fead65a68f15ce.rmeta: tests/mac_scenarios.rs Cargo.toml

tests/mac_scenarios.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
