/root/repo/target/debug/deps/noop_alloc-31baca30a8bee8ad.d: crates/obs/tests/noop_alloc.rs

/root/repo/target/debug/deps/noop_alloc-31baca30a8bee8ad: crates/obs/tests/noop_alloc.rs

crates/obs/tests/noop_alloc.rs:
