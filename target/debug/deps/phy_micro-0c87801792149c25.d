/root/repo/target/debug/deps/phy_micro-0c87801792149c25.d: crates/bench/benches/phy_micro.rs Cargo.toml

/root/repo/target/debug/deps/libphy_micro-0c87801792149c25.rmeta: crates/bench/benches/phy_micro.rs Cargo.toml

crates/bench/benches/phy_micro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
