/root/repo/target/debug/deps/carpool_bench-b871cb86b1ee1d3f.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcarpool_bench-b871cb86b1ee1d3f.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
