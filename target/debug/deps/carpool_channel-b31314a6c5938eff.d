/root/repo/target/debug/deps/carpool_channel-b31314a6c5938eff.d: crates/channel/src/lib.rs crates/channel/src/cfo.rs crates/channel/src/fading.rs crates/channel/src/jakes.rs crates/channel/src/link.rs crates/channel/src/noise.rs

/root/repo/target/debug/deps/libcarpool_channel-b31314a6c5938eff.rlib: crates/channel/src/lib.rs crates/channel/src/cfo.rs crates/channel/src/fading.rs crates/channel/src/jakes.rs crates/channel/src/link.rs crates/channel/src/noise.rs

/root/repo/target/debug/deps/libcarpool_channel-b31314a6c5938eff.rmeta: crates/channel/src/lib.rs crates/channel/src/cfo.rs crates/channel/src/fading.rs crates/channel/src/jakes.rs crates/channel/src/link.rs crates/channel/src/noise.rs

crates/channel/src/lib.rs:
crates/channel/src/cfo.rs:
crates/channel/src/fading.rs:
crates/channel/src/jakes.rs:
crates/channel/src/link.rs:
crates/channel/src/noise.rs:
