/root/repo/target/debug/deps/carpool_traffic-c3530af3ad473998.d: crates/traffic/src/lib.rs crates/traffic/src/activity.rs crates/traffic/src/background.rs crates/traffic/src/framesize.rs crates/traffic/src/stats.rs crates/traffic/src/trace.rs crates/traffic/src/voip.rs Cargo.toml

/root/repo/target/debug/deps/libcarpool_traffic-c3530af3ad473998.rmeta: crates/traffic/src/lib.rs crates/traffic/src/activity.rs crates/traffic/src/background.rs crates/traffic/src/framesize.rs crates/traffic/src/stats.rs crates/traffic/src/trace.rs crates/traffic/src/voip.rs Cargo.toml

crates/traffic/src/lib.rs:
crates/traffic/src/activity.rs:
crates/traffic/src/background.rs:
crates/traffic/src/framesize.rs:
crates/traffic/src/stats.rs:
crates/traffic/src/trace.rs:
crates/traffic/src/voip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
