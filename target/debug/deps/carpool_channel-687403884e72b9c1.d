/root/repo/target/debug/deps/carpool_channel-687403884e72b9c1.d: crates/channel/src/lib.rs crates/channel/src/cfo.rs crates/channel/src/fading.rs crates/channel/src/jakes.rs crates/channel/src/link.rs crates/channel/src/noise.rs

/root/repo/target/debug/deps/libcarpool_channel-687403884e72b9c1.rlib: crates/channel/src/lib.rs crates/channel/src/cfo.rs crates/channel/src/fading.rs crates/channel/src/jakes.rs crates/channel/src/link.rs crates/channel/src/noise.rs

/root/repo/target/debug/deps/libcarpool_channel-687403884e72b9c1.rmeta: crates/channel/src/lib.rs crates/channel/src/cfo.rs crates/channel/src/fading.rs crates/channel/src/jakes.rs crates/channel/src/link.rs crates/channel/src/noise.rs

crates/channel/src/lib.rs:
crates/channel/src/cfo.rs:
crates/channel/src/fading.rs:
crates/channel/src/jakes.rs:
crates/channel/src/link.rs:
crates/channel/src/noise.rs:
