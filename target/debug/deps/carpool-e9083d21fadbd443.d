/root/repo/target/debug/deps/carpool-e9083d21fadbd443.d: crates/carpool/src/lib.rs crates/carpool/src/calibrate.rs crates/carpool/src/energy.rs crates/carpool/src/link.rs crates/carpool/src/scenario.rs

/root/repo/target/debug/deps/carpool-e9083d21fadbd443: crates/carpool/src/lib.rs crates/carpool/src/calibrate.rs crates/carpool/src/energy.rs crates/carpool/src/link.rs crates/carpool/src/scenario.rs

crates/carpool/src/lib.rs:
crates/carpool/src/calibrate.rs:
crates/carpool/src/energy.rs:
crates/carpool/src/link.rs:
crates/carpool/src/scenario.rs:
