/root/repo/target/debug/deps/carpool_obs-7331f4cc1a1c2859.d: crates/obs/src/lib.rs crates/obs/src/event.rs crates/obs/src/histogram.rs crates/obs/src/json.rs crates/obs/src/recorder.rs crates/obs/src/sink.rs crates/obs/src/span.rs Cargo.toml

/root/repo/target/debug/deps/libcarpool_obs-7331f4cc1a1c2859.rmeta: crates/obs/src/lib.rs crates/obs/src/event.rs crates/obs/src/histogram.rs crates/obs/src/json.rs crates/obs/src/recorder.rs crates/obs/src/sink.rs crates/obs/src/span.rs Cargo.toml

crates/obs/src/lib.rs:
crates/obs/src/event.rs:
crates/obs/src/histogram.rs:
crates/obs/src/json.rs:
crates/obs/src/recorder.rs:
crates/obs/src/sink.rs:
crates/obs/src/span.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
