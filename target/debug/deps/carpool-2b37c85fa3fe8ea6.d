/root/repo/target/debug/deps/carpool-2b37c85fa3fe8ea6.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/obs_session.rs crates/cli/src/report.rs

/root/repo/target/debug/deps/carpool-2b37c85fa3fe8ea6: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/obs_session.rs crates/cli/src/report.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/obs_session.rs:
crates/cli/src/report.rs:
