/root/repo/target/debug/deps/carpool_mac-a4cc457587b72a25.d: crates/mac/src/lib.rs crates/mac/src/error_model.rs crates/mac/src/metrics.rs crates/mac/src/protocol.rs crates/mac/src/rate.rs crates/mac/src/sim.rs

/root/repo/target/debug/deps/carpool_mac-a4cc457587b72a25: crates/mac/src/lib.rs crates/mac/src/error_model.rs crates/mac/src/metrics.rs crates/mac/src/protocol.rs crates/mac/src/rate.rs crates/mac/src/sim.rs

crates/mac/src/lib.rs:
crates/mac/src/error_model.rs:
crates/mac/src/metrics.rs:
crates/mac/src/protocol.rs:
crates/mac/src/rate.rs:
crates/mac/src/sim.rs:
