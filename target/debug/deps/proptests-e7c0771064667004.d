/root/repo/target/debug/deps/proptests-e7c0771064667004.d: crates/phy/tests/proptests.rs

/root/repo/target/debug/deps/proptests-e7c0771064667004: crates/phy/tests/proptests.rs

crates/phy/tests/proptests.rs:
