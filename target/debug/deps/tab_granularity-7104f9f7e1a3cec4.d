/root/repo/target/debug/deps/tab_granularity-7104f9f7e1a3cec4.d: crates/bench/benches/tab_granularity.rs Cargo.toml

/root/repo/target/debug/deps/libtab_granularity-7104f9f7e1a3cec4.rmeta: crates/bench/benches/tab_granularity.rs Cargo.toml

crates/bench/benches/tab_granularity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
