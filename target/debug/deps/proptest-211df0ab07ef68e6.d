/root/repo/target/debug/deps/proptest-211df0ab07ef68e6.d: .offline-stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-211df0ab07ef68e6.rmeta: .offline-stubs/proptest/src/lib.rs

.offline-stubs/proptest/src/lib.rs:
