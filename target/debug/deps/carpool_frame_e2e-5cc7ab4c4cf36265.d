/root/repo/target/debug/deps/carpool_frame_e2e-5cc7ab4c4cf36265.d: tests/carpool_frame_e2e.rs Cargo.toml

/root/repo/target/debug/deps/libcarpool_frame_e2e-5cc7ab4c4cf36265.rmeta: tests/carpool_frame_e2e.rs Cargo.toml

tests/carpool_frame_e2e.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
