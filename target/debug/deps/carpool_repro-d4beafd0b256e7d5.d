/root/repo/target/debug/deps/carpool_repro-d4beafd0b256e7d5.d: src/lib.rs

/root/repo/target/debug/deps/libcarpool_repro-d4beafd0b256e7d5.rlib: src/lib.rs

/root/repo/target/debug/deps/libcarpool_repro-d4beafd0b256e7d5.rmeta: src/lib.rs

src/lib.rs:
