/root/repo/target/debug/deps/carpool-65fbb42a79ec9fd0.d: crates/cli/src/main.rs crates/cli/src/args.rs

/root/repo/target/debug/deps/carpool-65fbb42a79ec9fd0: crates/cli/src/main.rs crates/cli/src/args.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
