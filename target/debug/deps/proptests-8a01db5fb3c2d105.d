/root/repo/target/debug/deps/proptests-8a01db5fb3c2d105.d: crates/frame/tests/proptests.rs

/root/repo/target/debug/deps/proptests-8a01db5fb3c2d105: crates/frame/tests/proptests.rs

crates/frame/tests/proptests.rs:
