/root/repo/target/debug/deps/carpool_bloom-d324b30486d09ae7.d: crates/bloom/src/lib.rs crates/bloom/src/analysis.rs

/root/repo/target/debug/deps/carpool_bloom-d324b30486d09ae7: crates/bloom/src/lib.rs crates/bloom/src/analysis.rs

crates/bloom/src/lib.rs:
crates/bloom/src/analysis.rs:
