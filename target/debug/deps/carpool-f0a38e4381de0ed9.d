/root/repo/target/debug/deps/carpool-f0a38e4381de0ed9.d: crates/cli/src/main.rs crates/cli/src/args.rs

/root/repo/target/debug/deps/carpool-f0a38e4381de0ed9: crates/cli/src/main.rs crates/cli/src/args.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
