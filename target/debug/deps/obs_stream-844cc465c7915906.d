/root/repo/target/debug/deps/obs_stream-844cc465c7915906.d: crates/mac/tests/obs_stream.rs

/root/repo/target/debug/deps/obs_stream-844cc465c7915906: crates/mac/tests/obs_stream.rs

crates/mac/tests/obs_stream.rs:
