/root/repo/target/debug/deps/noop_alloc-27b210c835befc07.d: crates/obs/tests/noop_alloc.rs Cargo.toml

/root/repo/target/debug/deps/libnoop_alloc-27b210c835befc07.rmeta: crates/obs/tests/noop_alloc.rs Cargo.toml

crates/obs/tests/noop_alloc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
