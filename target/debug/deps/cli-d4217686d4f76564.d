/root/repo/target/debug/deps/cli-d4217686d4f76564.d: crates/cli/tests/cli.rs

/root/repo/target/debug/deps/cli-d4217686d4f76564: crates/cli/tests/cli.rs

crates/cli/tests/cli.rs:

# env-dep:CARGO_BIN_EXE_carpool=/root/repo/target/debug/carpool
