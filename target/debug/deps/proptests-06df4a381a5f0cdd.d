/root/repo/target/debug/deps/proptests-06df4a381a5f0cdd.d: crates/phy/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-06df4a381a5f0cdd.rmeta: crates/phy/tests/proptests.rs Cargo.toml

crates/phy/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
