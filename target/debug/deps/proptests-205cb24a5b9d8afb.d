/root/repo/target/debug/deps/proptests-205cb24a5b9d8afb.d: crates/traffic/tests/proptests.rs

/root/repo/target/debug/deps/proptests-205cb24a5b9d8afb: crates/traffic/tests/proptests.rs

crates/traffic/tests/proptests.rs:
