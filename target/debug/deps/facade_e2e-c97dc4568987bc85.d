/root/repo/target/debug/deps/facade_e2e-c97dc4568987bc85.d: tests/facade_e2e.rs

/root/repo/target/debug/deps/facade_e2e-c97dc4568987bc85: tests/facade_e2e.rs

tests/facade_e2e.rs:
