/root/repo/target/debug/deps/rand-a2956c6d413fe77d.d: .offline-stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-a2956c6d413fe77d.rlib: .offline-stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-a2956c6d413fe77d.rmeta: .offline-stubs/rand/src/lib.rs

.offline-stubs/rand/src/lib.rs:
