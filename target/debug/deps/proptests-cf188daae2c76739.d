/root/repo/target/debug/deps/proptests-cf188daae2c76739.d: crates/bloom/tests/proptests.rs

/root/repo/target/debug/deps/proptests-cf188daae2c76739: crates/bloom/tests/proptests.rs

crates/bloom/tests/proptests.rs:
