/root/repo/target/debug/deps/tab_energy-ee7e349fd2a48cde.d: crates/bench/benches/tab_energy.rs Cargo.toml

/root/repo/target/debug/deps/libtab_energy-ee7e349fd2a48cde.rmeta: crates/bench/benches/tab_energy.rs Cargo.toml

crates/bench/benches/tab_energy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
