/root/repo/target/debug/deps/sync_e2e-5332e2c4349ae6d4.d: tests/sync_e2e.rs Cargo.toml

/root/repo/target/debug/deps/libsync_e2e-5332e2c4349ae6d4.rmeta: tests/sync_e2e.rs Cargo.toml

tests/sync_e2e.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
