/root/repo/target/debug/deps/proptests-9de4c142590e4807.d: crates/frame/tests/proptests.rs

/root/repo/target/debug/deps/proptests-9de4c142590e4807: crates/frame/tests/proptests.rs

crates/frame/tests/proptests.rs:
