/root/repo/target/debug/deps/proptests-b82a2507165e1cb0.d: crates/mac/tests/proptests.rs

/root/repo/target/debug/deps/proptests-b82a2507165e1cb0: crates/mac/tests/proptests.rs

crates/mac/tests/proptests.rs:
