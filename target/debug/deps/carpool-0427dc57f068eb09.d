/root/repo/target/debug/deps/carpool-0427dc57f068eb09.d: crates/carpool/src/lib.rs crates/carpool/src/calibrate.rs crates/carpool/src/energy.rs crates/carpool/src/link.rs crates/carpool/src/scenario.rs

/root/repo/target/debug/deps/libcarpool-0427dc57f068eb09.rlib: crates/carpool/src/lib.rs crates/carpool/src/calibrate.rs crates/carpool/src/energy.rs crates/carpool/src/link.rs crates/carpool/src/scenario.rs

/root/repo/target/debug/deps/libcarpool-0427dc57f068eb09.rmeta: crates/carpool/src/lib.rs crates/carpool/src/calibrate.rs crates/carpool/src/energy.rs crates/carpool/src/link.rs crates/carpool/src/scenario.rs

crates/carpool/src/lib.rs:
crates/carpool/src/calibrate.rs:
crates/carpool/src/energy.rs:
crates/carpool/src/link.rs:
crates/carpool/src/scenario.rs:
