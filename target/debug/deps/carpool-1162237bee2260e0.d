/root/repo/target/debug/deps/carpool-1162237bee2260e0.d: crates/carpool/src/lib.rs crates/carpool/src/calibrate.rs crates/carpool/src/energy.rs crates/carpool/src/link.rs crates/carpool/src/scenario.rs Cargo.toml

/root/repo/target/debug/deps/libcarpool-1162237bee2260e0.rmeta: crates/carpool/src/lib.rs crates/carpool/src/calibrate.rs crates/carpool/src/energy.rs crates/carpool/src/link.rs crates/carpool/src/scenario.rs Cargo.toml

crates/carpool/src/lib.rs:
crates/carpool/src/calibrate.rs:
crates/carpool/src/energy.rs:
crates/carpool/src/link.rs:
crates/carpool/src/scenario.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
