/root/repo/target/debug/deps/fig11_side_channel_impact-6073ed0bce7984a2.d: crates/bench/benches/fig11_side_channel_impact.rs Cargo.toml

/root/repo/target/debug/deps/libfig11_side_channel_impact-6073ed0bce7984a2.rmeta: crates/bench/benches/fig11_side_channel_impact.rs Cargo.toml

crates/bench/benches/fig11_side_channel_impact.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
