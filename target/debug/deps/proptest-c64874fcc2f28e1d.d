/root/repo/target/debug/deps/proptest-c64874fcc2f28e1d.d: .offline-stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-c64874fcc2f28e1d.rlib: .offline-stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-c64874fcc2f28e1d.rmeta: .offline-stubs/proptest/src/lib.rs

.offline-stubs/proptest/src/lib.rs:
