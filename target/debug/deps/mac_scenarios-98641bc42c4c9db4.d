/root/repo/target/debug/deps/mac_scenarios-98641bc42c4c9db4.d: tests/mac_scenarios.rs

/root/repo/target/debug/deps/mac_scenarios-98641bc42c4c9db4: tests/mac_scenarios.rs

tests/mac_scenarios.rs:
