/root/repo/target/debug/deps/proptests-cc199e1774f85bf4.d: crates/mac/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-cc199e1774f85bf4.rmeta: crates/mac/tests/proptests.rs Cargo.toml

crates/mac/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
