/root/repo/target/debug/deps/criterion-7a67c629378a3b7e.d: .offline-stubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-7a67c629378a3b7e.rlib: .offline-stubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-7a67c629378a3b7e.rmeta: .offline-stubs/criterion/src/lib.rs

.offline-stubs/criterion/src/lib.rs:
