/root/repo/target/debug/deps/carpool_frame-d413fa30c1874d76.d: crates/frame/src/lib.rs crates/frame/src/addr.rs crates/frame/src/aggregation.rs crates/frame/src/airtime.rs crates/frame/src/carpool.rs crates/frame/src/coexist.rs crates/frame/src/mac_frame.rs crates/frame/src/mimo.rs crates/frame/src/nav.rs crates/frame/src/sig.rs Cargo.toml

/root/repo/target/debug/deps/libcarpool_frame-d413fa30c1874d76.rmeta: crates/frame/src/lib.rs crates/frame/src/addr.rs crates/frame/src/aggregation.rs crates/frame/src/airtime.rs crates/frame/src/carpool.rs crates/frame/src/coexist.rs crates/frame/src/mac_frame.rs crates/frame/src/mimo.rs crates/frame/src/nav.rs crates/frame/src/sig.rs Cargo.toml

crates/frame/src/lib.rs:
crates/frame/src/addr.rs:
crates/frame/src/aggregation.rs:
crates/frame/src/airtime.rs:
crates/frame/src/carpool.rs:
crates/frame/src/coexist.rs:
crates/frame/src/mac_frame.rs:
crates/frame/src/mimo.rs:
crates/frame/src/nav.rs:
crates/frame/src/sig.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
