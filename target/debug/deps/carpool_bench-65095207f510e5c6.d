/root/repo/target/debug/deps/carpool_bench-65095207f510e5c6.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libcarpool_bench-65095207f510e5c6.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libcarpool_bench-65095207f510e5c6.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
