/root/repo/target/debug/deps/tab_bloom_fp-b08f4a8622f70295.d: crates/bench/benches/tab_bloom_fp.rs Cargo.toml

/root/repo/target/debug/deps/libtab_bloom_fp-b08f4a8622f70295.rmeta: crates/bench/benches/tab_bloom_fp.rs Cargo.toml

crates/bench/benches/tab_bloom_fp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
