/root/repo/target/debug/deps/fig12_side_channel_ber-65ac61345d298bd5.d: crates/bench/benches/fig12_side_channel_ber.rs Cargo.toml

/root/repo/target/debug/deps/libfig12_side_channel_ber-65ac61345d298bd5.rmeta: crates/bench/benches/fig12_side_channel_ber.rs Cargo.toml

crates/bench/benches/fig12_side_channel_ber.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
