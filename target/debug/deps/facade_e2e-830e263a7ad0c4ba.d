/root/repo/target/debug/deps/facade_e2e-830e263a7ad0c4ba.d: tests/facade_e2e.rs Cargo.toml

/root/repo/target/debug/deps/libfacade_e2e-830e263a7ad0c4ba.rmeta: tests/facade_e2e.rs Cargo.toml

tests/facade_e2e.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
