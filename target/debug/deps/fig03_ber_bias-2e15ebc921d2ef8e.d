/root/repo/target/debug/deps/fig03_ber_bias-2e15ebc921d2ef8e.d: crates/bench/benches/fig03_ber_bias.rs Cargo.toml

/root/repo/target/debug/deps/libfig03_ber_bias-2e15ebc921d2ef8e.rmeta: crates/bench/benches/fig03_ber_bias.rs Cargo.toml

crates/bench/benches/fig03_ber_bias.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
