/root/repo/target/debug/deps/carpool_bench-8706d56077f95b3e.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/carpool_bench-8706d56077f95b3e: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
