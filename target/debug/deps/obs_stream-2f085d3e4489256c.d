/root/repo/target/debug/deps/obs_stream-2f085d3e4489256c.d: crates/mac/tests/obs_stream.rs

/root/repo/target/debug/deps/obs_stream-2f085d3e4489256c: crates/mac/tests/obs_stream.rs

crates/mac/tests/obs_stream.rs:
