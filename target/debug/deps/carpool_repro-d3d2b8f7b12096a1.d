/root/repo/target/debug/deps/carpool_repro-d3d2b8f7b12096a1.d: src/lib.rs

/root/repo/target/debug/deps/libcarpool_repro-d3d2b8f7b12096a1.rlib: src/lib.rs

/root/repo/target/debug/deps/libcarpool_repro-d3d2b8f7b12096a1.rmeta: src/lib.rs

src/lib.rs:
