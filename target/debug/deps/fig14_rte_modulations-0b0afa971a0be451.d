/root/repo/target/debug/deps/fig14_rte_modulations-0b0afa971a0be451.d: crates/bench/benches/fig14_rte_modulations.rs Cargo.toml

/root/repo/target/debug/deps/libfig14_rte_modulations-0b0afa971a0be451.rmeta: crates/bench/benches/fig14_rte_modulations.rs Cargo.toml

crates/bench/benches/fig14_rte_modulations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
