/root/repo/target/debug/deps/fig13_rte_bias-579a90c76fd4a297.d: crates/bench/benches/fig13_rte_bias.rs Cargo.toml

/root/repo/target/debug/deps/libfig13_rte_bias-579a90c76fd4a297.rmeta: crates/bench/benches/fig13_rte_bias.rs Cargo.toml

crates/bench/benches/fig13_rte_bias.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
