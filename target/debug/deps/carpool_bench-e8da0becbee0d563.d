/root/repo/target/debug/deps/carpool_bench-e8da0becbee0d563.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcarpool_bench-e8da0becbee0d563.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
