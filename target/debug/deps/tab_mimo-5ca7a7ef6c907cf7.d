/root/repo/target/debug/deps/tab_mimo-5ca7a7ef6c907cf7.d: crates/bench/benches/tab_mimo.rs Cargo.toml

/root/repo/target/debug/deps/libtab_mimo-5ca7a7ef6c907cf7.rmeta: crates/bench/benches/tab_mimo.rs Cargo.toml

crates/bench/benches/tab_mimo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
