/root/repo/target/debug/deps/carpool_frame-a5f081bb1ab0c3b0.d: crates/frame/src/lib.rs crates/frame/src/addr.rs crates/frame/src/aggregation.rs crates/frame/src/airtime.rs crates/frame/src/carpool.rs crates/frame/src/coexist.rs crates/frame/src/mac_frame.rs crates/frame/src/mimo.rs crates/frame/src/nav.rs crates/frame/src/sig.rs

/root/repo/target/debug/deps/carpool_frame-a5f081bb1ab0c3b0: crates/frame/src/lib.rs crates/frame/src/addr.rs crates/frame/src/aggregation.rs crates/frame/src/airtime.rs crates/frame/src/carpool.rs crates/frame/src/coexist.rs crates/frame/src/mac_frame.rs crates/frame/src/mimo.rs crates/frame/src/nav.rs crates/frame/src/sig.rs

crates/frame/src/lib.rs:
crates/frame/src/addr.rs:
crates/frame/src/aggregation.rs:
crates/frame/src/airtime.rs:
crates/frame/src/carpool.rs:
crates/frame/src/coexist.rs:
crates/frame/src/mac_frame.rs:
crates/frame/src/mimo.rs:
crates/frame/src/nav.rs:
crates/frame/src/sig.rs:
