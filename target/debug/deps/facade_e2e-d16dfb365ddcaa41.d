/root/repo/target/debug/deps/facade_e2e-d16dfb365ddcaa41.d: tests/facade_e2e.rs

/root/repo/target/debug/deps/facade_e2e-d16dfb365ddcaa41: tests/facade_e2e.rs

tests/facade_e2e.rs:
