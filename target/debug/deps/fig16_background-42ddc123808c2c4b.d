/root/repo/target/debug/deps/fig16_background-42ddc123808c2c4b.d: crates/bench/benches/fig16_background.rs Cargo.toml

/root/repo/target/debug/deps/libfig16_background-42ddc123808c2c4b.rmeta: crates/bench/benches/fig16_background.rs Cargo.toml

crates/bench/benches/fig16_background.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
