/root/repo/target/debug/deps/carpool_bloom-1cd7c70084729db9.d: crates/bloom/src/lib.rs crates/bloom/src/analysis.rs Cargo.toml

/root/repo/target/debug/deps/libcarpool_bloom-1cd7c70084729db9.rmeta: crates/bloom/src/lib.rs crates/bloom/src/analysis.rs Cargo.toml

crates/bloom/src/lib.rs:
crates/bloom/src/analysis.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
