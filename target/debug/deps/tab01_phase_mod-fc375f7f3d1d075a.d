/root/repo/target/debug/deps/tab01_phase_mod-fc375f7f3d1d075a.d: crates/bench/benches/tab01_phase_mod.rs Cargo.toml

/root/repo/target/debug/deps/libtab01_phase_mod-fc375f7f3d1d075a.rmeta: crates/bench/benches/tab01_phase_mod.rs Cargo.toml

crates/bench/benches/tab01_phase_mod.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
