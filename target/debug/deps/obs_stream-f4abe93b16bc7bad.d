/root/repo/target/debug/deps/obs_stream-f4abe93b16bc7bad.d: crates/mac/tests/obs_stream.rs Cargo.toml

/root/repo/target/debug/deps/libobs_stream-f4abe93b16bc7bad.rmeta: crates/mac/tests/obs_stream.rs Cargo.toml

crates/mac/tests/obs_stream.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
