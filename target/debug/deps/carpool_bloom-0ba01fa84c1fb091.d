/root/repo/target/debug/deps/carpool_bloom-0ba01fa84c1fb091.d: crates/bloom/src/lib.rs crates/bloom/src/analysis.rs Cargo.toml

/root/repo/target/debug/deps/libcarpool_bloom-0ba01fa84c1fb091.rmeta: crates/bloom/src/lib.rs crates/bloom/src/analysis.rs Cargo.toml

crates/bloom/src/lib.rs:
crates/bloom/src/analysis.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
