/root/repo/target/debug/deps/ablation_soft_viterbi-7bc33aae4c096b42.d: crates/bench/benches/ablation_soft_viterbi.rs Cargo.toml

/root/repo/target/debug/deps/libablation_soft_viterbi-7bc33aae4c096b42.rmeta: crates/bench/benches/ablation_soft_viterbi.rs Cargo.toml

crates/bench/benches/ablation_soft_viterbi.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
