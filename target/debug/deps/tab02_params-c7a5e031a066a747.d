/root/repo/target/debug/deps/tab02_params-c7a5e031a066a747.d: crates/bench/benches/tab02_params.rs Cargo.toml

/root/repo/target/debug/deps/libtab02_params-c7a5e031a066a747.rmeta: crates/bench/benches/tab02_params.rs Cargo.toml

crates/bench/benches/tab02_params.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
