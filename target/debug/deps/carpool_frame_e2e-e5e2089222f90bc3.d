/root/repo/target/debug/deps/carpool_frame_e2e-e5e2089222f90bc3.d: tests/carpool_frame_e2e.rs

/root/repo/target/debug/deps/carpool_frame_e2e-e5e2089222f90bc3: tests/carpool_frame_e2e.rs

tests/carpool_frame_e2e.rs:
