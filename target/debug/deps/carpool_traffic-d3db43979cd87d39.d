/root/repo/target/debug/deps/carpool_traffic-d3db43979cd87d39.d: crates/traffic/src/lib.rs crates/traffic/src/activity.rs crates/traffic/src/background.rs crates/traffic/src/framesize.rs crates/traffic/src/stats.rs crates/traffic/src/trace.rs crates/traffic/src/voip.rs

/root/repo/target/debug/deps/libcarpool_traffic-d3db43979cd87d39.rlib: crates/traffic/src/lib.rs crates/traffic/src/activity.rs crates/traffic/src/background.rs crates/traffic/src/framesize.rs crates/traffic/src/stats.rs crates/traffic/src/trace.rs crates/traffic/src/voip.rs

/root/repo/target/debug/deps/libcarpool_traffic-d3db43979cd87d39.rmeta: crates/traffic/src/lib.rs crates/traffic/src/activity.rs crates/traffic/src/background.rs crates/traffic/src/framesize.rs crates/traffic/src/stats.rs crates/traffic/src/trace.rs crates/traffic/src/voip.rs

crates/traffic/src/lib.rs:
crates/traffic/src/activity.rs:
crates/traffic/src/background.rs:
crates/traffic/src/framesize.rs:
crates/traffic/src/stats.rs:
crates/traffic/src/trace.rs:
crates/traffic/src/voip.rs:
