/root/repo/target/debug/deps/carpool_traffic-972ad6a596496070.d: crates/traffic/src/lib.rs crates/traffic/src/activity.rs crates/traffic/src/background.rs crates/traffic/src/framesize.rs crates/traffic/src/stats.rs crates/traffic/src/trace.rs crates/traffic/src/voip.rs

/root/repo/target/debug/deps/libcarpool_traffic-972ad6a596496070.rlib: crates/traffic/src/lib.rs crates/traffic/src/activity.rs crates/traffic/src/background.rs crates/traffic/src/framesize.rs crates/traffic/src/stats.rs crates/traffic/src/trace.rs crates/traffic/src/voip.rs

/root/repo/target/debug/deps/libcarpool_traffic-972ad6a596496070.rmeta: crates/traffic/src/lib.rs crates/traffic/src/activity.rs crates/traffic/src/background.rs crates/traffic/src/framesize.rs crates/traffic/src/stats.rs crates/traffic/src/trace.rs crates/traffic/src/voip.rs

crates/traffic/src/lib.rs:
crates/traffic/src/activity.rs:
crates/traffic/src/background.rs:
crates/traffic/src/framesize.rs:
crates/traffic/src/stats.rs:
crates/traffic/src/trace.rs:
crates/traffic/src/voip.rs:
