/root/repo/target/debug/deps/sync_e2e-ce0b5fd628149d22.d: tests/sync_e2e.rs

/root/repo/target/debug/deps/sync_e2e-ce0b5fd628149d22: tests/sync_e2e.rs

tests/sync_e2e.rs:
