/root/repo/target/debug/deps/ablation_rts_cts-487342755c345e77.d: crates/bench/benches/ablation_rts_cts.rs Cargo.toml

/root/repo/target/debug/deps/libablation_rts_cts-487342755c345e77.rmeta: crates/bench/benches/ablation_rts_cts.rs Cargo.toml

crates/bench/benches/ablation_rts_cts.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
