/root/repo/target/debug/deps/mac_scenarios-d81e8a5994eb2f61.d: tests/mac_scenarios.rs

/root/repo/target/debug/deps/mac_scenarios-d81e8a5994eb2f61: tests/mac_scenarios.rs

tests/mac_scenarios.rs:
