/root/repo/target/debug/deps/carpool_repro-f558048ff27ac889.d: src/lib.rs

/root/repo/target/debug/deps/carpool_repro-f558048ff27ac889: src/lib.rs

src/lib.rs:
