/root/repo/target/debug/deps/carpool_phy-50891aceda806a84.d: crates/phy/src/lib.rs crates/phy/src/bits.rs crates/phy/src/convolutional.rs crates/phy/src/crc.rs crates/phy/src/equalizer.rs crates/phy/src/fft.rs crates/phy/src/interleaver.rs crates/phy/src/math.rs crates/phy/src/mcs.rs crates/phy/src/mimo.rs crates/phy/src/modulation.rs crates/phy/src/ofdm.rs crates/phy/src/preamble.rs crates/phy/src/rte.rs crates/phy/src/rx.rs crates/phy/src/scrambler.rs crates/phy/src/sidechannel.rs crates/phy/src/sync.rs crates/phy/src/tx.rs Cargo.toml

/root/repo/target/debug/deps/libcarpool_phy-50891aceda806a84.rmeta: crates/phy/src/lib.rs crates/phy/src/bits.rs crates/phy/src/convolutional.rs crates/phy/src/crc.rs crates/phy/src/equalizer.rs crates/phy/src/fft.rs crates/phy/src/interleaver.rs crates/phy/src/math.rs crates/phy/src/mcs.rs crates/phy/src/mimo.rs crates/phy/src/modulation.rs crates/phy/src/ofdm.rs crates/phy/src/preamble.rs crates/phy/src/rte.rs crates/phy/src/rx.rs crates/phy/src/scrambler.rs crates/phy/src/sidechannel.rs crates/phy/src/sync.rs crates/phy/src/tx.rs Cargo.toml

crates/phy/src/lib.rs:
crates/phy/src/bits.rs:
crates/phy/src/convolutional.rs:
crates/phy/src/crc.rs:
crates/phy/src/equalizer.rs:
crates/phy/src/fft.rs:
crates/phy/src/interleaver.rs:
crates/phy/src/math.rs:
crates/phy/src/mcs.rs:
crates/phy/src/mimo.rs:
crates/phy/src/modulation.rs:
crates/phy/src/ofdm.rs:
crates/phy/src/preamble.rs:
crates/phy/src/rte.rs:
crates/phy/src/rx.rs:
crates/phy/src/scrambler.rs:
crates/phy/src/sidechannel.rs:
crates/phy/src/sync.rs:
crates/phy/src/tx.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
