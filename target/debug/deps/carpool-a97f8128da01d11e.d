/root/repo/target/debug/deps/carpool-a97f8128da01d11e.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/obs_session.rs crates/cli/src/report.rs Cargo.toml

/root/repo/target/debug/deps/libcarpool-a97f8128da01d11e.rmeta: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/obs_session.rs crates/cli/src/report.rs Cargo.toml

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/obs_session.rs:
crates/cli/src/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
