/root/repo/target/debug/deps/fig15_voip-6c3b437b93d648fe.d: crates/bench/benches/fig15_voip.rs Cargo.toml

/root/repo/target/debug/deps/libfig15_voip-6c3b437b93d648fe.rmeta: crates/bench/benches/fig15_voip.rs Cargo.toml

crates/bench/benches/fig15_voip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
