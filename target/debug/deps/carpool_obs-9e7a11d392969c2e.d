/root/repo/target/debug/deps/carpool_obs-9e7a11d392969c2e.d: crates/obs/src/lib.rs crates/obs/src/event.rs crates/obs/src/histogram.rs crates/obs/src/json.rs crates/obs/src/recorder.rs crates/obs/src/sink.rs crates/obs/src/span.rs

/root/repo/target/debug/deps/carpool_obs-9e7a11d392969c2e: crates/obs/src/lib.rs crates/obs/src/event.rs crates/obs/src/histogram.rs crates/obs/src/json.rs crates/obs/src/recorder.rs crates/obs/src/sink.rs crates/obs/src/span.rs

crates/obs/src/lib.rs:
crates/obs/src/event.rs:
crates/obs/src/histogram.rs:
crates/obs/src/json.rs:
crates/obs/src/recorder.rs:
crates/obs/src/sink.rs:
crates/obs/src/span.rs:
