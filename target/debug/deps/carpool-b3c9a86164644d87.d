/root/repo/target/debug/deps/carpool-b3c9a86164644d87.d: crates/carpool/src/lib.rs crates/carpool/src/calibrate.rs crates/carpool/src/energy.rs crates/carpool/src/link.rs crates/carpool/src/scenario.rs

/root/repo/target/debug/deps/carpool-b3c9a86164644d87: crates/carpool/src/lib.rs crates/carpool/src/calibrate.rs crates/carpool/src/energy.rs crates/carpool/src/link.rs crates/carpool/src/scenario.rs

crates/carpool/src/lib.rs:
crates/carpool/src/calibrate.rs:
crates/carpool/src/energy.rs:
crates/carpool/src/link.rs:
crates/carpool/src/scenario.rs:
