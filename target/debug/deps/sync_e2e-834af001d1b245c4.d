/root/repo/target/debug/deps/sync_e2e-834af001d1b245c4.d: tests/sync_e2e.rs

/root/repo/target/debug/deps/sync_e2e-834af001d1b245c4: tests/sync_e2e.rs

tests/sync_e2e.rs:
