/root/repo/target/debug/deps/carpool_mac-76623e9f240ad59a.d: crates/mac/src/lib.rs crates/mac/src/error_model.rs crates/mac/src/metrics.rs crates/mac/src/protocol.rs crates/mac/src/rate.rs crates/mac/src/sim.rs Cargo.toml

/root/repo/target/debug/deps/libcarpool_mac-76623e9f240ad59a.rmeta: crates/mac/src/lib.rs crates/mac/src/error_model.rs crates/mac/src/metrics.rs crates/mac/src/protocol.rs crates/mac/src/rate.rs crates/mac/src/sim.rs Cargo.toml

crates/mac/src/lib.rs:
crates/mac/src/error_model.rs:
crates/mac/src/metrics.rs:
crates/mac/src/protocol.rs:
crates/mac/src/rate.rs:
crates/mac/src/sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
