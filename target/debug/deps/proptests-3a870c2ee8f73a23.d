/root/repo/target/debug/deps/proptests-3a870c2ee8f73a23.d: crates/bloom/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-3a870c2ee8f73a23.rmeta: crates/bloom/tests/proptests.rs Cargo.toml

crates/bloom/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
