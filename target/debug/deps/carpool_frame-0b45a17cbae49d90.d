/root/repo/target/debug/deps/carpool_frame-0b45a17cbae49d90.d: crates/frame/src/lib.rs crates/frame/src/addr.rs crates/frame/src/aggregation.rs crates/frame/src/airtime.rs crates/frame/src/carpool.rs crates/frame/src/coexist.rs crates/frame/src/mac_frame.rs crates/frame/src/mimo.rs crates/frame/src/nav.rs crates/frame/src/sig.rs

/root/repo/target/debug/deps/libcarpool_frame-0b45a17cbae49d90.rlib: crates/frame/src/lib.rs crates/frame/src/addr.rs crates/frame/src/aggregation.rs crates/frame/src/airtime.rs crates/frame/src/carpool.rs crates/frame/src/coexist.rs crates/frame/src/mac_frame.rs crates/frame/src/mimo.rs crates/frame/src/nav.rs crates/frame/src/sig.rs

/root/repo/target/debug/deps/libcarpool_frame-0b45a17cbae49d90.rmeta: crates/frame/src/lib.rs crates/frame/src/addr.rs crates/frame/src/aggregation.rs crates/frame/src/airtime.rs crates/frame/src/carpool.rs crates/frame/src/coexist.rs crates/frame/src/mac_frame.rs crates/frame/src/mimo.rs crates/frame/src/nav.rs crates/frame/src/sig.rs

crates/frame/src/lib.rs:
crates/frame/src/addr.rs:
crates/frame/src/aggregation.rs:
crates/frame/src/airtime.rs:
crates/frame/src/carpool.rs:
crates/frame/src/coexist.rs:
crates/frame/src/mac_frame.rs:
crates/frame/src/mimo.rs:
crates/frame/src/nav.rs:
crates/frame/src/sig.rs:
