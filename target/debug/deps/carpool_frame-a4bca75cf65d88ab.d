/root/repo/target/debug/deps/carpool_frame-a4bca75cf65d88ab.d: crates/frame/src/lib.rs crates/frame/src/addr.rs crates/frame/src/aggregation.rs crates/frame/src/airtime.rs crates/frame/src/carpool.rs crates/frame/src/coexist.rs crates/frame/src/mac_frame.rs crates/frame/src/mimo.rs crates/frame/src/nav.rs crates/frame/src/sig.rs

/root/repo/target/debug/deps/libcarpool_frame-a4bca75cf65d88ab.rlib: crates/frame/src/lib.rs crates/frame/src/addr.rs crates/frame/src/aggregation.rs crates/frame/src/airtime.rs crates/frame/src/carpool.rs crates/frame/src/coexist.rs crates/frame/src/mac_frame.rs crates/frame/src/mimo.rs crates/frame/src/nav.rs crates/frame/src/sig.rs

/root/repo/target/debug/deps/libcarpool_frame-a4bca75cf65d88ab.rmeta: crates/frame/src/lib.rs crates/frame/src/addr.rs crates/frame/src/aggregation.rs crates/frame/src/airtime.rs crates/frame/src/carpool.rs crates/frame/src/coexist.rs crates/frame/src/mac_frame.rs crates/frame/src/mimo.rs crates/frame/src/nav.rs crates/frame/src/sig.rs

crates/frame/src/lib.rs:
crates/frame/src/addr.rs:
crates/frame/src/aggregation.rs:
crates/frame/src/airtime.rs:
crates/frame/src/carpool.rs:
crates/frame/src/coexist.rs:
crates/frame/src/mac_frame.rs:
crates/frame/src/mimo.rs:
crates/frame/src/nav.rs:
crates/frame/src/sig.rs:
