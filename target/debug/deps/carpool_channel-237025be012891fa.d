/root/repo/target/debug/deps/carpool_channel-237025be012891fa.d: crates/channel/src/lib.rs crates/channel/src/cfo.rs crates/channel/src/fading.rs crates/channel/src/jakes.rs crates/channel/src/link.rs crates/channel/src/noise.rs Cargo.toml

/root/repo/target/debug/deps/libcarpool_channel-237025be012891fa.rmeta: crates/channel/src/lib.rs crates/channel/src/cfo.rs crates/channel/src/fading.rs crates/channel/src/jakes.rs crates/channel/src/link.rs crates/channel/src/noise.rs Cargo.toml

crates/channel/src/lib.rs:
crates/channel/src/cfo.rs:
crates/channel/src/fading.rs:
crates/channel/src/jakes.rs:
crates/channel/src/link.rs:
crates/channel/src/noise.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
