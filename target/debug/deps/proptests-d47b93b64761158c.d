/root/repo/target/debug/deps/proptests-d47b93b64761158c.d: crates/frame/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-d47b93b64761158c.rmeta: crates/frame/tests/proptests.rs Cargo.toml

crates/frame/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
