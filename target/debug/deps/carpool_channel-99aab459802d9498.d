/root/repo/target/debug/deps/carpool_channel-99aab459802d9498.d: crates/channel/src/lib.rs crates/channel/src/cfo.rs crates/channel/src/fading.rs crates/channel/src/jakes.rs crates/channel/src/link.rs crates/channel/src/noise.rs

/root/repo/target/debug/deps/carpool_channel-99aab459802d9498: crates/channel/src/lib.rs crates/channel/src/cfo.rs crates/channel/src/fading.rs crates/channel/src/jakes.rs crates/channel/src/link.rs crates/channel/src/noise.rs

crates/channel/src/lib.rs:
crates/channel/src/cfo.rs:
crates/channel/src/fading.rs:
crates/channel/src/jakes.rs:
crates/channel/src/link.rs:
crates/channel/src/noise.rs:
