/root/repo/target/debug/deps/ablation_ahdr-b71a68aa4aaeaaa1.d: crates/bench/benches/ablation_ahdr.rs Cargo.toml

/root/repo/target/debug/deps/libablation_ahdr-b71a68aa4aaeaaa1.rmeta: crates/bench/benches/ablation_ahdr.rs Cargo.toml

crates/bench/benches/ablation_ahdr.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
