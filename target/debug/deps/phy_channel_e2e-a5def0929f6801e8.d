/root/repo/target/debug/deps/phy_channel_e2e-a5def0929f6801e8.d: tests/phy_channel_e2e.rs

/root/repo/target/debug/deps/phy_channel_e2e-a5def0929f6801e8: tests/phy_channel_e2e.rs

tests/phy_channel_e2e.rs:
