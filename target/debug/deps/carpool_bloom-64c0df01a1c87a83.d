/root/repo/target/debug/deps/carpool_bloom-64c0df01a1c87a83.d: crates/bloom/src/lib.rs crates/bloom/src/analysis.rs

/root/repo/target/debug/deps/libcarpool_bloom-64c0df01a1c87a83.rlib: crates/bloom/src/lib.rs crates/bloom/src/analysis.rs

/root/repo/target/debug/deps/libcarpool_bloom-64c0df01a1c87a83.rmeta: crates/bloom/src/lib.rs crates/bloom/src/analysis.rs

crates/bloom/src/lib.rs:
crates/bloom/src/analysis.rs:
