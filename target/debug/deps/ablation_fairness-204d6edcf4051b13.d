/root/repo/target/debug/deps/ablation_fairness-204d6edcf4051b13.d: crates/bench/benches/ablation_fairness.rs Cargo.toml

/root/repo/target/debug/deps/libablation_fairness-204d6edcf4051b13.rmeta: crates/bench/benches/ablation_fairness.rs Cargo.toml

crates/bench/benches/ablation_fairness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
