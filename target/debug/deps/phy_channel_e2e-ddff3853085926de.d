/root/repo/target/debug/deps/phy_channel_e2e-ddff3853085926de.d: tests/phy_channel_e2e.rs Cargo.toml

/root/repo/target/debug/deps/libphy_channel_e2e-ddff3853085926de.rmeta: tests/phy_channel_e2e.rs Cargo.toml

tests/phy_channel_e2e.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
