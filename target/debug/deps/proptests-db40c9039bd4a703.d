/root/repo/target/debug/deps/proptests-db40c9039bd4a703.d: crates/bloom/tests/proptests.rs

/root/repo/target/debug/deps/proptests-db40c9039bd4a703: crates/bloom/tests/proptests.rs

crates/bloom/tests/proptests.rs:
