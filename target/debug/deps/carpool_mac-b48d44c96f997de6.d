/root/repo/target/debug/deps/carpool_mac-b48d44c96f997de6.d: crates/mac/src/lib.rs crates/mac/src/error_model.rs crates/mac/src/metrics.rs crates/mac/src/protocol.rs crates/mac/src/rate.rs crates/mac/src/sim.rs

/root/repo/target/debug/deps/libcarpool_mac-b48d44c96f997de6.rlib: crates/mac/src/lib.rs crates/mac/src/error_model.rs crates/mac/src/metrics.rs crates/mac/src/protocol.rs crates/mac/src/rate.rs crates/mac/src/sim.rs

/root/repo/target/debug/deps/libcarpool_mac-b48d44c96f997de6.rmeta: crates/mac/src/lib.rs crates/mac/src/error_model.rs crates/mac/src/metrics.rs crates/mac/src/protocol.rs crates/mac/src/rate.rs crates/mac/src/sim.rs

crates/mac/src/lib.rs:
crates/mac/src/error_model.rs:
crates/mac/src/metrics.rs:
crates/mac/src/protocol.rs:
crates/mac/src/rate.rs:
crates/mac/src/sim.rs:
