/root/repo/target/debug/deps/proptests-5753012de66b0286.d: crates/frame/tests/proptests.rs

/root/repo/target/debug/deps/proptests-5753012de66b0286: crates/frame/tests/proptests.rs

crates/frame/tests/proptests.rs:
