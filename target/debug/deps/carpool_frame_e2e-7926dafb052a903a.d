/root/repo/target/debug/deps/carpool_frame_e2e-7926dafb052a903a.d: tests/carpool_frame_e2e.rs

/root/repo/target/debug/deps/carpool_frame_e2e-7926dafb052a903a: tests/carpool_frame_e2e.rs

tests/carpool_frame_e2e.rs:
