/root/repo/target/debug/deps/phy_channel_e2e-25235daa0a2da1e7.d: tests/phy_channel_e2e.rs

/root/repo/target/debug/deps/phy_channel_e2e-25235daa0a2da1e7: tests/phy_channel_e2e.rs

tests/phy_channel_e2e.rs:
