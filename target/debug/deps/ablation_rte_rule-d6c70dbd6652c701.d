/root/repo/target/debug/deps/ablation_rte_rule-d6c70dbd6652c701.d: crates/bench/benches/ablation_rte_rule.rs Cargo.toml

/root/repo/target/debug/deps/libablation_rte_rule-d6c70dbd6652c701.rmeta: crates/bench/benches/ablation_rte_rule.rs Cargo.toml

crates/bench/benches/ablation_rte_rule.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
