/root/repo/target/debug/deps/fig01_traffic-d915d27ffd7b1c72.d: crates/bench/benches/fig01_traffic.rs Cargo.toml

/root/repo/target/debug/deps/libfig01_traffic-d915d27ffd7b1c72.rmeta: crates/bench/benches/fig01_traffic.rs Cargo.toml

crates/bench/benches/fig01_traffic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
