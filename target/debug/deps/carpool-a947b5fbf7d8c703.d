/root/repo/target/debug/deps/carpool-a947b5fbf7d8c703.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/obs_session.rs crates/cli/src/report.rs

/root/repo/target/debug/deps/carpool-a947b5fbf7d8c703: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/obs_session.rs crates/cli/src/report.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/obs_session.rs:
crates/cli/src/report.rs:
