/root/repo/target/debug/deps/carpool_mac-e1fa960cd7c4255e.d: crates/mac/src/lib.rs crates/mac/src/error_model.rs crates/mac/src/metrics.rs crates/mac/src/protocol.rs crates/mac/src/rate.rs crates/mac/src/sim.rs

/root/repo/target/debug/deps/carpool_mac-e1fa960cd7c4255e: crates/mac/src/lib.rs crates/mac/src/error_model.rs crates/mac/src/metrics.rs crates/mac/src/protocol.rs crates/mac/src/rate.rs crates/mac/src/sim.rs

crates/mac/src/lib.rs:
crates/mac/src/error_model.rs:
crates/mac/src/metrics.rs:
crates/mac/src/protocol.rs:
crates/mac/src/rate.rs:
crates/mac/src/sim.rs:
