/root/repo/target/debug/deps/carpool_bench-e8469981931c8502.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libcarpool_bench-e8469981931c8502.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libcarpool_bench-e8469981931c8502.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
