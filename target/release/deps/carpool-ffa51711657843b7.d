/root/repo/target/release/deps/carpool-ffa51711657843b7.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/obs_session.rs crates/cli/src/report.rs

/root/repo/target/release/deps/carpool-ffa51711657843b7: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/obs_session.rs crates/cli/src/report.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/obs_session.rs:
crates/cli/src/report.rs:
