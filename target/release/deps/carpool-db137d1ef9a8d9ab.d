/root/repo/target/release/deps/carpool-db137d1ef9a8d9ab.d: crates/carpool/src/lib.rs crates/carpool/src/calibrate.rs crates/carpool/src/energy.rs crates/carpool/src/link.rs crates/carpool/src/scenario.rs

/root/repo/target/release/deps/libcarpool-db137d1ef9a8d9ab.rlib: crates/carpool/src/lib.rs crates/carpool/src/calibrate.rs crates/carpool/src/energy.rs crates/carpool/src/link.rs crates/carpool/src/scenario.rs

/root/repo/target/release/deps/libcarpool-db137d1ef9a8d9ab.rmeta: crates/carpool/src/lib.rs crates/carpool/src/calibrate.rs crates/carpool/src/energy.rs crates/carpool/src/link.rs crates/carpool/src/scenario.rs

crates/carpool/src/lib.rs:
crates/carpool/src/calibrate.rs:
crates/carpool/src/energy.rs:
crates/carpool/src/link.rs:
crates/carpool/src/scenario.rs:
