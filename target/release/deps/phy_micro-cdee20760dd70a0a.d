/root/repo/target/release/deps/phy_micro-cdee20760dd70a0a.d: crates/bench/benches/phy_micro.rs

/root/repo/target/release/deps/phy_micro-cdee20760dd70a0a: crates/bench/benches/phy_micro.rs

crates/bench/benches/phy_micro.rs:
