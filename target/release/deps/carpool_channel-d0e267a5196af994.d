/root/repo/target/release/deps/carpool_channel-d0e267a5196af994.d: crates/channel/src/lib.rs crates/channel/src/cfo.rs crates/channel/src/fading.rs crates/channel/src/jakes.rs crates/channel/src/link.rs crates/channel/src/noise.rs

/root/repo/target/release/deps/libcarpool_channel-d0e267a5196af994.rlib: crates/channel/src/lib.rs crates/channel/src/cfo.rs crates/channel/src/fading.rs crates/channel/src/jakes.rs crates/channel/src/link.rs crates/channel/src/noise.rs

/root/repo/target/release/deps/libcarpool_channel-d0e267a5196af994.rmeta: crates/channel/src/lib.rs crates/channel/src/cfo.rs crates/channel/src/fading.rs crates/channel/src/jakes.rs crates/channel/src/link.rs crates/channel/src/noise.rs

crates/channel/src/lib.rs:
crates/channel/src/cfo.rs:
crates/channel/src/fading.rs:
crates/channel/src/jakes.rs:
crates/channel/src/link.rs:
crates/channel/src/noise.rs:
