/root/repo/target/release/deps/rand-11ec92c0998c4958.d: .offline-stubs/rand/src/lib.rs

/root/repo/target/release/deps/librand-11ec92c0998c4958.rlib: .offline-stubs/rand/src/lib.rs

/root/repo/target/release/deps/librand-11ec92c0998c4958.rmeta: .offline-stubs/rand/src/lib.rs

.offline-stubs/rand/src/lib.rs:
