/root/repo/target/release/deps/carpool_obs-19c20ef3e3682415.d: crates/obs/src/lib.rs crates/obs/src/event.rs crates/obs/src/histogram.rs crates/obs/src/json.rs crates/obs/src/recorder.rs crates/obs/src/sink.rs crates/obs/src/span.rs

/root/repo/target/release/deps/libcarpool_obs-19c20ef3e3682415.rlib: crates/obs/src/lib.rs crates/obs/src/event.rs crates/obs/src/histogram.rs crates/obs/src/json.rs crates/obs/src/recorder.rs crates/obs/src/sink.rs crates/obs/src/span.rs

/root/repo/target/release/deps/libcarpool_obs-19c20ef3e3682415.rmeta: crates/obs/src/lib.rs crates/obs/src/event.rs crates/obs/src/histogram.rs crates/obs/src/json.rs crates/obs/src/recorder.rs crates/obs/src/sink.rs crates/obs/src/span.rs

crates/obs/src/lib.rs:
crates/obs/src/event.rs:
crates/obs/src/histogram.rs:
crates/obs/src/json.rs:
crates/obs/src/recorder.rs:
crates/obs/src/sink.rs:
crates/obs/src/span.rs:
