/root/repo/target/release/deps/carpool_bloom-e4e7aeb76441ad51.d: crates/bloom/src/lib.rs crates/bloom/src/analysis.rs

/root/repo/target/release/deps/libcarpool_bloom-e4e7aeb76441ad51.rlib: crates/bloom/src/lib.rs crates/bloom/src/analysis.rs

/root/repo/target/release/deps/libcarpool_bloom-e4e7aeb76441ad51.rmeta: crates/bloom/src/lib.rs crates/bloom/src/analysis.rs

crates/bloom/src/lib.rs:
crates/bloom/src/analysis.rs:
