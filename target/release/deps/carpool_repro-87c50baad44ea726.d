/root/repo/target/release/deps/carpool_repro-87c50baad44ea726.d: src/lib.rs

/root/repo/target/release/deps/libcarpool_repro-87c50baad44ea726.rlib: src/lib.rs

/root/repo/target/release/deps/libcarpool_repro-87c50baad44ea726.rmeta: src/lib.rs

src/lib.rs:
