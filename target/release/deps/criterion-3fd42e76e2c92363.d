/root/repo/target/release/deps/criterion-3fd42e76e2c92363.d: .offline-stubs/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-3fd42e76e2c92363.rlib: .offline-stubs/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-3fd42e76e2c92363.rmeta: .offline-stubs/criterion/src/lib.rs

.offline-stubs/criterion/src/lib.rs:
