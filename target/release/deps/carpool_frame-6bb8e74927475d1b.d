/root/repo/target/release/deps/carpool_frame-6bb8e74927475d1b.d: crates/frame/src/lib.rs crates/frame/src/addr.rs crates/frame/src/aggregation.rs crates/frame/src/airtime.rs crates/frame/src/carpool.rs crates/frame/src/coexist.rs crates/frame/src/mac_frame.rs crates/frame/src/mimo.rs crates/frame/src/nav.rs crates/frame/src/sig.rs

/root/repo/target/release/deps/libcarpool_frame-6bb8e74927475d1b.rlib: crates/frame/src/lib.rs crates/frame/src/addr.rs crates/frame/src/aggregation.rs crates/frame/src/airtime.rs crates/frame/src/carpool.rs crates/frame/src/coexist.rs crates/frame/src/mac_frame.rs crates/frame/src/mimo.rs crates/frame/src/nav.rs crates/frame/src/sig.rs

/root/repo/target/release/deps/libcarpool_frame-6bb8e74927475d1b.rmeta: crates/frame/src/lib.rs crates/frame/src/addr.rs crates/frame/src/aggregation.rs crates/frame/src/airtime.rs crates/frame/src/carpool.rs crates/frame/src/coexist.rs crates/frame/src/mac_frame.rs crates/frame/src/mimo.rs crates/frame/src/nav.rs crates/frame/src/sig.rs

crates/frame/src/lib.rs:
crates/frame/src/addr.rs:
crates/frame/src/aggregation.rs:
crates/frame/src/airtime.rs:
crates/frame/src/carpool.rs:
crates/frame/src/coexist.rs:
crates/frame/src/mac_frame.rs:
crates/frame/src/mimo.rs:
crates/frame/src/nav.rs:
crates/frame/src/sig.rs:
