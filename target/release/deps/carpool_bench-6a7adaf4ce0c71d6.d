/root/repo/target/release/deps/carpool_bench-6a7adaf4ce0c71d6.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libcarpool_bench-6a7adaf4ce0c71d6.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libcarpool_bench-6a7adaf4ce0c71d6.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
