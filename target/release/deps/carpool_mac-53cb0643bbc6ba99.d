/root/repo/target/release/deps/carpool_mac-53cb0643bbc6ba99.d: crates/mac/src/lib.rs crates/mac/src/error_model.rs crates/mac/src/metrics.rs crates/mac/src/protocol.rs crates/mac/src/rate.rs crates/mac/src/sim.rs

/root/repo/target/release/deps/libcarpool_mac-53cb0643bbc6ba99.rlib: crates/mac/src/lib.rs crates/mac/src/error_model.rs crates/mac/src/metrics.rs crates/mac/src/protocol.rs crates/mac/src/rate.rs crates/mac/src/sim.rs

/root/repo/target/release/deps/libcarpool_mac-53cb0643bbc6ba99.rmeta: crates/mac/src/lib.rs crates/mac/src/error_model.rs crates/mac/src/metrics.rs crates/mac/src/protocol.rs crates/mac/src/rate.rs crates/mac/src/sim.rs

crates/mac/src/lib.rs:
crates/mac/src/error_model.rs:
crates/mac/src/metrics.rs:
crates/mac/src/protocol.rs:
crates/mac/src/rate.rs:
crates/mac/src/sim.rs:
