/root/repo/target/release/deps/carpool_phy-d3c3cc0fbb4fd233.d: crates/phy/src/lib.rs crates/phy/src/bits.rs crates/phy/src/convolutional.rs crates/phy/src/crc.rs crates/phy/src/equalizer.rs crates/phy/src/fft.rs crates/phy/src/interleaver.rs crates/phy/src/math.rs crates/phy/src/mcs.rs crates/phy/src/mimo.rs crates/phy/src/modulation.rs crates/phy/src/ofdm.rs crates/phy/src/preamble.rs crates/phy/src/rte.rs crates/phy/src/rx.rs crates/phy/src/scrambler.rs crates/phy/src/sidechannel.rs crates/phy/src/sync.rs crates/phy/src/tx.rs

/root/repo/target/release/deps/libcarpool_phy-d3c3cc0fbb4fd233.rlib: crates/phy/src/lib.rs crates/phy/src/bits.rs crates/phy/src/convolutional.rs crates/phy/src/crc.rs crates/phy/src/equalizer.rs crates/phy/src/fft.rs crates/phy/src/interleaver.rs crates/phy/src/math.rs crates/phy/src/mcs.rs crates/phy/src/mimo.rs crates/phy/src/modulation.rs crates/phy/src/ofdm.rs crates/phy/src/preamble.rs crates/phy/src/rte.rs crates/phy/src/rx.rs crates/phy/src/scrambler.rs crates/phy/src/sidechannel.rs crates/phy/src/sync.rs crates/phy/src/tx.rs

/root/repo/target/release/deps/libcarpool_phy-d3c3cc0fbb4fd233.rmeta: crates/phy/src/lib.rs crates/phy/src/bits.rs crates/phy/src/convolutional.rs crates/phy/src/crc.rs crates/phy/src/equalizer.rs crates/phy/src/fft.rs crates/phy/src/interleaver.rs crates/phy/src/math.rs crates/phy/src/mcs.rs crates/phy/src/mimo.rs crates/phy/src/modulation.rs crates/phy/src/ofdm.rs crates/phy/src/preamble.rs crates/phy/src/rte.rs crates/phy/src/rx.rs crates/phy/src/scrambler.rs crates/phy/src/sidechannel.rs crates/phy/src/sync.rs crates/phy/src/tx.rs

crates/phy/src/lib.rs:
crates/phy/src/bits.rs:
crates/phy/src/convolutional.rs:
crates/phy/src/crc.rs:
crates/phy/src/equalizer.rs:
crates/phy/src/fft.rs:
crates/phy/src/interleaver.rs:
crates/phy/src/math.rs:
crates/phy/src/mcs.rs:
crates/phy/src/mimo.rs:
crates/phy/src/modulation.rs:
crates/phy/src/ofdm.rs:
crates/phy/src/preamble.rs:
crates/phy/src/rte.rs:
crates/phy/src/rx.rs:
crates/phy/src/scrambler.rs:
crates/phy/src/sidechannel.rs:
crates/phy/src/sync.rs:
crates/phy/src/tx.rs:
