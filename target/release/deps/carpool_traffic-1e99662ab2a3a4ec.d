/root/repo/target/release/deps/carpool_traffic-1e99662ab2a3a4ec.d: crates/traffic/src/lib.rs crates/traffic/src/activity.rs crates/traffic/src/background.rs crates/traffic/src/framesize.rs crates/traffic/src/stats.rs crates/traffic/src/trace.rs crates/traffic/src/voip.rs

/root/repo/target/release/deps/libcarpool_traffic-1e99662ab2a3a4ec.rlib: crates/traffic/src/lib.rs crates/traffic/src/activity.rs crates/traffic/src/background.rs crates/traffic/src/framesize.rs crates/traffic/src/stats.rs crates/traffic/src/trace.rs crates/traffic/src/voip.rs

/root/repo/target/release/deps/libcarpool_traffic-1e99662ab2a3a4ec.rmeta: crates/traffic/src/lib.rs crates/traffic/src/activity.rs crates/traffic/src/background.rs crates/traffic/src/framesize.rs crates/traffic/src/stats.rs crates/traffic/src/trace.rs crates/traffic/src/voip.rs

crates/traffic/src/lib.rs:
crates/traffic/src/activity.rs:
crates/traffic/src/background.rs:
crates/traffic/src/framesize.rs:
crates/traffic/src/stats.rs:
crates/traffic/src/trace.rs:
crates/traffic/src/voip.rs:
