//! Cross-crate integration: frame synchronisation feeding the Carpool
//! receiver — the full "RF detector → decoder" flow of paper Fig. 2.

use carpool_frame::addr::MacAddress;
use carpool_frame::carpool::{receive_carpool, CarpoolFrame, Subframe};
use carpool_frame::coexist::{classify, FrameClass};
use carpool_phy::math::Complex64;
use carpool_phy::mcs::Mcs;
use carpool_phy::rx::Estimation;
use carpool_phy::sync::{correct_cfo, detect_frame, synchronize};
use carpool_phy::tx::SideChannelConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn noise(n: usize, amplitude: f64, rng: &mut StdRng) -> Vec<Complex64> {
    (0..n)
        .map(|_| {
            Complex64::new(
                (rng.gen::<f64>() - 0.5) * amplitude,
                (rng.gen::<f64>() - 0.5) * amplitude,
            )
        })
        .collect()
}

fn two_sta_frame() -> CarpoolFrame {
    CarpoolFrame::new(vec![
        Subframe::new(MacAddress::station(4), Mcs::QPSK_1_2, vec![0xC3; 220]),
        Subframe::new(MacAddress::station(5), Mcs::QAM16_1_2, vec![0x3C; 330]),
    ])
    .expect("two receivers")
}

#[test]
fn detect_cfo_correct_then_receive_carpool() {
    let frame = two_sta_frame();
    let tx = frame.transmit().expect("modulates");

    // Air: idle noise, then the frame with +9 kHz CFO, noise floor on top.
    let mut rng = StdRng::seed_from_u64(42);
    let mut shifted = tx.samples.clone();
    correct_cfo(&mut shifted, -9_000.0); // inject +9 kHz
    let mut air = noise(300, 5e-4, &mut rng);
    air.extend(shifted);
    air.extend(noise(200, 5e-4, &mut rng));
    for (s, n) in air.iter_mut().zip(noise(100_000, 4e-4, &mut rng)) {
        *s += n;
    }

    // Station 5's receive flow: detect, align, correct CFO, parse.
    let sync = detect_frame(&air, 0.6).expect("frame detected");
    assert!(
        (sync.start as isize - 300).abs() <= 1,
        "timing off: {}",
        sync.start
    );
    assert!((sync.cfo_hz - 9_000.0).abs() < 300.0, "cfo {}", sync.cfo_hz);

    let aligned = synchronize(&air, 0.6).expect("aligned");
    let rx = receive_carpool(
        &aligned,
        MacAddress::station(5),
        Estimation::Standard,
        carpool_bloom::DEFAULT_HASHES,
        Some(SideChannelConfig::default()),
    )
    .expect("parses");
    assert_eq!(rx.payload_at(1).expect("matched"), &[0x3C; 330][..]);
}

#[test]
fn synchronized_classification_of_both_formats() {
    use carpool_frame::coexist::LegacyFrame;
    let mut rng = StdRng::seed_from_u64(7);

    let carpool_tx = two_sta_frame().transmit().expect("modulates");
    let legacy_tx = LegacyFrame::new(Mcs::QPSK_1_2, vec![9; 180])
        .expect("legal payload")
        .transmit()
        .expect("modulates");

    for (samples, expect) in [
        (&carpool_tx.samples, FrameClass::Carpool),
        (&legacy_tx.samples, FrameClass::Legacy),
    ] {
        let mut air = noise(177, 5e-4, &mut rng);
        air.extend(samples.iter().copied());
        air.extend(noise(64, 5e-4, &mut rng));
        let aligned = synchronize(&air, 0.6).expect("aligned");
        assert_eq!(classify(&aligned).expect("classifies"), expect);
    }
}

#[test]
fn no_detection_in_pure_noise() {
    let mut rng = StdRng::seed_from_u64(9);
    let air = noise(4000, 1e-3, &mut rng);
    assert!(detect_frame(&air, 0.6).is_err());
}
