//! Cross-crate integration: MAC simulator scenarios asserting the
//! paper's comparative claims (Section 7.2).

use carpool_mac::error_model::BerBiasModel;
use carpool_mac::protocol::Protocol;
use carpool_mac::sim::{AggregationWait, DownlinkTraffic, SimConfig, Simulator, UplinkTraffic};
use carpool_mac::SimReport;

fn run(cfg: SimConfig) -> SimReport {
    Simulator::new(cfg, Box::new(BerBiasModel::calibrated())).run()
}

fn crowded(protocol: Protocol) -> SimConfig {
    SimConfig {
        protocol,
        num_stas: 30,
        duration_s: 6.0,
        seed: 11,
        uplink: Some(UplinkTraffic::default()),
        ..SimConfig::default()
    }
}

#[test]
fn carpool_achieves_multiple_of_ampdu_goodput_when_crowded() {
    // Paper Fig. 16: 1.12x to 3.2x from 20 to 30 STAs.
    let carpool = run(crowded(Protocol::Carpool));
    let ampdu = run(crowded(Protocol::Ampdu));
    let ratio = carpool.downlink_goodput_mbps() / ampdu.downlink_goodput_mbps();
    assert!(
        ratio > 2.0,
        "Carpool/A-MPDU ratio {ratio:.2} (carpool {:.2}, ampdu {:.2})",
        carpool.downlink_goodput_mbps(),
        ampdu.downlink_goodput_mbps()
    );
}

#[test]
fn carpool_cuts_delay_versus_ampdu() {
    // Paper headline: up to 75% delay reduction.
    let carpool = run(crowded(Protocol::Carpool));
    let ampdu = run(crowded(Protocol::Ampdu));
    assert!(
        carpool.downlink_delay_s() < ampdu.downlink_delay_s() * 0.5,
        "carpool {:.3}s vs ampdu {:.3}s",
        carpool.downlink_delay_s(),
        ampdu.downlink_delay_s()
    );
}

#[test]
fn protocol_ordering_in_crowded_cell() {
    // Carpool > WiFox > 802.11, and everything beats 802.11.
    let carpool = run(crowded(Protocol::Carpool)).downlink_goodput_mbps();
    let wifox = run(crowded(Protocol::Wifox)).downlink_goodput_mbps();
    let dot11 = run(crowded(Protocol::Dot11)).downlink_goodput_mbps();
    let mu = run(crowded(Protocol::MuAggregation)).downlink_goodput_mbps();
    assert!(carpool > wifox, "carpool {carpool:.2} vs wifox {wifox:.2}");
    assert!(wifox > dot11, "wifox {wifox:.2} vs 802.11 {dot11:.2}");
    assert!(mu > dot11, "mu {mu:.2} vs 802.11 {dot11:.2}");
    assert!(
        carpool > mu,
        "carpool {carpool:.2} vs mu {mu:.2} (RTE advantage)"
    );
}

#[test]
fn uncongested_cell_shows_no_protocol_differences() {
    // Paper: "when the number of STAs is less than 10, delays of all
    // approaches are almost zero".
    for protocol in Protocol::ALL {
        let cfg = SimConfig {
            protocol,
            num_stas: 6,
            duration_s: 4.0,
            seed: 2,
            ..SimConfig::default()
        };
        let report = run(cfg);
        assert!(
            report.downlink_delay_s() < 0.02,
            "{protocol}: delay {:.3}s",
            report.downlink_delay_s()
        );
    }
}

#[test]
fn deadline_dropping_bounds_queueing() {
    let mut cfg = SimConfig {
        protocol: Protocol::Ampdu,
        num_stas: 30,
        duration_s: 4.0,
        seed: 5,
        downlink: DownlinkTraffic::Cbr {
            interval_s: 0.01,
            bytes: 300,
        },
        uplink: Some(UplinkTraffic {
            tcp_fraction: 0.5,
            rate_scale: 3.0,
        }),
        bidirectional_voip: false,
        ..SimConfig::default()
    };
    cfg.deadline = Some(0.05);
    cfg.drop_expired_s = Some(0.05);
    cfg.aggregation_wait = Some(AggregationWait {
        max_latency_s: 0.025,
        max_bytes: 65_535,
    });
    let report = run(cfg);
    // Delivered frames were delivered within a bounded delay; expired
    // ones were dropped rather than queued forever.
    assert!(report.downlink.dropped_frames > 0);
    assert!(
        report.downlink.max_delay < 0.3,
        "max delay {:.3}",
        report.downlink.max_delay
    );
}

#[test]
fn uplink_background_degrades_downlink() {
    // Paper Section 7.2.2: "uplink traffic has dragged down the
    // throughput" — at a moderately loaded point, adding the SIGCOMM
    // background visibly hurts 802.11's downlink.
    let base = SimConfig {
        num_stas: 20,
        uplink: None,
        ..crowded(Protocol::Dot11)
    };
    let without = run(base.clone());
    let with = run(SimConfig {
        uplink: Some(UplinkTraffic::default()),
        ..base
    });
    assert!(
        with.downlink_delay_s() > without.downlink_delay_s(),
        "with {:.3}s vs without {:.3}s",
        with.downlink_delay_s(),
        without.downlink_delay_s()
    );
}

#[test]
fn sequential_ack_cost_appears_in_channel_stats() {
    // Carpool's multi-receiver exchanges amortise accesses: far fewer
    // channel acquisitions for comparable delivered volume.
    let carpool = run(crowded(Protocol::Carpool));
    let dot11 = run(crowded(Protocol::Dot11));
    assert!(carpool.channel.transmissions < dot11.channel.transmissions);
    assert!(carpool.downlink.delivered_bytes > dot11.downlink.delivered_bytes);
}
