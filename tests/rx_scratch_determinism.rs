//! RX scratch-reuse contract: recycling a [`PhyScratch`] across frames
//! — as the `deliver_all` worker pool and the `CarpoolLink::deliver`
//! fast path now do — must be invisible in every result. The workspace
//! carries buffer *capacity* between frames, never values: a station
//! decoding with a warmed scratch must produce bit-identical receptions
//! to one decoding with a fresh scratch, and the figure workloads must
//! stay bit-identical at any thread count (each worker warms its own
//! scratch over a scheduling-dependent share of the stations).
//!
//! Mirrors `tx_cache_determinism.rs` on the receive side:
//!
//! * frame-by-frame: mixed-MCS noisy frames through one shared scratch
//!   vs a fresh scratch each, including an A-HDR early-drop in the
//!   middle of the sequence (the error/drop paths must hand the
//!   workspace back too),
//! * fig03-like: QAM64 3/4 over office fading, 1 vs 4 threads,
//! * fig12-like: side-channel BER at low SNR, 1 vs 4 threads,
//! * fig15: MAC-only (VoIP over the error model) — no PHY receive in
//!   the loop, so scratch reuse cannot touch it; pinned at both thread
//!   counts to document that.

use carpool_bench::{run_mac, run_phy, Fading, PhyRunConfig, OFFICE_FADING};
use carpool_channel::link::LinkChannel;
use carpool_frame::addr::MacAddress;
use carpool_frame::carpool::{
    receive_carpool_obs, receive_carpool_obs_with_scratch, CarpoolFrame, Subframe,
};
use carpool_mac::sim::SimConfig;
use carpool_phy::mcs::Mcs;
use carpool_phy::rx::{Estimation, PhyScratch};
use std::sync::Mutex;

/// The thread override is process-wide state; all mutations in this
/// binary hold this lock.
static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

fn with_threads<T>(threads: usize, f: impl FnOnce() -> T) -> T {
    let _guard = OVERRIDE_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    carpool_par::set_thread_override(Some(threads));
    let out = f();
    carpool_par::set_thread_override(None);
    out
}

/// A sequence of differently-shaped frames: MCS mix, subframe count and
/// payload sizes all vary, so successive decodes stress every buffer
/// the scratch carries (lattice growth *and* shrink, scatter-map cache
/// across four modulations).
fn frame_sequence() -> Vec<CarpoolFrame> {
    let mcs_cycle = [
        Mcs::BPSK_1_2,
        Mcs::QPSK_1_2,
        Mcs::QAM16_1_2,
        Mcs::QAM64_3_4,
        Mcs::QAM16_3_4,
    ];
    (0..5usize)
        .map(|f| {
            let subframes: Vec<Subframe> = (0..=f.min(3))
                .map(|k| {
                    Subframe::new(
                        MacAddress::station(k as u16),
                        mcs_cycle[(f + k) % mcs_cycle.len()],
                        vec![(f as u8) ^ (k as u8) ^ 0xA5; 180 + 310 * ((f + k) % 3)],
                    )
                })
                .collect();
            CarpoolFrame::new(subframes).expect("valid frame")
        })
        .collect()
}

#[test]
fn shared_scratch_matches_fresh_scratch_frame_by_frame() {
    let frames = frame_sequence();
    let mut channel = LinkChannel::builder().snr_db(24.0).seed(11).build();
    let waveforms: Vec<Vec<_>> = frames
        .iter()
        .map(|f| channel.transmit(&f.transmit().expect("valid frame").samples))
        .collect();
    let obs = carpool_obs::Obs::noop();

    // Station 1 is aboard most frames; station 900 is aboard none, so
    // its decodes exercise the A-HDR early-drop exit between warmed
    // decodes of station 1.
    for station in [MacAddress::station(1), MacAddress::station(900)] {
        let mut shared = PhyScratch::default();
        for (i, rx_samples) in waveforms.iter().enumerate() {
            let warmed = receive_carpool_obs_with_scratch(
                rx_samples,
                station,
                Estimation::Standard,
                carpool_bloom::DEFAULT_HASHES,
                None,
                &obs,
                &mut shared,
            );
            let fresh = receive_carpool_obs(
                rx_samples,
                station,
                Estimation::Standard,
                carpool_bloom::DEFAULT_HASHES,
                None,
                &obs,
            );
            match (warmed, fresh) {
                (Ok(a), Ok(b)) => assert_eq!(a, b, "frame {i}, station {station:?}"),
                (a, b) => assert_eq!(
                    a.is_err(),
                    b.is_err(),
                    "outcome diverged at frame {i}, station {station:?}"
                ),
            }
        }
    }
}

fn assert_thread_invariant(config: &PhyRunConfig, snrs: &[f64]) {
    let run = |threads: usize| {
        with_threads(threads, || {
            snrs.iter()
                .map(|&snr_db| run_phy(&PhyRunConfig { snr_db, ..*config }))
                .collect::<Vec<_>>()
        })
    };
    let serial = run(1);
    let pooled = run(4);
    for (point, (a, b)) in serial.iter().zip(pooled.iter()).enumerate() {
        assert_eq!(
            a.data_ber.to_bits(),
            b.data_ber.to_bits(),
            "data BER diverged at sweep point {point}"
        );
        assert_eq!(
            a.side_ber.to_bits(),
            b.side_ber.to_bits(),
            "side BER diverged at sweep point {point}"
        );
        let bits = |r: &[f64]| r.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&a.ber_by_symbol), bits(&b.ber_by_symbol));
    }
}

#[test]
fn fig03_like_sweep_is_scratch_and_thread_invariant() {
    let config = PhyRunConfig {
        payload_bits: 1024 * 8,
        frames: 3,
        seed: 321,
        fading: OFFICE_FADING,
        ..PhyRunConfig::default()
    };
    assert_thread_invariant(&config, &[22.0, 27.0, 32.0]);
}

#[test]
fn fig12_like_sweep_is_scratch_and_thread_invariant() {
    let config = PhyRunConfig {
        payload_bits: 1024 * 8,
        side_channel: Some(carpool_phy::tx::SideChannelConfig::default()),
        fading: Fading::None,
        frames: 3,
        seed: 77,
        ..PhyRunConfig::default()
    };
    assert_thread_invariant(&config, &[14.0, 18.0, 24.0]);
}

#[test]
fn fig15_mac_workload_sees_no_scratch() {
    // Fig 15 (VoIP capacity) runs entirely on the MAC simulator over the
    // calibrated error model; no PHY receive happens, so scratch reuse
    // cannot influence it at any thread count.
    let cfg = SimConfig {
        num_stas: 4,
        duration_s: 0.5,
        ..SimConfig::default()
    };
    let serial = with_threads(1, || run_mac(cfg.clone()));
    let pooled = with_threads(4, || run_mac(cfg.clone()));
    assert_eq!(serial, pooled);
}
