//! Cross-crate integration: the PHY chain through the channel models.
//!
//! These tests assert the paper's central PHY claims end to end:
//! BER bias appears under standard estimation on a time-varying channel
//! (Fig. 3) and real-time estimation removes it (Fig. 13).

use carpool_channel::link::LinkChannel;
use carpool_phy::bits::{bit_error_rate, hamming_distance};
use carpool_phy::mcs::Mcs;
use carpool_phy::rte::CalibrationRule;
use carpool_phy::rx::{receive, Estimation, SectionLayout};
use carpool_phy::tx::{transmit, SectionSpec};

fn pattern_bits(n: usize, seed: u64) -> Vec<u8> {
    let mut x = seed | 1;
    (0..n)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x & 1) as u8
        })
        .collect()
}

fn office_link(seed: u64) -> LinkChannel {
    LinkChannel::builder()
        .snr_db(28.0)
        .coherence_time(4e-3)
        .rician_k(15.0)
        .cfo_hz(100.0)
        .seed(seed)
        .build()
}

/// Raw (pre-FEC) BER per symbol index averaged over frames.
fn ber_by_symbol(estimation: Estimation, frames: usize) -> Vec<f64> {
    let spec = SectionSpec::payload(pattern_bits(24_000, 99), Mcs::QAM64_3_4);
    let tx = transmit(std::slice::from_ref(&spec)).expect("valid spec");
    let layouts = [SectionLayout::of(&spec)];
    let n_sym = tx.sections[0].num_symbols;
    let mut errs = vec![0.0f64; n_sym];
    for f in 0..frames {
        let rx_samples = office_link(1000 + f as u64).transmit(&tx.samples);
        let rx = receive(&rx_samples, &layouts, estimation).expect("lengths match");
        for (k, (t, r)) in tx.sections[0]
            .symbol_bits
            .iter()
            .zip(&rx.sections[0].raw_symbol_bits)
            .enumerate()
        {
            errs[k] += bit_error_rate(t, r);
        }
    }
    errs.iter().map(|e| e / frames as f64).collect()
}

#[test]
fn ber_bias_appears_under_standard_estimation() {
    let bers = ber_by_symbol(Estimation::Standard, 30);
    let n = bers.len();
    let head: f64 = bers[..n / 5].iter().sum::<f64>() / (n / 5) as f64;
    let tail: f64 = bers[n - n / 5..].iter().sum::<f64>() / (n / 5) as f64;
    assert!(
        tail > head * 2.0,
        "no BER bias: head {head:.2e} tail {tail:.2e}"
    );
}

#[test]
fn rte_flattens_the_bias() {
    let std = ber_by_symbol(Estimation::Standard, 30);
    let rte = ber_by_symbol(Estimation::Rte(CalibrationRule::Average), 30);
    let n = std.len();
    let tail_std: f64 = std[n - n / 5..].iter().sum::<f64>() / (n / 5) as f64;
    let tail_rte: f64 = rte[n - n / 5..].iter().sum::<f64>() / (n / 5) as f64;
    assert!(
        tail_rte < tail_std / 2.0,
        "RTE tail {tail_rte:.2e} vs standard tail {tail_std:.2e}"
    );
}

#[test]
fn side_channel_survives_the_office_link() {
    let spec = SectionSpec::payload(pattern_bits(16_000, 5), Mcs::QPSK_1_2);
    let tx = transmit(std::slice::from_ref(&spec)).expect("valid spec");
    let layouts = [SectionLayout::of(&spec)];
    let mut side_errors = 0usize;
    let mut side_total = 0usize;
    for f in 0..10 {
        let rx_samples = office_link(50 + f).transmit(&tx.samples);
        let rx = receive(&rx_samples, &layouts, Estimation::Standard).expect("lengths match");
        side_errors += hamming_distance(&tx.sections[0].side_values, &rx.sections[0].side_values);
        side_total += tx.sections[0].side_values.len();
    }
    let ser = side_errors as f64 / side_total as f64;
    assert!(ser < 0.01, "side channel symbol error rate {ser}");
}

#[test]
fn payload_decodes_through_noisy_multipath() {
    use carpool_channel::DelayProfile;
    let spec = SectionSpec::payload(pattern_bits(8_000, 3), Mcs::QPSK_1_2);
    let tx = transmit(std::slice::from_ref(&spec)).expect("valid spec");
    let mut link = LinkChannel::builder()
        .snr_db(30.0)
        .profile(DelayProfile::exponential(6, 0.5))
        .static_fading()
        .rician_k(10.0)
        .cfo_hz(80.0)
        .seed(11)
        .build();
    let rx_samples = link.transmit(&tx.samples);
    let rx = receive(
        &rx_samples,
        &[SectionLayout::of(&spec)],
        Estimation::Standard,
    )
    .expect("lengths match");
    assert_eq!(rx.sections[0].bits, spec.bits, "frequency-selective link");
}

#[test]
#[ignore = "diagnostic: prints BER-bias curves; run manually with --ignored --nocapture"]
fn diagnostic_ber_bias() {
    let bers = ber_by_symbol(Estimation::Standard, 40);
    let rte = ber_by_symbol(Estimation::Rte(CalibrationRule::Average), 40);
    let n = bers.len();
    println!("symbols: {n}");
    for k in (0..n).step_by((n / 15).max(1)) {
        println!("sym {k:4}  std {:.5}  rte {:.5}", bers[k], rte[k]);
    }
}
