//! Cross-crate determinism contract of the `carpool-par` worker pool:
//! the PHY Monte-Carlo driver and the MAC replication sweep must produce
//! byte-identical results whatever the thread count, and worker panics
//! must surface as errors instead of tearing the process down.

use carpool_bench::{run_phy, PhyRunConfig};
use carpool_mac::error_model::{BerBiasModel, FrameErrorModel};
use carpool_mac::sim::{run_replications, SimConfig};
use carpool_mac::SimReport;
use std::sync::Mutex;

/// The thread override is process-wide state and the tests in this
/// binary run concurrently, so every mutation holds this lock.
static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

fn with_threads<T>(threads: usize, f: impl FnOnce() -> T) -> T {
    let _guard = OVERRIDE_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    carpool_par::set_thread_override(Some(threads));
    let out = f();
    carpool_par::set_thread_override(None);
    out
}

#[test]
fn phy_monte_carlo_is_thread_count_invariant() {
    let config = PhyRunConfig {
        frames: 8,
        payload_bits: 1024 * 8,
        seed: 99,
        ..PhyRunConfig::default()
    };
    let one = with_threads(1, || run_phy(&config));
    let four = with_threads(4, || run_phy(&config));
    assert_eq!(one.data_ber.to_bits(), four.data_ber.to_bits());
    assert_eq!(one.side_ber.to_bits(), four.side_ber.to_bits());
    let bits = |r: &[f64]| r.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(&one.ber_by_symbol), bits(&four.ber_by_symbol));
}

#[test]
fn mac_replications_are_thread_count_invariant() {
    let cfg = SimConfig {
        num_stas: 8,
        duration_s: 1.0,
        ..SimConfig::default()
    };
    let seeds = [1u64, 2, 3, 4, 5];
    let model = || Box::new(BerBiasModel::calibrated()) as Box<dyn FrameErrorModel>;
    let one: Vec<SimReport> =
        with_threads(1, || run_replications(&cfg, &seeds, model).expect("runs"));
    let four: Vec<SimReport> =
        with_threads(4, || run_replications(&cfg, &seeds, model).expect("runs"));
    assert_eq!(one, four);
}

/// Runs the fig03-shaped flight-trace scenario with a recorder attached
/// and returns both export formats.
fn traced_fig03(threads: usize) -> (String, String) {
    with_threads(threads, || {
        let flight = std::sync::Arc::new(carpool_obs::FlightRecorder::new(4096));
        let obs = carpool_obs::Obs::noop().with_flight(flight.clone());
        carpool::fig03_flight_trace(4, 14.0, 7, &obs).expect("scenario runs");
        let records = flight.records();
        (
            carpool_obs::flight::to_chrome_trace(&records),
            carpool_obs::flight::to_jsonl(&records, flight.dropped()),
        )
    })
}

/// The flight recorder rides the same shard-merge contract as every
/// other observable: per-worker rings absorbed in station order, so both
/// trace exports must be byte-identical whatever the thread count.
#[test]
fn flight_trace_is_thread_count_invariant() {
    let (chrome_one, jsonl_one) = traced_fig03(1);
    let (chrome_four, jsonl_four) = traced_fig03(4);
    assert!(
        jsonl_one.contains("trace_enqueue") && jsonl_one.contains("trace_outcome"),
        "trace should span MAC enqueue through per-STA outcome"
    );
    assert_eq!(chrome_one, chrome_four, "chrome trace differs by threads");
    assert_eq!(jsonl_one, jsonl_four, "jsonl trace differs by threads");
}

#[test]
fn worker_panic_surfaces_as_err() {
    let items = vec![0u32; 8];
    let result = with_threads(4, || {
        carpool_par::par_map_indexed(&items, |i, _| {
            assert!(i != 3, "injected failure");
            i
        })
    });
    assert_eq!(result, Err(carpool_par::ParError::WorkerPanic));
}

/// One dense multi-AP run on the sharded event engine.
fn dense_report(threads: usize, shards: usize) -> carpool_mac::DenseReport {
    let config = carpool_mac::DenseConfig {
        cell: SimConfig {
            num_stas: 12,
            num_aps: 1,
            duration_s: 0.6,
            seed: 21,
            ..SimConfig::default()
        },
        domains: 8,
        shards,
        ..carpool_mac::DenseConfig::default()
    };
    with_threads(threads, || {
        carpool_mac::run_dense(
            &config,
            |_| Box::new(BerBiasModel::calibrated()),
            &carpool_obs::Obs::noop(),
        )
        .expect("dense run succeeds")
    })
}

/// The sharded MAC event engine's determinism contract end to end: the
/// merged report of one big scenario is identical at 1 and 4 worker
/// threads (shard layout pinned, so only scheduling varies).
#[test]
fn dense_mac_engine_is_thread_count_invariant() {
    let one = dense_report(1, 4);
    let four = dense_report(4, 4);
    assert_eq!(one, four);
}

/// ... and identical across shard layouts: domain-per-shard, grouped,
/// and fully serial all merge to the same bytes.
#[test]
fn dense_mac_engine_is_shard_count_invariant() {
    let serial = dense_report(2, 1);
    let grouped = dense_report(2, 3);
    let per_domain = dense_report(2, 8);
    assert_eq!(serial, grouped);
    assert_eq!(serial, per_domain);
}
