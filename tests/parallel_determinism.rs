//! Cross-crate determinism contract of the `carpool-par` worker pool:
//! the PHY Monte-Carlo driver and the MAC replication sweep must produce
//! byte-identical results whatever the thread count, and worker panics
//! must surface as errors instead of tearing the process down.

use carpool_bench::{run_phy, PhyRunConfig};
use carpool_mac::error_model::{BerBiasModel, FrameErrorModel};
use carpool_mac::sim::{run_replications, SimConfig};
use carpool_mac::SimReport;
use std::sync::Mutex;

/// The thread override is process-wide state and the tests in this
/// binary run concurrently, so every mutation holds this lock.
static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

fn with_threads<T>(threads: usize, f: impl FnOnce() -> T) -> T {
    let _guard = OVERRIDE_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    carpool_par::set_thread_override(Some(threads));
    let out = f();
    carpool_par::set_thread_override(None);
    out
}

#[test]
fn phy_monte_carlo_is_thread_count_invariant() {
    let config = PhyRunConfig {
        frames: 8,
        payload_bits: 1024 * 8,
        seed: 99,
        ..PhyRunConfig::default()
    };
    let one = with_threads(1, || run_phy(&config));
    let four = with_threads(4, || run_phy(&config));
    assert_eq!(one.data_ber.to_bits(), four.data_ber.to_bits());
    assert_eq!(one.side_ber.to_bits(), four.side_ber.to_bits());
    let bits = |r: &[f64]| r.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(&one.ber_by_symbol), bits(&four.ber_by_symbol));
}

#[test]
fn mac_replications_are_thread_count_invariant() {
    let cfg = SimConfig {
        num_stas: 8,
        duration_s: 1.0,
        ..SimConfig::default()
    };
    let seeds = [1u64, 2, 3, 4, 5];
    let model = || Box::new(BerBiasModel::calibrated()) as Box<dyn FrameErrorModel>;
    let one: Vec<SimReport> =
        with_threads(1, || run_replications(&cfg, &seeds, model).expect("runs"));
    let four: Vec<SimReport> =
        with_threads(4, || run_replications(&cfg, &seeds, model).expect("runs"));
    assert_eq!(one, four);
}

#[test]
fn worker_panic_surfaces_as_err() {
    let items = vec![0u32; 8];
    let result = with_threads(4, || {
        carpool_par::par_map_indexed(&items, |i, _| {
            assert!(i != 3, "injected failure");
            i
        })
    });
    assert_eq!(result, Err(carpool_par::ParError::WorkerPanic));
}
