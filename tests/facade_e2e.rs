//! Facade-level integration: calibration bridge and energy analysis.

use carpool::calibrate::{measure_symbol_error_curves, CalibrationConfig};
use carpool::energy::{energy_overhead_bound, DevicePowerModel};
use carpool_mac::error_model::{EstimationScheme, FrameErrorModel};
use carpool_mac::protocol::Protocol;
use carpool_mac::sim::{SimConfig, Simulator};
use carpool_phy::mcs::Mcs;

#[test]
fn calibrated_curves_drive_the_mac_simulator() {
    // The full trace-driven loop: PHY Monte-Carlo -> error curves ->
    // MAC simulation, exactly as the paper feeds USRP traces into its
    // MATLAB simulator.
    let calibration = CalibrationConfig {
        frames: 6,
        payload_bits: 10_000,
        snr_db: 28.0,
        coherence_time_s: 4e-3,
        ..CalibrationConfig::default()
    };
    let curves = measure_symbol_error_curves(&calibration);

    // Sanity: the measured curves encode the BER bias.
    let head = curves.subframe_success_prob(EstimationScheme::Standard, Mcs::QAM64_3_4, 0, 10);
    let tail = curves.subframe_success_prob(EstimationScheme::Standard, Mcs::QAM64_3_4, 120, 10);
    assert!(head >= tail, "head {head} tail {tail}");

    let config = SimConfig {
        protocol: Protocol::Carpool,
        num_stas: 16,
        duration_s: 2.0,
        seed: 3,
        ..SimConfig::default()
    };
    let report = Simulator::new(config, Box::new(curves)).run();
    assert!(report.downlink.delivered_frames > 0);
}

#[test]
fn paper_energy_bounds_hold() {
    assert!(energy_overhead_bound(8, 4, 0.90) < 0.003_5);
    assert!(energy_overhead_bound(4, 4, 0.90) < 0.001);
}

#[test]
fn carpool_clients_spend_no_more_power_than_legacy() {
    let model = DevicePowerModel::E_MILI;
    let mut powers = Vec::new();
    for protocol in [Protocol::Carpool, Protocol::Dot11] {
        let config = SimConfig {
            protocol,
            num_stas: 20,
            duration_s: 4.0,
            seed: 9,
            ..SimConfig::default()
        };
        let report =
            Simulator::new(config, Box::new(carpool_mac::BerBiasModel::calibrated())).run();
        let mean: f64 = report
            .sta_airtime
            .iter()
            .map(|s| model.mean_power_w(s))
            .sum::<f64>()
            / report.sta_airtime.len() as f64;
        powers.push(mean);
    }
    assert!(
        powers[0] <= powers[1] * 1.01,
        "carpool {:.3} W vs 802.11 {:.3} W",
        powers[0],
        powers[1]
    );
}
