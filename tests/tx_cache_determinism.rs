//! TX-waveform memoization contract: caching encoded TX waveforms
//! across SNR sweep points must be invisible in every printed figure —
//! bit-identical `run_phy` outputs with the cache on or off, at any
//! thread count.
//!
//! The cache key is the full `SectionSpec` list, and per-trial
//! randomness (channel noise, fading, CFO) is seeded per frame *after*
//! the deterministic transmit step, so a cached waveform is by
//! construction the same object `transmit` would rebuild. These tests
//! pin that contract end-to-end for the figure workloads:
//!
//! * fig03-like: QAM64 3/4 over office fading (multi-SNR payload sweep),
//! * fig12-like: side-channel BER at low SNR over a clean channel,
//! * fig15: MAC-only (VoIP over the error model) — no PHY transmit in
//!   the loop, so the cache cannot touch it; a toggle check documents
//!   that.

use carpool_bench::{run_mac, run_phy, Fading, PhyRunConfig, OFFICE_FADING};
use carpool_mac::sim::SimConfig;
use carpool_phy::tx::SideChannelConfig;
use carpool_phy::txcache;
use std::sync::Mutex;

/// Thread override and cache toggle are process-wide state; all
/// mutations in this binary hold this lock.
static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` twice — cache disabled, then cache enabled (reset in
/// between) — at the given thread count. Returns both results plus the
/// hit/miss counters observed during the cached run.
fn uncached_vs_cached<T>(threads: usize, f: impl Fn() -> T) -> (T, T, txcache::TxCacheStats) {
    let _guard = OVERRIDE_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    carpool_par::set_thread_override(Some(threads));
    txcache::set_enabled(false);
    txcache::reset();
    let uncached = f();
    txcache::set_enabled(true);
    txcache::reset();
    let cached = f();
    let stats = txcache::stats();
    // Restore ambient (env-driven) defaults for other tests.
    txcache::clear_override();
    txcache::reset();
    carpool_par::set_thread_override(None);
    (uncached, cached, stats)
}

fn assert_identical(config: &PhyRunConfig, snrs: &[f64]) {
    for &threads in &[1usize, 4] {
        let (uncached, cached, stats) = uncached_vs_cached(threads, || {
            snrs.iter()
                .map(|&snr_db| {
                    let point = PhyRunConfig { snr_db, ..*config };
                    run_phy(&point)
                })
                .collect::<Vec<_>>()
        });
        for (a, b) in uncached.iter().zip(cached.iter()) {
            assert_eq!(
                a.data_ber.to_bits(),
                b.data_ber.to_bits(),
                "data BER diverged at {threads} threads"
            );
            assert_eq!(
                a.side_ber.to_bits(),
                b.side_ber.to_bits(),
                "side BER diverged at {threads} threads"
            );
            let bits = |r: &[f64]| r.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&a.ber_by_symbol), bits(&b.ber_by_symbol));
        }
        // Every sweep point after the first reuses the encoded waveform.
        assert!(
            stats.hits > 0,
            "cached sweep registered no hits at {threads} threads: {stats:?}"
        );
    }
}

#[test]
fn fig03_like_sweep_is_cache_invariant() {
    let config = PhyRunConfig {
        payload_bits: 1024 * 8,
        frames: 3,
        seed: 321,
        fading: OFFICE_FADING,
        ..PhyRunConfig::default()
    };
    assert_identical(&config, &[22.0, 27.0, 32.0]);
}

#[test]
fn fig12_like_sweep_is_cache_invariant() {
    let config = PhyRunConfig {
        payload_bits: 1024 * 8,
        side_channel: Some(SideChannelConfig::default()),
        fading: Fading::None,
        frames: 3,
        seed: 77,
        ..PhyRunConfig::default()
    };
    assert_identical(&config, &[14.0, 18.0, 24.0]);
}

#[test]
fn fig15_mac_workload_ignores_the_cache() {
    // Fig 15 (VoIP capacity) runs entirely on the MAC simulator over the
    // calibrated error model; no waveform is transmitted, so the cache
    // must neither change results nor register traffic.
    let cfg = SimConfig {
        num_stas: 4,
        duration_s: 0.5,
        ..SimConfig::default()
    };
    let (uncached, cached, stats) = uncached_vs_cached(1, || run_mac(cfg.clone()));
    assert_eq!(uncached, cached);
    assert_eq!(
        (stats.hits, stats.misses),
        (0, 0),
        "MAC run touched the TX cache"
    );
}
