//! Cross-crate integration: full Carpool frames over realistic links.

use carpool::link::CarpoolLink;
use carpool_frame::addr::MacAddress;
use carpool_frame::carpool::{CarpoolFrame, Subframe};
use carpool_frame::mac_frame::{AmpduBundle, MacFrame};
use carpool_phy::mcs::Mcs;
use carpool_phy::rx::Estimation;

fn sta(k: u16) -> MacAddress {
    MacAddress::station(k)
}

fn eight_receiver_frame() -> CarpoolFrame {
    let subframes: Vec<Subframe> = (0..8u16)
        .map(|k| {
            Subframe::new(
                sta(k),
                if k % 2 == 0 {
                    Mcs::QPSK_1_2
                } else {
                    Mcs::QAM16_1_2
                },
                vec![k as u8 ^ 0xA5; 100 + 30 * k as usize],
            )
        })
        .collect();
    CarpoolFrame::new(subframes).expect("8 receivers allowed")
}

#[test]
fn maximum_aggregation_delivers_to_all_eight() {
    let frame = eight_receiver_frame();
    let mut link = CarpoolLink::builder()
        .snr_db(32.0)
        .static_fading()
        .rician_k(12.0)
        .cfo_hz(60.0)
        .seed(17)
        .build();
    for k in 0..8u16 {
        let rx = link.deliver(&frame, sta(k)).expect("delivery succeeds");
        let payload = rx
            .payload_at(k as usize)
            .unwrap_or_else(|| panic!("station {k} missed its subframe"));
        assert_eq!(
            payload,
            &frame.subframes()[k as usize].payload[..],
            "station {k}"
        );
    }
}

#[test]
fn carpool_subframes_carry_ampdu_bundles() {
    // MAC aggregation inside a Carpool subframe (paper Fig. 4: "the MAC
    // data can be either single data unit or aggregation data unit").
    let mut bundle = AmpduBundle::new();
    for seq in 0..4 {
        bundle
            .push(MacFrame::data(
                sta(2),
                MacAddress::access_point(0),
                seq,
                vec![seq as u8; 180],
            ))
            .expect("same destination");
    }
    let frame = CarpoolFrame::new(vec![
        Subframe::new(sta(1), Mcs::QPSK_1_2, vec![7; 200]),
        Subframe::new(sta(2), Mcs::QAM16_3_4, bundle.to_bytes()),
    ])
    .expect("two receivers");

    let mut link = CarpoolLink::builder().snr_db(35.0).seed(9).build();
    let rx = link.deliver(&frame, sta(2)).expect("delivery succeeds");
    let payload = rx.payload_at(1).expect("matched subframe");
    let mpdus = AmpduBundle::parse_lossy(payload);
    assert_eq!(mpdus.len(), 4);
    for (seq, mpdu) in mpdus.into_iter().enumerate() {
        let f = mpdu.expect("intact MPDU");
        assert_eq!(f.seq, seq as u16);
        assert_eq!(f.body, vec![seq as u8; 180]);
        assert_eq!(f.dest, sta(2));
    }
}

#[test]
fn rte_receiver_handles_long_subframes_better() {
    // A long first subframe over a drifting channel: the channel decays
    // *within* the station's own payload, where RTE's data pilots keep
    // recalibrating while standard estimation goes stale.
    let frame = CarpoolFrame::new(vec![
        Subframe::new(sta(0), Mcs::QAM64_3_4, vec![0x3C; 16_000]),
        Subframe::new(sta(1), Mcs::QPSK_1_2, vec![0x55; 200]),
    ])
    .expect("two receivers");
    let mut clean = [0usize; 2];
    let trials: u64 = 10;
    for (mode_idx, estimation) in [
        Estimation::Standard,
        Estimation::Rte(carpool_phy::rte::CalibrationRule::Average),
    ]
    .into_iter()
    .enumerate()
    {
        for t in 0..trials {
            let mut link = CarpoolLink::builder()
                .snr_db(28.0)
                .coherence_time(4e-3)
                .rician_k(15.0)
                .cfo_hz(100.0)
                .seed(300 + t)
                .estimation(estimation)
                .build();
            let rx = link.deliver(&frame, sta(0)).expect("delivery succeeds");
            if rx.payload_at(0) == Some(&frame.subframes()[0].payload[..]) {
                clean[mode_idx] += 1;
            }
        }
    }
    assert!(
        clean[1] > clean[0],
        "RTE {} clean vs standard {} clean",
        clean[1],
        clean[0]
    );
    assert!(
        clean[1] as u64 > trials * 7 / 10,
        "RTE decodes the long subframe mostly ({}/{trials})",
        clean[1]
    );
}

#[test]
fn broadcast_semantics_deliver_all() {
    let frame = CarpoolFrame::new(vec![
        Subframe::new(sta(10), Mcs::QPSK_1_2, vec![1; 300]),
        Subframe::new(sta(11), Mcs::QPSK_1_2, vec![2; 300]),
        Subframe::new(sta(12), Mcs::QPSK_1_2, vec![3; 300]),
    ])
    .expect("three receivers");
    let mut link = CarpoolLink::builder().snr_db(33.0).seed(4).build();
    let all = link
        .deliver_all(&frame, &[sta(10), sta(11), sta(12)])
        .expect("all deliveries succeed");
    for (k, rx) in all.iter().enumerate() {
        assert_eq!(
            rx.payload_at(k).expect("matched"),
            &frame.subframes()[k].payload[..]
        );
    }
}
